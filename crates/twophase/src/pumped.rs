//! Mechanically pumped two-phase loop — the AMS-02 tracker thermal
//! control system architecture (arXiv:1302.4294): a gear pump drives
//! subcooled liquid CO₂ through the evaporators, a two-phase
//! accumulator pins the loop saturation pressure (and therefore the
//! evaporator temperature) at a controlled setpoint, and the vapour
//! condenses back at the radiators.
//!
//! The two properties that make this topology interesting to the
//! design-space optimizer:
//!
//! * the evaporator temperature is *set*, not negotiated with the
//!   ambient — junction temperatures decouple from the box wall, and
//! * the pump provides orders of magnitude more head than a wick, so
//!   tilt (and gravity in general) barely moves the operating point —
//!   at the price of mass and a moving part in the reliability budget.

use aeropack_materials::WorkingFluid;
use aeropack_units::{Celsius, Power, Pressure, ThermalConductance, STANDARD_GRAVITY};

use crate::error::{TransportLimit, TwoPhaseError};

/// A mechanically pumped two-phase loop at a fixed saturation setpoint.
#[derive(Debug, Clone)]
pub struct PumpedTwoPhaseLoop {
    fluid: WorkingFluid,
    setpoint: Celsius,
    /// Pump mass flow, kg/s (gear pumps are near-constant-flow).
    mass_flow: f64,
    /// Pump head available to the loop, Pa.
    pump_head: Pressure,
    /// Highest allowed evaporator exit quality before film dry-out.
    max_exit_quality: f64,
    /// Line inner diameter, m.
    line_diameter: f64,
    /// One-way transport length, m.
    transport_length: f64,
    /// Evaporator film conductance, W/K.
    evaporator_conductance: ThermalConductance,
    /// Pump + accumulator + lines dry mass, kg.
    dry_mass: f64,
    /// Electrical pump power, W.
    pump_power: Power,
}

/// The solved state of a pumped loop carrying a load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpedOperatingPoint {
    /// Evaporator wall temperature.
    pub evaporator_wall: Celsius,
    /// Evaporator exit vapour quality.
    pub exit_quality: f64,
    /// Two-phase loop pressure drop at this load, Pa.
    pub pressure_drop: Pressure,
    /// Electrical power spent on the pump.
    pub pump_power: Power,
}

/// Two-phase pressure-drop multiplier slope: `Δp ≈ Δp_liquid·(1+K·x)`,
/// a Lockhart–Martinelli-style fit adequate for the small-quality
/// operating range of a pumped loop.
const TWO_PHASE_MULTIPLIER_SLOPE: f64 = 20.0;

impl PumpedTwoPhaseLoop {
    /// Builds a pumped loop.
    ///
    /// # Errors
    ///
    /// Returns an error when the setpoint is outside the fluid's
    /// tabulated range or any parameter is non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fluid: WorkingFluid,
        setpoint: Celsius,
        mass_flow: f64,
        pump_head: Pressure,
        max_exit_quality: f64,
        line_diameter: f64,
        transport_length: f64,
        evaporator_conductance: ThermalConductance,
        dry_mass: f64,
        pump_power: Power,
    ) -> Result<Self, TwoPhaseError> {
        if mass_flow <= 0.0
            || pump_head.value() <= 0.0
            || line_diameter <= 0.0
            || transport_length <= 0.0
            || evaporator_conductance.value() <= 0.0
            || dry_mass <= 0.0
        {
            return Err(TwoPhaseError::invalid(
                "pumped-loop parameters must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&max_exit_quality) || max_exit_quality == 0.0 {
            return Err(TwoPhaseError::invalid(
                "max exit quality must lie in (0, 1]",
            ));
        }
        // Validate the setpoint against the table now so every later
        // call can rely on it.
        fluid.saturation(setpoint)?;
        Ok(Self {
            fluid,
            setpoint,
            mass_flow,
            pump_head,
            max_exit_quality,
            line_diameter,
            transport_length,
            evaporator_conductance,
            dry_mass,
            pump_power,
        })
    }

    /// The AMS-02 TTCS-style CO₂ loop scaled to an avionics box: 2 g/s
    /// of CO₂ at a controllable setpoint, ~1 bar of pump head, 4 mm
    /// lines over 1 m, and the pump/accumulator dry mass of a small
    /// mechanically pumped loop.
    ///
    /// # Errors
    ///
    /// Returns an error when `setpoint` lies outside the CO₂ table
    /// (−40 °C … 25 °C).
    pub fn co2_ams02(setpoint: Celsius) -> Result<Self, TwoPhaseError> {
        Self::new(
            WorkingFluid::carbon_dioxide(),
            setpoint,
            2.0e-3,
            Pressure::from_kilopascals(100.0),
            0.35,
            4.0e-3,
            1.0,
            ThermalConductance::new(25.0),
            1.8,
            Power::new(3.0),
        )
    }

    /// The working fluid.
    pub fn fluid(&self) -> &WorkingFluid {
        &self.fluid
    }

    /// The accumulator-controlled saturation setpoint.
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }

    /// Electrical pump power (a parasitic load the optimizer charges
    /// against this topology).
    pub fn pump_power(&self) -> Power {
        self.pump_power
    }

    /// Liquid-only loop pressure drop at the fixed pump flow, Pa
    /// (laminar/turbulent-blended Darcy friction over the out-and-back
    /// line length).
    fn liquid_pressure_drop(&self) -> Result<f64, TwoPhaseError> {
        let sat = self.fluid.saturation(self.setpoint)?;
        let rho = sat.liquid_density.value();
        let mu = sat.liquid_viscosity;
        let d = self.line_diameter;
        let area = std::f64::consts::PI * d * d / 4.0;
        let velocity = self.mass_flow / (rho * area);
        let re = rho * velocity * d / mu;
        let f = if re < 2300.0 {
            64.0 / re
        } else {
            0.3164 / re.powf(0.25)
        };
        let l = 2.0 * self.transport_length;
        Ok(f * (l / d) * 0.5 * rho * velocity * velocity)
    }

    /// Maximum transportable power at the setpoint and tilt: the lower
    /// of the film dry-out cap (`ṁ·h_fg·x_max`) and the pump-head cap
    /// (the exit quality at which the two-phase pressure drop plus the
    /// adverse gravity column consumes the whole pump head).
    ///
    /// # Errors
    ///
    /// Returns the fluid range error when the setpoint left the table.
    pub fn max_transport(&self, tilt_rad: f64) -> Result<(TransportLimit, Power), TwoPhaseError> {
        let sat = self.fluid.saturation(self.setpoint)?;
        let q_latent = self.mass_flow * sat.latent_heat * self.max_exit_quality;
        let dp_liquid = self.liquid_pressure_drop()?;
        let dp_grav = sat.liquid_density.value()
            * STANDARD_GRAVITY
            * self.transport_length
            * tilt_rad.sin().max(0.0);
        let head_left = self.pump_head.value() - dp_grav;
        if head_left <= dp_liquid {
            // The pump cannot even circulate liquid against this
            // column: zero transport, pump-head limited.
            return Ok((TransportLimit::PumpHead, Power::ZERO));
        }
        let x_head = (head_left / dp_liquid - 1.0) / TWO_PHASE_MULTIPLIER_SLOPE;
        let q_head = self.mass_flow * sat.latent_heat * x_head;
        if q_head < q_latent {
            Ok((TransportLimit::PumpHead, Power::new(q_head)))
        } else {
            Ok((TransportLimit::Boiling, Power::new(q_latent)))
        }
    }

    /// Solves the loop at a load: the evaporator wall sits one film
    /// drop above the setpoint, independent of the ambient.
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] (with the governing limit and exact
    /// margin) when `q` exceeds [`max_transport`](Self::max_transport),
    /// or a fluid range error.
    pub fn operating_point(
        &self,
        q: Power,
        tilt_rad: f64,
    ) -> Result<PumpedOperatingPoint, TwoPhaseError> {
        let (limit, q_max) = self.max_transport(tilt_rad)?;
        if q.value() > q_max.value() {
            return Err(TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q,
            });
        }
        let sat = self.fluid.saturation(self.setpoint)?;
        let exit_quality = q.value() / (self.mass_flow * sat.latent_heat);
        let dp = self.liquid_pressure_drop()? * (1.0 + TWO_PHASE_MULTIPLIER_SLOPE * exit_quality);
        Ok(PumpedOperatingPoint {
            evaporator_wall: self.setpoint + q / self.evaporator_conductance,
            exit_quality,
            pressure_drop: Pressure::new(dp),
            pump_power: self.pump_power,
        })
    }

    /// Evaporator film conductance (the only series resistance the
    /// loop adds between source and setpoint).
    pub fn evaporator_conductance(&self) -> ThermalConductance {
        self.evaporator_conductance
    }

    /// Estimated loop mass, kg: dry hardware plus the liquid charge in
    /// the out-and-back line.
    pub fn mass_estimate(&self) -> f64 {
        let area = std::f64::consts::PI * self.line_diameter * self.line_diameter / 4.0;
        let rho = self
            .fluid
            .saturation(self.setpoint)
            .map(|s| s.liquid_density.value())
            .unwrap_or(800.0);
        self.dry_mass + 2.0 * self.transport_length * area * rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_at(setpoint_c: f64) -> PumpedTwoPhaseLoop {
        PumpedTwoPhaseLoop::co2_ams02(Celsius::new(setpoint_c)).unwrap()
    }

    #[test]
    fn carries_ams02_class_power() {
        // TTCS: ~140 W per loop at 2 g/s CO₂.
        let (_, q) = loop_at(0.0).max_transport(0.0).unwrap();
        assert!(
            q.value() > 60.0 && q.value() < 400.0,
            "pumped loop Q_max = {q}"
        );
    }

    #[test]
    fn evaporator_temperature_is_pinned_to_setpoint() {
        let lp = loop_at(10.0);
        let op = lp.operating_point(Power::new(50.0), 0.0).unwrap();
        // Wall = setpoint + q/G, nothing else.
        assert!((op.evaporator_wall.value() - (10.0 + 50.0 / 25.0)).abs() < 1e-12);
        assert!(op.exit_quality > 0.0 && op.exit_quality < 0.35);
        assert!(op.pressure_drop.value() < lp.pump_head.value());
    }

    #[test]
    fn tilt_is_nearly_irrelevant() {
        // The pump head dwarfs the static column: 90° adverse tilt
        // costs only a few percent of transport capability — the wick
        // devices lose tens of percent or everything.
        let lp = loop_at(0.0);
        let (_, q_flat) = lp.max_transport(0.0).unwrap();
        let (_, q_up) = lp.max_transport(90f64.to_radians()).unwrap();
        assert!(q_up.value() > 0.85 * q_flat.value(), "{q_up} vs {q_flat}");
    }

    #[test]
    fn dry_out_payload_names_limit_and_margin() {
        let lp = loop_at(0.0);
        let (limit, q_max) = lp.max_transport(0.0).unwrap();
        let err = lp.operating_point(q_max * 1.25, 0.0).unwrap_err();
        assert_eq!(
            err,
            TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q_max * 1.25,
            }
        );
        assert_eq!(err.dry_out_margin(), Some(q_max * 1.25 - q_max));
    }

    #[test]
    fn setpoint_outside_co2_table_is_rejected() {
        // 40 °C is past the CO₂ critical point — not a valid setpoint.
        assert!(PumpedTwoPhaseLoop::co2_ams02(Celsius::new(40.0)).is_err());
    }

    #[test]
    fn mass_includes_pump_and_charge() {
        let m = loop_at(0.0).mass_estimate();
        assert!(m > 1.8 && m < 3.0, "pumped loop mass {m:.2} kg");
    }
}
