//! Property-style tests of the two-phase device models, driven by the
//! deterministic in-repo [`SplitMix64`] generator so the suite runs
//! fully offline.

use aeropack_materials::WorkingFluid;
use aeropack_twophase::{HeatPipe, LoopHeatPipe, Thermosyphon, VaporChamber};
use aeropack_units::{Area, Celsius, Length, Power, SplitMix64};

const CASES: u64 = 32;

fn pipe() -> HeatPipe {
    HeatPipe::copper_water_6mm(
        Length::from_millimeters(70.0),
        Length::from_millimeters(120.0),
        Length::from_millimeters(70.0),
    )
    .expect("valid pipe")
}

#[test]
fn heat_pipe_capillary_monotone_in_tilt() {
    let mut rng = SplitMix64::new(0x2f00_0001);
    for _ in 0..CASES {
        let t_op = rng.range_f64(20.0, 150.0);
        let tilt1 = rng.range_f64(0.0, 0.7);
        let dtilt = rng.range_f64(0.05, 0.7);
        let p = pipe();
        let q1 = p.limits(Celsius::new(t_op), tilt1).unwrap().capillary;
        let q2 = p
            .limits(Celsius::new(t_op), tilt1 + dtilt)
            .unwrap()
            .capillary;
        assert!(q2.value() <= q1.value() + 1e-9);
    }
}

#[test]
fn heat_pipe_limits_all_positive_in_range() {
    let mut rng = SplitMix64::new(0x2f00_0002);
    for _ in 0..CASES {
        let t_op = rng.range_f64(10.0, 180.0);
        let limits = pipe().limits(Celsius::new(t_op), 0.0).unwrap();
        assert!(limits.capillary.value() > 0.0);
        assert!(limits.sonic.value() > 0.0);
        assert!(limits.entrainment.value() > 0.0);
        assert!(limits.boiling.value() >= 0.0);
        assert!(limits.viscous.value() > 0.0);
        // The governing limit is one of the five.
        let (_, q) = limits.governing();
        assert!(q.value() <= limits.capillary.value() + 1e-9);
    }
}

#[test]
fn heat_pipe_resistance_positive_and_bounded() {
    let mut rng = SplitMix64::new(0x2f00_0003);
    for _ in 0..CASES {
        let t_op = rng.range_f64(10.0, 180.0);
        let r = pipe().thermal_resistance(Celsius::new(t_op)).unwrap();
        assert!(r.value() > 0.0 && r.value() < 2.0, "R = {r}");
    }
}

#[test]
fn lhp_case_temperature_monotone_in_power() {
    let mut rng = SplitMix64::new(0x2f00_0004);
    for _ in 0..CASES {
        let sink = rng.range_f64(10.0, 45.0);
        let q1 = rng.range_f64(2.0, 25.0);
        let dq = rng.range_f64(1.0, 15.0);
        let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8)).unwrap();
        let sink = Celsius::new(sink);
        let op1 = lhp.operating_point(Power::new(q1), sink, 0.2).unwrap();
        let op2 = lhp.operating_point(Power::new(q1 + dq), sink, 0.2).unwrap();
        assert!(op2.case_temperature >= op1.case_temperature);
        // Conductance stays positive and finite.
        assert!(op1.conductance.value() > 0.0 && op1.conductance.is_finite());
    }
}

#[test]
fn lhp_max_transport_monotone_in_tilt() {
    let mut rng = SplitMix64::new(0x2f00_0005);
    for _ in 0..CASES {
        let sink = rng.range_f64(15.0, 40.0);
        let tilt = rng.range_f64(0.1, 1.4);
        let lhp = LoopHeatPipe::ammonia_seb(Length::new(1.0)).unwrap();
        let sink = Celsius::new(sink);
        let q_flat = lhp.max_transport(sink, 0.0).unwrap();
        let q_tilt = lhp.max_transport(sink, tilt).unwrap();
        assert!(q_tilt.value() <= q_flat.value() + 1e-6);
    }
}

#[test]
fn thermosyphon_flooding_scales_with_diameter() {
    let mut rng = SplitMix64::new(0x2f00_0006);
    for _ in 0..CASES {
        let d1_mm = rng.range_f64(4.0, 12.0);
        let factor = rng.range_f64(1.2, 2.5);
        let t_op = rng.range_f64(40.0, 120.0);
        let build = |d_mm: f64| {
            Thermosyphon::new(
                WorkingFluid::water(),
                Length::from_millimeters(d_mm),
                Length::from_millimeters(150.0),
                Length::from_millimeters(150.0),
            )
            .unwrap()
        };
        let q1 = build(d1_mm)
            .flooding_limit(Celsius::new(t_op), 0.0)
            .unwrap();
        let q2 = build(d1_mm * factor)
            .flooding_limit(Celsius::new(t_op), 0.0)
            .unwrap();
        // Flooding ∝ area ∝ d².
        let ratio = q2.value() / q1.value();
        assert!((ratio - factor * factor).abs() / (factor * factor) < 1e-9);
    }
}

#[test]
fn vapor_chamber_conductivity_grows_with_core() {
    let mut rng = SplitMix64::new(0x2f00_0007);
    for _ in 0..CASES {
        let t_total_mm = rng.range_f64(2.5, 6.0);
        let t_op = rng.range_f64(30.0, 90.0);
        let thin = VaporChamber::water_spreader((0.05, 0.05), Length::from_millimeters(t_total_mm))
            .unwrap();
        let thick =
            VaporChamber::water_spreader((0.05, 0.05), Length::from_millimeters(t_total_mm + 1.0))
                .unwrap();
        let k_thin = thin.vapor_core_conductivity(Celsius::new(t_op)).unwrap();
        let k_thick = thick.vapor_core_conductivity(Celsius::new(t_op)).unwrap();
        assert!(k_thick.value() > k_thin.value());
    }
}

#[test]
fn vapor_chamber_operate_respects_its_own_limit() {
    let mut rng = SplitMix64::new(0x2f00_0008);
    for _ in 0..CASES {
        let src_cm2 = rng.range_f64(0.5, 8.0);
        let t_op = rng.range_f64(35.0, 90.0);
        let vc = VaporChamber::water_spreader((0.08, 0.08), Length::from_millimeters(3.0)).unwrap();
        let src = Area::from_square_centimeters(src_cm2);
        let (_, q_max) = vc.max_power(src, Celsius::new(t_op)).unwrap();
        assert!(vc.operate(q_max * 0.99, src, Celsius::new(t_op)).is_ok());
        assert!(vc.operate(q_max * 1.01, src, Celsius::new(t_op)).is_err());
    }
}
