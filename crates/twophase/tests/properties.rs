//! Property-style tests of the two-phase device models, driven through
//! the [`aeropack_verify`] harness: failures shrink to a minimal
//! counterexample and print a one-line reproducer seed.

use aeropack_materials::WorkingFluid;
use aeropack_twophase::{HeatPipe, LoopHeatPipe, Thermosyphon, VaporChamber};
use aeropack_units::{Area, Celsius, Length, Power};
use aeropack_verify::{check, ensure, tuple3, Gen};

const CASES: u64 = 32;

fn pipe() -> HeatPipe {
    HeatPipe::copper_water_6mm(
        Length::from_millimeters(70.0),
        Length::from_millimeters(120.0),
        Length::from_millimeters(70.0),
    )
    .expect("valid pipe")
}

#[test]
fn heat_pipe_capillary_monotone_in_tilt() {
    let gen = tuple3(
        &Gen::f64_range(20.0, 150.0),
        &Gen::f64_range(0.0, 0.7),
        &Gen::f64_range(0.05, 0.7),
    );
    check(0x2f00_0001, CASES, &gen, |&(t_op, tilt1, dtilt)| {
        let p = pipe();
        let q1 = p
            .limits(Celsius::new(t_op), tilt1)
            .map_err(|e| e.to_string())?
            .capillary;
        let q2 = p
            .limits(Celsius::new(t_op), tilt1 + dtilt)
            .map_err(|e| e.to_string())?
            .capillary;
        ensure!(
            q2.value() <= q1.value() + 1e-9,
            "tilt {tilt1}+{dtilt} raised capillary {} to {}",
            q1.value(),
            q2.value()
        );
        Ok(())
    });
}

#[test]
fn heat_pipe_limits_all_positive_in_range() {
    check(0x2f00_0002, CASES, &Gen::f64_range(10.0, 180.0), |&t_op| {
        let limits = pipe()
            .limits(Celsius::new(t_op), 0.0)
            .map_err(|e| e.to_string())?;
        ensure!(limits.capillary.value() > 0.0);
        ensure!(limits.sonic.value() > 0.0);
        ensure!(limits.entrainment.value() > 0.0);
        ensure!(limits.boiling.value() >= 0.0);
        ensure!(limits.viscous.value() > 0.0);
        // The governing limit is one of the five.
        let (_, q) = limits.governing();
        ensure!(q.value() <= limits.capillary.value() + 1e-9);
        Ok(())
    });
}

#[test]
fn heat_pipe_resistance_positive_and_bounded() {
    check(0x2f00_0003, CASES, &Gen::f64_range(10.0, 180.0), |&t_op| {
        let r = pipe()
            .thermal_resistance(Celsius::new(t_op))
            .map_err(|e| e.to_string())?;
        ensure!(r.value() > 0.0 && r.value() < 2.0, "R = {r}");
        Ok(())
    });
}

#[test]
fn lhp_case_temperature_monotone_in_power() {
    let gen = tuple3(
        &Gen::f64_range(10.0, 45.0),
        &Gen::f64_range(2.0, 25.0),
        &Gen::f64_range(1.0, 15.0),
    );
    check(0x2f00_0004, CASES, &gen, |&(sink, q1, dq)| {
        let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8)).map_err(|e| e.to_string())?;
        let sink = Celsius::new(sink);
        let op1 = lhp
            .operating_point(Power::new(q1), sink, 0.2)
            .map_err(|e| e.to_string())?;
        let op2 = lhp
            .operating_point(Power::new(q1 + dq), sink, 0.2)
            .map_err(|e| e.to_string())?;
        ensure!(
            op2.case_temperature >= op1.case_temperature,
            "case T fell when power rose by {dq} W"
        );
        // Conductance stays positive and finite.
        ensure!(op1.conductance.value() > 0.0 && op1.conductance.is_finite());
        Ok(())
    });
}

#[test]
fn lhp_max_transport_monotone_in_tilt() {
    let gen = Gen::f64_range(15.0, 40.0).zip(&Gen::f64_range(0.1, 1.4));
    check(0x2f00_0005, CASES, &gen, |&(sink, tilt)| {
        let lhp = LoopHeatPipe::ammonia_seb(Length::new(1.0)).map_err(|e| e.to_string())?;
        let sink = Celsius::new(sink);
        let q_flat = lhp.max_transport(sink, 0.0).map_err(|e| e.to_string())?;
        let q_tilt = lhp.max_transport(sink, tilt).map_err(|e| e.to_string())?;
        ensure!(
            q_tilt.value() <= q_flat.value() + 1e-6,
            "tilt {tilt} raised max transport {} to {}",
            q_flat.value(),
            q_tilt.value()
        );
        Ok(())
    });
}

#[test]
fn thermosyphon_flooding_scales_with_diameter() {
    let gen = tuple3(
        &Gen::f64_range(4.0, 12.0),
        &Gen::f64_range(1.2, 2.5),
        &Gen::f64_range(40.0, 120.0),
    );
    check(0x2f00_0006, CASES, &gen, |&(d1_mm, factor, t_op)| {
        let build = |d_mm: f64| {
            Thermosyphon::new(
                WorkingFluid::water(),
                Length::from_millimeters(d_mm),
                Length::from_millimeters(150.0),
                Length::from_millimeters(150.0),
            )
            .unwrap()
        };
        let q1 = build(d1_mm)
            .flooding_limit(Celsius::new(t_op), 0.0)
            .map_err(|e| e.to_string())?;
        let q2 = build(d1_mm * factor)
            .flooding_limit(Celsius::new(t_op), 0.0)
            .map_err(|e| e.to_string())?;
        // Flooding ∝ area ∝ d².
        let ratio = q2.value() / q1.value();
        ensure!(
            (ratio - factor * factor).abs() / (factor * factor) < 1e-9,
            "ratio {ratio} vs {}",
            factor * factor
        );
        Ok(())
    });
}

#[test]
fn vapor_chamber_conductivity_grows_with_core() {
    let gen = Gen::f64_range(2.5, 6.0).zip(&Gen::f64_range(30.0, 90.0));
    check(0x2f00_0007, CASES, &gen, |&(t_total_mm, t_op)| {
        let thin = VaporChamber::water_spreader((0.05, 0.05), Length::from_millimeters(t_total_mm))
            .map_err(|e| e.to_string())?;
        let thick =
            VaporChamber::water_spreader((0.05, 0.05), Length::from_millimeters(t_total_mm + 1.0))
                .map_err(|e| e.to_string())?;
        let k_thin = thin
            .vapor_core_conductivity(Celsius::new(t_op))
            .map_err(|e| e.to_string())?;
        let k_thick = thick
            .vapor_core_conductivity(Celsius::new(t_op))
            .map_err(|e| e.to_string())?;
        ensure!(
            k_thick.value() > k_thin.value(),
            "thicker core did not raise k: {k_thick} vs {k_thin}"
        );
        Ok(())
    });
}

#[test]
fn vapor_chamber_operate_respects_its_own_limit() {
    let gen = Gen::f64_range(0.5, 8.0).zip(&Gen::f64_range(35.0, 90.0));
    check(0x2f00_0008, CASES, &gen, |&(src_cm2, t_op)| {
        let vc = VaporChamber::water_spreader((0.08, 0.08), Length::from_millimeters(3.0))
            .map_err(|e| e.to_string())?;
        let src = Area::from_square_centimeters(src_cm2);
        let (_, q_max) = vc
            .max_power(src, Celsius::new(t_op))
            .map_err(|e| e.to_string())?;
        ensure!(vc.operate(q_max * 0.99, src, Celsius::new(t_op)).is_ok());
        ensure!(vc.operate(q_max * 1.01, src, Celsius::new(t_op)).is_err());
        Ok(())
    });
}
