//! Error type for environmental qualification analyses.

use std::error::Error;
use std::fmt;

use aeropack_fem::FemError;

/// Error returned by qualification analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum QualError {
    /// An argument violated a physical constraint.
    InvalidArgument {
        /// Name of the argument.
        name: &'static str,
        /// The violated constraint.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The underlying structural analysis failed.
    Structural(FemError),
}

impl fmt::Display for QualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidArgument {
                name,
                constraint,
                value,
            } => write!(f, "argument `{name}` = {value} violates: {constraint}"),
            Self::Structural(e) => write!(f, "structural analysis: {e}"),
        }
    }
}

impl Error for QualError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Structural(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FemError> for QualError {
    fn from(e: FemError) -> Self {
        Self::Structural(e)
    }
}

impl QualError {
    pub(crate) fn invalid(name: &'static str, constraint: &'static str, value: f64) -> Self {
        Self::InvalidArgument {
            name,
            constraint,
            value,
        }
    }
}
