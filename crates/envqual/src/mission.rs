//! Mission-profile fatigue accumulation (Miner's rule): real equipment
//! does not sit at one vibration level — taxi, take-off, cruise and
//! landing each contribute their share of damage. The qualification
//! levels of §IV.A bound the envelope; this module converts a segment
//! mix into a service life.

use crate::error::QualError;

/// One mission segment: a vibration condition held for a duration, with
/// the fatigue life the structure would have if exposed to it
/// continuously.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionSegment {
    /// Segment name ("taxi", "cruise", …).
    pub name: String,
    /// Hours per mission spent in this segment.
    pub hours: f64,
    /// Continuous-exposure fatigue life at this segment's level, hours
    /// (from [`crate::assess_fatigue`] at the segment PSD).
    pub life_at_level_hours: f64,
}

impl MissionSegment {
    /// Builds a segment.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive duration or life.
    pub fn new(
        name: impl Into<String>,
        hours: f64,
        life_at_level_hours: f64,
    ) -> Result<Self, QualError> {
        if hours <= 0.0 {
            return Err(QualError::invalid("hours", "must be positive", hours));
        }
        if life_at_level_hours <= 0.0 {
            return Err(QualError::invalid(
                "life_at_level_hours",
                "must be positive",
                life_at_level_hours,
            ));
        }
        Ok(Self {
            name: name.into(),
            hours,
            life_at_level_hours,
        })
    }

    /// Miner damage fraction accumulated per mission in this segment.
    pub fn damage_per_mission(&self) -> f64 {
        self.hours / self.life_at_level_hours
    }
}

/// A repeating mission built from segments.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionProfile {
    segments: Vec<MissionSegment>,
}

impl MissionProfile {
    /// Builds a profile.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty segment list.
    pub fn new(segments: Vec<MissionSegment>) -> Result<Self, QualError> {
        if segments.is_empty() {
            return Err(QualError::invalid(
                "segments",
                "profile needs at least one segment",
                0.0,
            ));
        }
        Ok(Self { segments })
    }

    /// Mission duration, hours.
    pub fn mission_hours(&self) -> f64 {
        self.segments.iter().map(|s| s.hours).sum()
    }

    /// Miner damage per mission (failure at 1.0 cumulative).
    pub fn damage_per_mission(&self) -> f64 {
        self.segments
            .iter()
            .map(MissionSegment::damage_per_mission)
            .sum()
    }

    /// Missions to failure under Miner's rule.
    pub fn missions_to_failure(&self) -> f64 {
        1.0 / self.damage_per_mission()
    }

    /// Service life in flight hours.
    pub fn service_life_hours(&self) -> f64 {
        self.missions_to_failure() * self.mission_hours()
    }

    /// The segment contributing the most damage per mission.
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees at least one segment.
    pub fn dominant_segment(&self) -> &MissionSegment {
        self.segments
            .iter()
            .max_by(|a, b| {
                a.damage_per_mission()
                    .partial_cmp(&b.damage_per_mission())
                    .expect("finite damage")
            })
            .expect("non-empty profile")
    }

    /// The segments.
    pub fn segments(&self) -> &[MissionSegment] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_haul() -> MissionProfile {
        MissionProfile::new(vec![
            MissionSegment::new("taxi", 0.3, 2_000.0).unwrap(),
            MissionSegment::new("takeoff/climb", 0.4, 800.0).unwrap(),
            MissionSegment::new("cruise", 1.5, 50_000.0).unwrap(),
            MissionSegment::new("descent/landing", 0.3, 1_500.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn single_segment_reduces_to_plain_life() {
        let p =
            MissionProfile::new(vec![MissionSegment::new("only", 2.0, 10_000.0).unwrap()]).unwrap();
        assert!((p.missions_to_failure() - 5_000.0).abs() < 1e-9);
        assert!((p.service_life_hours() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn damage_is_additive() {
        let p = short_haul();
        let manual: f64 = 0.3 / 2_000.0 + 0.4 / 800.0 + 1.5 / 50_000.0 + 0.3 / 1_500.0;
        assert!((p.damage_per_mission() - manual).abs() < 1e-15);
    }

    #[test]
    fn takeoff_dominates_a_short_haul() {
        // The highest-level/shortest segment usually owns the damage.
        let p = short_haul();
        assert_eq!(p.dominant_segment().name, "takeoff/climb");
    }

    #[test]
    fn service_life_between_bounding_cases() {
        // The mixed life must fall between all-cruise and all-takeoff.
        let p = short_haul();
        let life = p.service_life_hours();
        assert!(life > 800.0, "better than continuous take-off: {life}");
        assert!(life < 50_000.0, "worse than pure cruise: {life}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(MissionSegment::new("x", 0.0, 1.0).is_err());
        assert!(MissionSegment::new("x", 1.0, 0.0).is_err());
        assert!(MissionProfile::new(vec![]).is_err());
    }
}
