//! DO-160 random-vibration spectra and the Steinberg fatigue check.
//!
//! The COSEE seats were vibration-tested "according to DO160 Curve C1";
//! this module encodes the standard's curve shapes (engineering
//! approximations of the Section 8 tables) and evaluates component
//! fatigue life with Steinberg's three-band method on top of the FEM
//! random-response results.

use aeropack_fem::{PsdCurve, RandomResponse};
use aeropack_units::{AccelPsd, Frequency, Length};

use crate::error::QualError;

/// DO-160 Section 8 random-vibration test curves (standard fixed-wing
/// categories, encoded as breakpoint approximations of the published
/// tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Do160Curve {
    /// Curve B1 — low-vibration zones (equipment bays, pressurised
    /// cabin).
    B1,
    /// Curve C — standard turbojet fuselage equipment.
    C,
    /// Curve C1 — the COSEE seat test level (cabin-mounted equipment,
    /// turbofan).
    C1,
    /// Curve D — higher-level zones (near engines).
    D,
}

impl Do160Curve {
    /// The curve as a piecewise log-log PSD.
    ///
    /// # Panics
    ///
    /// Never panics: the encoded breakpoints are statically valid.
    pub fn psd(self) -> PsdCurve {
        let pts = |v: &[(f64, f64)]| {
            PsdCurve::new(
                v.iter()
                    .map(|&(f, p)| (Frequency::new(f), AccelPsd::new(p)))
                    .collect(),
            )
            .expect("static DO-160 breakpoints are valid")
        };
        match self {
            Self::B1 => pts(&[
                (10.0, 0.0005),
                (40.0, 0.002),
                (500.0, 0.002),
                (2000.0, 0.0002),
            ]),
            Self::C => pts(&[
                (10.0, 0.0012),
                (40.0, 0.012),
                (500.0, 0.012),
                (2000.0, 0.0012),
            ]),
            Self::C1 => pts(&[
                (10.0, 0.0008),
                (40.0, 0.008),
                (500.0, 0.008),
                (2000.0, 0.0008),
            ]),
            Self::D => pts(&[(10.0, 0.002), (40.0, 0.02), (2000.0, 0.02)]),
        }
    }

    /// Overall input level in g RMS.
    pub fn grms(self) -> f64 {
        self.psd().grms()
    }
}

/// Component families for the Steinberg board-level fatigue constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentStyle {
    /// Dual-inline / axial leaded parts.
    LeadedDip,
    /// Small-outline / gull-wing surface mount.
    SmtGullWing,
    /// Leadless chip carriers and chip passives.
    Leadless,
    /// Ball-grid arrays.
    Bga,
}

impl ComponentStyle {
    /// Steinberg component constant `c`.
    pub fn steinberg_constant(self) -> f64 {
        match self {
            Self::LeadedDip => 1.0,
            Self::SmtGullWing => 1.0,
            Self::Leadless => 1.26,
            Self::Bga => 1.75,
        }
    }
}

/// Steinberg's allowable 3σ board deflection for 20-million-cycle
/// component life:
/// `Z₃σ = 0.00022·B / (c·h·r·√L)` (inch units internally).
///
/// * `board_edge` — board edge length parallel to the component,
/// * `board_thickness` — PCB thickness,
/// * `component_length` — component body length,
/// * `position_factor` — 1.0 at the board centre, up to ~2 near a
///   supported edge (less curvature),
/// * `style` — component family.
///
/// # Errors
///
/// Returns an error for non-positive dimensions or position factor.
pub fn steinberg_allowable_deflection(
    board_edge: Length,
    board_thickness: Length,
    component_length: Length,
    position_factor: f64,
    style: ComponentStyle,
) -> Result<Length, QualError> {
    for (name, v) in [
        ("board_edge", board_edge.value()),
        ("board_thickness", board_thickness.value()),
        ("component_length", component_length.value()),
        ("position_factor", position_factor),
    ] {
        if v <= 0.0 {
            return Err(QualError::invalid(name, "must be strictly positive", v));
        }
    }
    const M_TO_IN: f64 = 39.370_078_74;
    let b_in = board_edge.value() * M_TO_IN;
    let h_in = board_thickness.value() * M_TO_IN;
    let l_in = component_length.value() * M_TO_IN;
    let z_in = 0.00022 * b_in / (style.steinberg_constant() * h_in * position_factor * l_in.sqrt());
    Ok(Length::new(z_in / M_TO_IN))
}

/// The fatigue assessment of one component location under a random
/// vibration response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatigueAssessment {
    /// Actual 3σ board deflection at the component.
    pub deflection_3sigma: Length,
    /// Steinberg's allowable 3σ deflection for 20 M cycles.
    pub allowable_3sigma: Length,
    /// Predicted life in hours of continued exposure.
    pub life_hours: f64,
    /// Margin = allowable/actual (>1 passes the 20 M-cycle criterion).
    pub margin: f64,
}

impl FatigueAssessment {
    /// Whether the location meets the Steinberg 20-million-cycle
    /// criterion outright.
    pub fn passes(&self) -> bool {
        self.margin >= 1.0
    }
}

/// Evaluates Steinberg fatigue at a component location from the FEM
/// random response (RMS relative displacement + characteristic
/// frequency) using the inverse-power fatigue law with exponent 6.4
/// (solder/lead alloys).
///
/// # Errors
///
/// Returns an error for invalid Steinberg geometry.
pub fn assess_fatigue(
    response: &RandomResponse,
    board_edge: Length,
    board_thickness: Length,
    component_length: Length,
    position_factor: f64,
    style: ComponentStyle,
) -> Result<FatigueAssessment, QualError> {
    let allowable = steinberg_allowable_deflection(
        board_edge,
        board_thickness,
        component_length,
        position_factor,
        style,
    )?;
    let actual = Length::new(3.0 * response.disp_rms);
    let margin = if actual.value() > 0.0 {
        allowable.value() / actual.value()
    } else {
        f64::INFINITY
    };
    // N = 20e6 · margin^6.4 cycles at the characteristic frequency.
    let cycles = 20.0e6 * margin.powf(6.4);
    let rate = response.characteristic_frequency.value().max(1e-9);
    let life_hours = cycles / (rate * 3600.0);
    Ok(FatigueAssessment {
        deflection_3sigma: actual,
        allowable_3sigma: allowable,
        life_hours,
        margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_levels_are_ordered() {
        assert!(Do160Curve::B1.grms() < Do160Curve::C1.grms());
        assert!(Do160Curve::C1.grms() < Do160Curve::C.grms());
        assert!(Do160Curve::C.grms() < Do160Curve::D.grms());
    }

    #[test]
    fn curve_c_magnitude() {
        // DO-160 curve C overall level is a few g RMS.
        let g = Do160Curve::C.grms();
        assert!(g > 2.0 && g < 5.0, "curve C grms = {g}");
    }

    #[test]
    fn steinberg_textbook_example() {
        // Steinberg's classic: 8 in board, 0.08 in thick, 2 in DIP at
        // centre → Z_allow = 0.00022·8/(1·0.08·1·√2) ≈ 0.0156 in.
        let z = steinberg_allowable_deflection(
            Length::new(8.0 * 0.0254),
            Length::new(0.08 * 0.0254),
            Length::new(2.0 * 0.0254),
            1.0,
            ComponentStyle::LeadedDip,
        )
        .unwrap();
        let z_in = z.value() / 0.0254;
        assert!((z_in - 0.01556).abs() < 2e-4, "Z = {z_in} in");
    }

    #[test]
    fn bga_is_stricter_than_dip() {
        let args = (
            Length::new(0.2),
            Length::from_millimeters(1.6),
            Length::from_millimeters(30.0),
        );
        let dip =
            steinberg_allowable_deflection(args.0, args.1, args.2, 1.0, ComponentStyle::LeadedDip)
                .unwrap();
        let bga = steinberg_allowable_deflection(args.0, args.1, args.2, 1.0, ComponentStyle::Bga)
            .unwrap();
        assert!(bga.value() < dip.value());
    }

    #[test]
    fn fatigue_life_scales_with_power_law() {
        use aeropack_fem::RandomResponse;
        let mk = |disp: f64| RandomResponse {
            accel_grms: 5.0,
            disp_rms: disp,
            characteristic_frequency: Frequency::new(200.0),
        };
        let geo = (
            Length::new(0.2),
            Length::from_millimeters(1.6),
            Length::from_millimeters(20.0),
        );
        let a = assess_fatigue(
            &mk(20e-6),
            geo.0,
            geo.1,
            geo.2,
            1.0,
            ComponentStyle::SmtGullWing,
        )
        .unwrap();
        let b = assess_fatigue(
            &mk(40e-6),
            geo.0,
            geo.1,
            geo.2,
            1.0,
            ComponentStyle::SmtGullWing,
        )
        .unwrap();
        // Doubling deflection divides life by 2^6.4 ≈ 84.
        let ratio = a.life_hours / b.life_hours;
        assert!((ratio - 2f64.powf(6.4)).abs() / ratio < 1e-9);
    }

    #[test]
    fn low_response_passes_with_long_life() {
        use aeropack_fem::RandomResponse;
        let resp = RandomResponse {
            accel_grms: 2.0,
            disp_rms: 5e-6,
            characteristic_frequency: Frequency::new(300.0),
        };
        let a = assess_fatigue(
            &resp,
            Length::new(0.2),
            Length::from_millimeters(2.0),
            Length::from_millimeters(15.0),
            1.0,
            ComponentStyle::SmtGullWing,
        )
        .unwrap();
        assert!(a.passes());
        assert!(a.life_hours > 1e4, "life = {} h", a.life_hours);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(steinberg_allowable_deflection(
            Length::ZERO,
            Length::from_millimeters(1.6),
            Length::from_millimeters(10.0),
            1.0,
            ComponentStyle::LeadedDip,
        )
        .is_err());
    }
}
