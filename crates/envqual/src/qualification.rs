//! Qualification campaign reporting: the pass/fail + margin summary the
//! paper's test section boils down to ("the seats have been submitted to
//! all the different tests without damage").

use std::fmt;

/// One qualification test outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test name (e.g. "linear acceleration 9 g").
    pub name: String,
    /// Demonstrated margin (capability / requirement; > 1 passes).
    pub margin: f64,
    /// Short description of the governing observation.
    pub note: String,
}

impl TestOutcome {
    /// Creates an outcome.
    pub fn new(name: impl Into<String>, margin: f64, note: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            margin,
            note: note.into(),
        }
    }

    /// Whether the test passed.
    pub fn passed(&self) -> bool {
        self.margin >= 1.0
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:<38} margin {:>7.2}  {}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.name,
            self.margin,
            self.note
        )
    }
}

/// A full qualification campaign over one equipment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualificationReport {
    outcomes: Vec<TestOutcome>,
}

impl QualificationReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an outcome.
    pub fn record(&mut self, outcome: TestOutcome) {
        self.outcomes.push(outcome);
    }

    /// All recorded outcomes.
    pub fn outcomes(&self) -> &[TestOutcome] {
        &self.outcomes
    }

    /// Whether every recorded test passed.
    pub fn all_passed(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(TestOutcome::passed)
    }

    /// The smallest margin in the campaign (`f64::INFINITY` when empty).
    pub fn worst_margin(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.margin)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for QualificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.outcomes {
            writeln!(f, "{o}")?;
        }
        write!(
            f,
            "overall: {} (worst margin {:.2})",
            if self.all_passed() { "PASS" } else { "FAIL" },
            self.worst_margin()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_outcomes() {
        let mut r = QualificationReport::new();
        r.record(TestOutcome::new(
            "vibration DO-160 C1",
            3.5,
            "fatigue life 9000 h",
        ));
        r.record(TestOutcome::new(
            "linear acceleration 9 g",
            12.0,
            "stress margin",
        ));
        assert!(r.all_passed());
        assert!((r.worst_margin() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn single_failure_fails_campaign() {
        let mut r = QualificationReport::new();
        r.record(TestOutcome::new("ok", 2.0, ""));
        r.record(TestOutcome::new("bad", 0.8, "exceeds limit"));
        assert!(!r.all_passed());
    }

    #[test]
    fn empty_report_is_not_a_pass() {
        assert!(!QualificationReport::new().all_passed());
    }

    #[test]
    fn display_contains_verdicts() {
        let mut r = QualificationReport::new();
        r.record(TestOutcome::new("thermal shock", 1.4, "Engelmaier life"));
        let s = r.to_string();
        assert!(s.contains("PASS"));
        assert!(s.contains("thermal shock"));
    }
}
