//! Thermal-shock profiles and solder-joint low-cycle fatigue
//! (Engelmaier model) — the paper's "thermal shock (−45 °C/+55 °C,
//! 5 °C/min)" qualification case.

use aeropack_units::{Celsius, Length, TempRate};

use crate::error::QualError;

/// A thermal shock / thermal cycling test profile.
///
/// # Examples
///
/// ```
/// use aeropack_envqual::ThermalCycleProfile;
/// use aeropack_units::{Celsius, TempRate};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let shock = ThermalCycleProfile::new(
///     Celsius::new(-45.0), Celsius::new(55.0),
///     TempRate::per_minute(5.0), 900.0)?;
/// assert!((shock.delta().kelvin() - 100.0).abs() < 1e-12);
/// assert!((shock.cycle_duration_seconds() - 2.0 * (1200.0 + 900.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCycleProfile {
    cold: Celsius,
    hot: Celsius,
    ramp: TempRate,
    dwell_seconds: f64,
}

impl ThermalCycleProfile {
    /// Builds a profile.
    ///
    /// # Errors
    ///
    /// Returns an error if `hot ≤ cold`, the ramp is non-positive, or
    /// the dwell is negative.
    pub fn new(
        cold: Celsius,
        hot: Celsius,
        ramp: TempRate,
        dwell_seconds: f64,
    ) -> Result<Self, QualError> {
        if hot.value() <= cold.value() {
            return Err(QualError::invalid(
                "hot",
                "must exceed the cold extreme",
                hot.value(),
            ));
        }
        if ramp.value() <= 0.0 {
            return Err(QualError::invalid("ramp", "must be positive", ramp.value()));
        }
        if dwell_seconds < 0.0 {
            return Err(QualError::invalid(
                "dwell_seconds",
                "cannot be negative",
                dwell_seconds,
            ));
        }
        Ok(Self {
            cold,
            hot,
            ramp,
            dwell_seconds,
        })
    }

    /// The paper's shock profile: −45 °C/+55 °C at 5 °C/min with a
    /// 15-minute dwell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn date2010_shock() -> Result<Self, QualError> {
        Self::new(
            Celsius::new(-45.0),
            Celsius::new(55.0),
            TempRate::per_minute(5.0),
            900.0,
        )
    }

    /// Temperature swing of one cycle.
    pub fn delta(&self) -> aeropack_units::TempDelta {
        self.hot - self.cold
    }

    /// Cold extreme.
    pub fn cold(&self) -> Celsius {
        self.cold
    }

    /// Hot extreme.
    pub fn hot(&self) -> Celsius {
        self.hot
    }

    /// Mean cyclic temperature (enters the Engelmaier exponent).
    pub fn mean(&self) -> Celsius {
        Celsius::new(0.5 * (self.cold.value() + self.hot.value()))
    }

    /// Full cycle duration: two ramps + two dwells, seconds.
    pub fn cycle_duration_seconds(&self) -> f64 {
        2.0 * (self.delta() / self.ramp) + 2.0 * self.dwell_seconds
    }

    /// Temperature at time `t` seconds into the cycle (starting at the
    /// cold dwell end, ramping up first).
    pub fn temperature_at(&self, t_seconds: f64) -> Celsius {
        let ramp_time = self.delta() / self.ramp;
        let period = self.cycle_duration_seconds();
        let t = t_seconds.rem_euclid(period);
        if t < ramp_time {
            self.cold + aeropack_units::TempDelta::new(self.ramp.value() * t)
        } else if t < ramp_time + self.dwell_seconds {
            self.hot
        } else if t < 2.0 * ramp_time + self.dwell_seconds {
            self.hot
                - aeropack_units::TempDelta::new(
                    self.ramp.value() * (t - ramp_time - self.dwell_seconds),
                )
        } else {
            self.cold
        }
    }
}

/// A solder attachment between a component and a board with a CTE
/// mismatch, assessed with the Engelmaier low-cycle fatigue model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolderAttachment {
    /// Distance from the neutral point (half the component diagonal).
    pub neutral_distance: Length,
    /// Solder joint height.
    pub joint_height: Length,
    /// Component CTE, 1/K.
    pub component_cte: f64,
    /// Board CTE, 1/K.
    pub board_cte: f64,
}

impl SolderAttachment {
    /// A leadless ceramic component on FR-4 — the classic worst case.
    pub fn ceramic_on_fr4(body_diagonal_half: Length, joint_height: Length) -> Self {
        Self {
            neutral_distance: body_diagonal_half,
            joint_height,
            component_cte: 6.5e-6,
            board_cte: 15.0e-6,
        }
    }

    /// Cyclic shear-strain range `Δγ = C·L_D·|Δα|·ΔT / h` with the
    /// conventional distribution factor C = 0.5 for stiff leadless
    /// attachments.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate geometry.
    pub fn shear_strain_range(&self, profile: &ThermalCycleProfile) -> Result<f64, QualError> {
        if self.neutral_distance.value() <= 0.0 || self.joint_height.value() <= 0.0 {
            return Err(QualError::invalid(
                "attachment",
                "geometry must be positive",
                self.neutral_distance.value().min(self.joint_height.value()),
            ));
        }
        let d_alpha = (self.component_cte - self.board_cte).abs();
        Ok(
            0.5 * self.neutral_distance.value() * d_alpha * profile.delta().kelvin()
                / self.joint_height.value(),
        )
    }

    /// Engelmaier cycles-to-failure:
    /// `N_f = ½·(Δγ / 2ε_f)^(1/c)` with `ε_f = 0.325` and
    /// `c = −0.442 − 6·10⁻⁴·T_sj + 1.74·10⁻²·ln(1+f)` where `T_sj` is
    /// the mean cyclic solder temperature (°C) and `f` the cycle
    /// frequency in cycles/day.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate geometry.
    pub fn cycles_to_failure(&self, profile: &ThermalCycleProfile) -> Result<f64, QualError> {
        let d_gamma = self.shear_strain_range(profile)?;
        let t_sj = profile.mean().value();
        let cycles_per_day = 86_400.0 / profile.cycle_duration_seconds();
        let c = -0.442 - 6.0e-4 * t_sj + 1.74e-2 * (1.0 + cycles_per_day).ln();
        let eps_f = 0.325;
        Ok(0.5 * (d_gamma / (2.0 * eps_f)).powf(1.0 / c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attachment() -> SolderAttachment {
        SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(120.0),
        )
    }

    #[test]
    fn profile_timing_matches_paper() {
        // 100 K at 5 K/min = 20 min per ramp.
        let p = ThermalCycleProfile::date2010_shock().unwrap();
        assert!((p.delta().kelvin() - 100.0).abs() < 1e-12);
        let ramp = p.delta() / TempRate::per_minute(5.0);
        assert!((ramp - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_waveform_hits_extremes() {
        let p = ThermalCycleProfile::date2010_shock().unwrap();
        let ramp = 1200.0;
        // End of up-ramp → hot.
        assert!((p.temperature_at(ramp).value() - 55.0).abs() < 1e-9);
        // Mid up-ramp → mean.
        assert!((p.temperature_at(ramp / 2.0).value() - 5.0).abs() < 1e-9);
        // During hot dwell.
        assert!((p.temperature_at(ramp + 100.0).value() - 55.0).abs() < 1e-9);
        // Final cold dwell.
        let period = p.cycle_duration_seconds();
        assert!((p.temperature_at(period - 1.0).value() + 45.0).abs() < 1e-9);
    }

    #[test]
    fn wider_swing_shortens_life() {
        let a = attachment();
        let mild = ThermalCycleProfile::new(
            Celsius::new(0.0),
            Celsius::new(60.0),
            TempRate::per_minute(5.0),
            600.0,
        )
        .unwrap();
        let harsh = ThermalCycleProfile::new(
            Celsius::new(-55.0),
            Celsius::new(125.0),
            TempRate::per_minute(5.0),
            600.0,
        )
        .unwrap();
        let n_mild = a.cycles_to_failure(&mild).unwrap();
        let n_harsh = a.cycles_to_failure(&harsh).unwrap();
        assert!(n_mild > 5.0 * n_harsh, "{n_mild} vs {n_harsh}");
    }

    #[test]
    fn life_magnitude_is_credible() {
        // A leadless ceramic part over the paper's shock profile:
        // hundreds to tens of thousands of cycles, not millions.
        let n = attachment()
            .cycles_to_failure(&ThermalCycleProfile::date2010_shock().unwrap())
            .unwrap();
        assert!(n > 100.0 && n < 1.0e6, "N_f = {n}");
    }

    #[test]
    fn taller_joints_live_longer() {
        let p = ThermalCycleProfile::date2010_shock().unwrap();
        let short = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(80.0),
        );
        let tall = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(200.0),
        );
        assert!(tall.cycles_to_failure(&p).unwrap() > short.cycles_to_failure(&p).unwrap());
    }

    #[test]
    fn invalid_profiles() {
        assert!(ThermalCycleProfile::new(
            Celsius::new(50.0),
            Celsius::new(-10.0),
            TempRate::per_minute(5.0),
            0.0
        )
        .is_err());
        assert!(ThermalCycleProfile::new(
            Celsius::new(-10.0),
            Celsius::new(50.0),
            TempRate::ZERO,
            0.0
        )
        .is_err());
    }
}
