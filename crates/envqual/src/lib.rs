//! Environmental qualification and reliability for avionics equipment —
//! the analyses behind the paper's test campaign (9 g linear
//! acceleration, DO-160 curve C1 random vibration, −45/+55 °C thermal
//! shock) and its 40,000 h MTBF figure.
//!
//! * [`Do160Curve`] — the DO-160 Section 8 random-vibration spectra.
//! * [`assess_fatigue`] / [`steinberg_allowable_deflection`] —
//!   Steinberg board-level fatigue on top of the FEM random response.
//! * [`acceleration_test`] — quasi-static inertial load cases.
//! * [`ThermalCycleProfile`] / [`SolderAttachment`] — shock profiles and
//!   Engelmaier solder low-cycle fatigue.
//! * [`ReliabilityModel`] — Arrhenius parts-count MTBF driven by the
//!   Level-3 junction temperatures.
//! * [`QualificationReport`] — the campaign-level pass/fail + margin
//!   summary.
//!
//! # Example
//!
//! ```
//! use aeropack_envqual::Do160Curve;
//!
//! let c1 = Do160Curve::C1.psd();
//! assert!(c1.grms() > 1.5); // a real shake, not a tickle
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acceleration;
mod error;
mod mission;
mod qualification;
mod reliability;
mod thermal_cycle;
mod vibration;

pub use acceleration::{acceleration_test, AccelerationResult};
pub use error::QualError;
pub use mission::{MissionProfile, MissionSegment};
pub use qualification::{QualificationReport, TestOutcome};
pub use reliability::{Environment, PartGroup, PartKind, ReliabilityModel};
pub use thermal_cycle::{SolderAttachment, ThermalCycleProfile};
pub use vibration::{
    assess_fatigue, steinberg_allowable_deflection, ComponentStyle, Do160Curve, FatigueAssessment,
};
