//! Part-count reliability prediction with Arrhenius temperature
//! acceleration — the calculation the paper's Level-3 junction
//! temperatures feed ("the temperature will be used as an input data for
//! the safety and reliability calculations. Typical MTBF for aerospace
//! applications is about 40,000 h").
//!
//! The structure follows the MIL-HDBK-217F parts-count method: each part
//! carries a base failure rate at a reference temperature, multiplied by
//! an Arrhenius temperature factor and an application-environment
//! factor; the equipment failure rate is the series sum.

use aeropack_units::Celsius;

use crate::error::QualError;

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333_262e-5;

/// Reference junction temperature for the base failure rates, °C.
const T_REF_C: f64 = 40.0;

/// Part families with base failure rates (in FIT = failures per 10⁹ h,
/// at 40 °C junction) and activation energies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartKind {
    /// Complex processor / FPGA.
    Microprocessor,
    /// Memory device.
    Memory,
    /// Analog / mixed-signal IC.
    AnalogIc,
    /// Power transistor or power diode.
    PowerSemiconductor,
    /// Small-signal discrete semiconductor.
    SignalSemiconductor,
    /// Ceramic capacitor.
    CeramicCapacitor,
    /// Aluminium/tantalum electrolytic capacitor.
    ElectrolyticCapacitor,
    /// Film or chip resistor.
    Resistor,
    /// Magnetics (inductor, transformer).
    Magnetics,
    /// Board-to-board or I/O connector.
    Connector,
}

impl PartKind {
    /// Base failure rate at 40 °C, FIT.
    pub fn base_fit(self) -> f64 {
        match self {
            Self::Microprocessor => 40.0,
            Self::Memory => 20.0,
            Self::AnalogIc => 15.0,
            Self::PowerSemiconductor => 30.0,
            Self::SignalSemiconductor => 4.0,
            Self::CeramicCapacitor => 1.5,
            Self::ElectrolyticCapacitor => 15.0,
            Self::Resistor => 0.75,
            Self::Magnetics => 5.0,
            Self::Connector => 8.0,
        }
    }

    /// Arrhenius activation energy, eV.
    pub fn activation_energy(self) -> f64 {
        match self {
            Self::Microprocessor | Self::Memory | Self::AnalogIc => 0.55,
            Self::PowerSemiconductor | Self::SignalSemiconductor => 0.5,
            Self::ElectrolyticCapacitor => 0.45,
            Self::CeramicCapacitor => 0.35,
            Self::Resistor | Self::Magnetics | Self::Connector => 0.25,
        }
    }

    /// Arrhenius acceleration factor from the 40 °C reference to a
    /// junction temperature.
    pub fn temperature_factor(self, junction: Celsius) -> f64 {
        let t_ref = Celsius::new(T_REF_C).kelvin();
        let t = junction.kelvin();
        (self.activation_energy() / K_B_EV * (1.0 / t_ref - 1.0 / t)).exp()
    }
}

/// Application environment multipliers (MIL-HDBK-217F π_E flavour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Ground benign (lab).
    GroundBenign,
    /// Ground mobile.
    GroundMobile,
    /// Airborne, inhabited cargo/cabin — the IFE situation.
    AirborneInhabited,
    /// Airborne, uninhabited (equipment bay, fighter).
    AirborneUninhabited,
    /// Space launch / boost — the Ariane situation.
    SpaceLaunch,
}

impl Environment {
    /// The environment multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Self::GroundBenign => 0.5,
            Self::GroundMobile => 3.0,
            Self::AirborneInhabited => 2.0,
            Self::AirborneUninhabited => 4.0,
            Self::SpaceLaunch => 6.0,
        }
    }
}

/// One entry of the parts list: a kind, a count and the (analysed)
/// junction temperature those parts run at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartGroup {
    /// Part family.
    pub kind: PartKind,
    /// Number of such parts.
    pub count: usize,
    /// Operating junction temperature from the Level-3 analysis.
    pub junction: Celsius,
}

/// A parts-count reliability model of one equipment.
///
/// # Examples
///
/// ```
/// use aeropack_envqual::{Environment, PartGroup, PartKind, ReliabilityModel};
/// use aeropack_units::Celsius;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = ReliabilityModel::new(Environment::AirborneInhabited);
/// model.add(PartGroup {
///     kind: PartKind::Microprocessor,
///     count: 2,
///     junction: Celsius::new(95.0),
/// })?;
/// assert!(model.mtbf_hours() > 100_000.0); // two parts only
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityModel {
    environment: Environment,
    groups: Vec<PartGroup>,
}

impl ReliabilityModel {
    /// Creates an empty model for an environment.
    pub fn new(environment: Environment) -> Self {
        Self {
            environment,
            groups: Vec::new(),
        }
    }

    /// Adds a group of identical parts.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero count or an unphysical junction
    /// temperature.
    pub fn add(&mut self, group: PartGroup) -> Result<(), QualError> {
        if group.count == 0 {
            return Err(QualError::invalid("count", "must be at least 1", 0.0));
        }
        if !group.junction.is_physical() {
            return Err(QualError::invalid(
                "junction",
                "must be a physical temperature",
                group.junction.value(),
            ));
        }
        self.groups.push(group);
        Ok(())
    }

    /// Equipment failure rate, failures per hour.
    pub fn failure_rate_per_hour(&self) -> f64 {
        let pi_e = self.environment.factor();
        self.groups
            .iter()
            .map(|g| {
                g.count as f64
                    * g.kind.base_fit()
                    * g.kind.temperature_factor(g.junction)
                    * pi_e
                    * 1e-9
            })
            .sum()
    }

    /// Mean time between failures, hours (`f64::INFINITY` for an empty
    /// model).
    pub fn mtbf_hours(&self) -> f64 {
        let lambda = self.failure_rate_per_hour();
        if lambda > 0.0 {
            1.0 / lambda
        } else {
            f64::INFINITY
        }
    }

    /// The contribution (fraction of total failure rate) of each group,
    /// for Pareto reporting.
    pub fn contributions(&self) -> Vec<(PartKind, f64)> {
        let total = self.failure_rate_per_hour();
        let pi_e = self.environment.factor();
        self.groups
            .iter()
            .map(|g| {
                let lam = g.count as f64
                    * g.kind.base_fit()
                    * g.kind.temperature_factor(g.junction)
                    * pi_e
                    * 1e-9;
                (g.kind, if total > 0.0 { lam / total } else { 0.0 })
            })
            .collect()
    }

    /// A representative avionics computer module: a processor complex,
    /// memory bank, power stage and the passives around them, with all
    /// junction temperatures set to `junction`.
    ///
    /// # Errors
    ///
    /// Propagates add errors (cannot occur for these values).
    pub fn typical_avionics_module(
        environment: Environment,
        junction: Celsius,
    ) -> Result<Self, QualError> {
        let mut model = Self::new(environment);
        for (kind, count) in [
            (PartKind::Microprocessor, 2),
            (PartKind::Memory, 8),
            (PartKind::AnalogIc, 12),
            (PartKind::PowerSemiconductor, 6),
            (PartKind::SignalSemiconductor, 40),
            (PartKind::CeramicCapacitor, 220),
            (PartKind::ElectrolyticCapacitor, 8),
            (PartKind::Resistor, 320),
            (PartKind::Magnetics, 6),
            (PartKind::Connector, 4),
        ] {
            model.add(PartGroup {
                kind,
                count,
                junction,
            })?;
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_factor_grows_with_temperature() {
        let k = PartKind::Microprocessor;
        let f60 = k.temperature_factor(Celsius::new(60.0));
        let f100 = k.temperature_factor(Celsius::new(100.0));
        assert!(f60 > 1.0);
        assert!(f100 > 2.0 * f60);
        // At the reference, exactly 1.
        assert!((k.temperature_factor(Celsius::new(40.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typical_module_hits_paper_mtbf_ballpark() {
        // "Typical MTBF for aerospace applications is about 40,000 h":
        // our representative module at a warm 85 °C junction in an
        // airborne environment lands in that decade.
        let model = ReliabilityModel::typical_avionics_module(
            Environment::AirborneInhabited,
            Celsius::new(85.0),
        )
        .unwrap();
        let mtbf = model.mtbf_hours();
        assert!(
            mtbf > 15_000.0 && mtbf < 150_000.0,
            "module MTBF = {mtbf:.0} h"
        );
    }

    #[test]
    fn cooler_junctions_give_longer_mtbf() {
        let hot = ReliabilityModel::typical_avionics_module(
            Environment::AirborneInhabited,
            Celsius::new(110.0),
        )
        .unwrap();
        let cool = ReliabilityModel::typical_avionics_module(
            Environment::AirborneInhabited,
            Celsius::new(70.0),
        )
        .unwrap();
        assert!(cool.mtbf_hours() > 1.8 * hot.mtbf_hours());
    }

    #[test]
    fn harsher_environment_shortens_mtbf() {
        let t = Celsius::new(85.0);
        let cabin =
            ReliabilityModel::typical_avionics_module(Environment::AirborneInhabited, t).unwrap();
        let launch =
            ReliabilityModel::typical_avionics_module(Environment::SpaceLaunch, t).unwrap();
        let ratio = cabin.mtbf_hours() / launch.mtbf_hours();
        assert!((ratio - 3.0).abs() < 1e-9, "π_E ratio 6/2: {ratio}");
    }

    #[test]
    fn contributions_sum_to_one() {
        let model = ReliabilityModel::typical_avionics_module(
            Environment::AirborneInhabited,
            Celsius::new(85.0),
        )
        .unwrap();
        let total: f64 = model.contributions().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_model_is_infinite() {
        let model = ReliabilityModel::new(Environment::GroundBenign);
        assert_eq!(model.mtbf_hours(), f64::INFINITY);
    }

    #[test]
    fn invalid_groups_rejected() {
        let mut model = ReliabilityModel::new(Environment::GroundBenign);
        assert!(model
            .add(PartGroup {
                kind: PartKind::Resistor,
                count: 0,
                junction: Celsius::new(50.0),
            })
            .is_err());
        assert!(model
            .add(PartGroup {
                kind: PartKind::Resistor,
                count: 1,
                junction: Celsius::new(-400.0),
            })
            .is_err());
    }
}
