//! Quasi-static linear-acceleration qualification — the paper's
//! "linear acceleration (up to 9 g, 3 minutes in each axis)" test,
//! evaluated as an inertial static load case on the structural model.

use aeropack_fem::{Dof, Model};
use aeropack_units::{Acceleration, Length, Stress};

use crate::error::QualError;

/// Result of a quasi-static acceleration load case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelerationResult {
    /// Peak out-of-plane deflection anywhere on the model.
    pub max_deflection: Length,
    /// Estimated peak bending stress (from the peak curvature of the
    /// deformed shape).
    pub max_stress: Stress,
    /// Margin against the allowable stress (>1 passes).
    pub stress_margin: f64,
}

impl AccelerationResult {
    /// Whether the stress margin exceeds unity.
    pub fn passes(&self) -> bool {
        self.stress_margin >= 1.0
    }
}

/// Runs the inertial load case: every mass in the model pulls with
/// `a·m` on its translational DOF (consistent-mass loading `f = M·r·a`),
/// the static problem is solved, and the peak deflection and the
/// recovered bending stress are reported against `allowable`.
///
/// The bending stress is recovered element by element: curvatures from
/// the ACM shape functions at each plate-element centre, moments
/// through the stored per-element rigidity, equivalent outer-fibre
/// stress.
///
/// # Errors
///
/// Returns an error for non-positive inputs or a singular (unsupported)
/// model.
pub fn acceleration_test(
    model: &Model,
    accel: Acceleration,
    allowable: Stress,
) -> Result<AccelerationResult, QualError> {
    if accel.value() <= 0.0 {
        return Err(QualError::invalid(
            "accel",
            "must be positive",
            accel.value(),
        ));
    }
    if allowable.value() <= 0.0 {
        return Err(QualError::invalid(
            "allowable",
            "must be positive",
            allowable.value(),
        ));
    }
    // f = M·r·a over all DOFs.
    let r = model.influence_vector();
    let mr = model.mass().matvec(&r);
    let loads: Vec<(usize, Dof, f64)> = (0..model.node_count())
        .map(|n| (n, Dof::W, -mr[3 * n] * accel.value()))
        .collect();
    let u = model.solve_static(&loads)?;

    let mut max_w: f64 = 0.0;
    for n in 0..model.node_count() {
        max_w = max_w.max(u[3 * n].abs());
    }

    // Element-level stress recovery (curvatures → moments → outer-fibre
    // equivalent stress at each plate-element centre).
    let sigma = model.max_bending_stress(&u)?;
    let margin = if sigma > 0.0 {
        allowable.value() / sigma
    } else {
        f64::INFINITY
    };
    Ok(AccelerationResult {
        max_deflection: Length::new(max_w),
        max_stress: Stress::new(sigma),
        stress_margin: margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_fem::{PlateMesh, PlateProperties};
    use aeropack_materials::Material;

    fn board() -> (PlateMesh, PlateProperties) {
        let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
            .unwrap()
            .with_smeared_mass(2.0);
        let mut mesh = PlateMesh::rectangular(0.16, 0.1, 6, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        (mesh, props)
    }

    #[test]
    fn nine_g_is_mild_for_a_supported_board() {
        let (mesh, _props) = board();
        let res = acceleration_test(
            &mesh.model,
            Acceleration::from_g(9.0),
            Material::fr4().yield_strength,
        )
        .unwrap();
        assert!(res.passes(), "margin = {}", res.stress_margin);
        // Deflections are tens of microns, not millimetres.
        assert!(res.max_deflection.value() < 5e-4, "{}", res.max_deflection);
    }

    #[test]
    fn deflection_scales_linearly_with_g() {
        let (mesh, _props) = board();
        let run = |g: f64| {
            acceleration_test(
                &mesh.model,
                Acceleration::from_g(g),
                Material::fr4().yield_strength,
            )
            .unwrap()
        };
        let a = run(3.0);
        let b = run(9.0);
        let ratio = b.max_deflection.value() / a.max_deflection.value();
        assert!((ratio - 3.0).abs() < 1e-6, "linear scaling: {ratio}");
    }

    #[test]
    fn absurd_acceleration_fails() {
        let (mesh, _props) = board();
        let res = acceleration_test(
            &mesh.model,
            Acceleration::from_g(100_000.0),
            Material::fr4().yield_strength,
        )
        .unwrap();
        assert!(!res.passes());
    }

    #[test]
    fn invalid_inputs() {
        let (mesh, _props) = board();
        assert!(acceleration_test(
            &mesh.model,
            Acceleration::ZERO,
            Material::fr4().yield_strength,
        )
        .is_err());
    }
}
