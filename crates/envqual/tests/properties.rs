//! Property-style tests of the qualification and reliability models,
//! driven through the [`aeropack_verify`] harness: failures shrink to a
//! minimal counterexample and print a one-line reproducer seed.

use aeropack_envqual::{
    steinberg_allowable_deflection, ComponentStyle, Environment, PartGroup, PartKind,
    ReliabilityModel, SolderAttachment, ThermalCycleProfile,
};
use aeropack_units::{Celsius, Length, TempRate};
use aeropack_verify::{check, ensure, tuple3, Gen};

const CASES: u64 = 48;

#[test]
fn steinberg_scaling_laws() {
    let gen = tuple3(
        &Gen::f64_range(80.0, 300.0),
        &Gen::f64_range(1.0, 3.2),
        &Gen::f64_range(5.0, 50.0),
    );
    check(0xe9a1_0001, CASES, &gen, |&(edge_mm, t_mm, comp_mm)| {
        let z = |e: f64, t: f64, c: f64| {
            steinberg_allowable_deflection(
                Length::from_millimeters(e),
                Length::from_millimeters(t),
                Length::from_millimeters(c),
                1.0,
                ComponentStyle::SmtGullWing,
            )
            .unwrap()
            .value()
        };
        let base = z(edge_mm, t_mm, comp_mm);
        // Linear in board edge.
        ensure!((z(2.0 * edge_mm, t_mm, comp_mm) - 2.0 * base).abs() < 1e-9 * base);
        // Inverse in thickness.
        ensure!((z(edge_mm, 2.0 * t_mm, comp_mm) - base / 2.0).abs() < 1e-9 * base);
        // Inverse square-root in component length.
        ensure!((z(edge_mm, t_mm, 4.0 * comp_mm) - base / 2.0).abs() < 1e-9 * base);
        Ok(())
    });
}

#[test]
fn engelmaier_life_monotone_in_swing() {
    let gen = tuple3(
        &Gen::f64_range(-55.0, 0.0),
        &Gen::f64_range(40.0, 80.0),
        &Gen::f64_range(5.0, 60.0),
    );
    check(0xe9a1_0002, CASES, &gen, |&(cold, hot1, widen)| {
        let attach = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(120.0),
        );
        let profile = |hot: f64| {
            ThermalCycleProfile::new(
                Celsius::new(cold),
                Celsius::new(hot),
                TempRate::per_minute(5.0),
                600.0,
            )
            .map_err(|e| e.to_string())
        };
        let n_mild = attach
            .cycles_to_failure(&profile(hot1)?)
            .map_err(|e| e.to_string())?;
        let n_harsh = attach
            .cycles_to_failure(&profile(hot1 + widen)?)
            .map_err(|e| e.to_string())?;
        ensure!(
            n_harsh < n_mild,
            "wider swing must shorten life: {n_harsh} vs {n_mild}"
        );
        ensure!(n_harsh > 0.0);
        Ok(())
    });
}

#[test]
fn engelmaier_life_monotone_in_joint_height() {
    let gen = Gen::f64_range(60.0, 150.0).zip(&Gen::f64_range(1.2, 2.5));
    check(0xe9a1_0003, CASES, &gen, |&(h1_um, grow)| {
        let profile = ThermalCycleProfile::date2010_shock().map_err(|e| e.to_string())?;
        let joint = |h_um: f64| {
            SolderAttachment::ceramic_on_fr4(
                Length::from_millimeters(8.0),
                Length::from_micrometers(h_um),
            )
        };
        let short = joint(h1_um)
            .cycles_to_failure(&profile)
            .map_err(|e| e.to_string())?;
        let tall = joint(h1_um * grow)
            .cycles_to_failure(&profile)
            .map_err(|e| e.to_string())?;
        ensure!(
            tall > short,
            "taller joint must live longer: {tall} vs {short}"
        );
        Ok(())
    });
}

#[test]
fn arrhenius_monotone_and_unity_at_reference() {
    let gen = Gen::f64_range(40.0, 120.0).zip(&Gen::f64_range(1.0, 40.0));
    check(0xe9a1_0004, CASES, &gen, |&(t1, dt)| {
        for kind in [
            PartKind::Microprocessor,
            PartKind::PowerSemiconductor,
            PartKind::CeramicCapacitor,
            PartKind::Resistor,
        ] {
            let f1 = kind.temperature_factor(Celsius::new(t1));
            let f2 = kind.temperature_factor(Celsius::new(t1 + dt));
            ensure!(f2 > f1, "{kind:?} must accelerate with temperature");
            ensure!(f1 >= 1.0 - 1e-12, "above the 40 °C reference");
        }
        Ok(())
    });
}

#[test]
fn mtbf_additivity() {
    let gen = tuple3(
        &Gen::usize_range(1, 50),
        &Gen::usize_range(1, 50),
        &Gen::f64_range(40.0, 110.0),
    );
    check(0xe9a1_0005, CASES, &gen, |&(n1, n2, tj)| {
        // Failure rates add: λ(A∪B) = λ(A) + λ(B).
        let t = Celsius::new(tj);
        let single = |kind: PartKind, count: usize| -> Result<f64, String> {
            let mut m = ReliabilityModel::new(Environment::AirborneInhabited);
            m.add(PartGroup {
                kind,
                count,
                junction: t,
            })
            .map_err(|e| e.to_string())?;
            Ok(m.failure_rate_per_hour())
        };
        let mut both = ReliabilityModel::new(Environment::AirborneInhabited);
        both.add(PartGroup {
            kind: PartKind::Memory,
            count: n1,
            junction: t,
        })
        .map_err(|e| e.to_string())?;
        both.add(PartGroup {
            kind: PartKind::Resistor,
            count: n2,
            junction: t,
        })
        .map_err(|e| e.to_string())?;
        let sum = single(PartKind::Memory, n1)? + single(PartKind::Resistor, n2)?;
        ensure!(
            (both.failure_rate_per_hour() - sum).abs() < 1e-18,
            "λ(A∪B) = {}, λ(A)+λ(B) = {sum}",
            both.failure_rate_per_hour()
        );
        Ok(())
    });
}

#[test]
fn cycle_waveform_stays_within_extremes() {
    check(0xe9a1_0006, CASES, &Gen::f64_range(0.0, 4.0), |&t_frac| {
        let p = ThermalCycleProfile::date2010_shock().map_err(|e| e.to_string())?;
        let t = p.temperature_at(t_frac * p.cycle_duration_seconds());
        ensure!(t >= p.cold() - aeropack_units::TempDelta::new(1e-9));
        ensure!(t <= p.hot() + aeropack_units::TempDelta::new(1e-9));
        Ok(())
    });
}
