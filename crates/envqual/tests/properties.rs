//! Property-style tests of the qualification and reliability models,
//! driven by the deterministic in-repo [`SplitMix64`] generator so the
//! suite runs fully offline.

use aeropack_envqual::{
    steinberg_allowable_deflection, ComponentStyle, Environment, PartGroup, PartKind,
    ReliabilityModel, SolderAttachment, ThermalCycleProfile,
};
use aeropack_units::{Celsius, Length, SplitMix64, TempRate};

const CASES: u64 = 48;

#[test]
fn steinberg_scaling_laws() {
    let mut rng = SplitMix64::new(0xe9a1_0001);
    for _ in 0..CASES {
        let edge_mm = rng.range_f64(80.0, 300.0);
        let t_mm = rng.range_f64(1.0, 3.2);
        let comp_mm = rng.range_f64(5.0, 50.0);
        let z = |e: f64, t: f64, c: f64| {
            steinberg_allowable_deflection(
                Length::from_millimeters(e),
                Length::from_millimeters(t),
                Length::from_millimeters(c),
                1.0,
                ComponentStyle::SmtGullWing,
            )
            .unwrap()
            .value()
        };
        let base = z(edge_mm, t_mm, comp_mm);
        // Linear in board edge.
        assert!((z(2.0 * edge_mm, t_mm, comp_mm) - 2.0 * base).abs() < 1e-9 * base);
        // Inverse in thickness.
        assert!((z(edge_mm, 2.0 * t_mm, comp_mm) - base / 2.0).abs() < 1e-9 * base);
        // Inverse square-root in component length.
        assert!((z(edge_mm, t_mm, 4.0 * comp_mm) - base / 2.0).abs() < 1e-9 * base);
    }
}

#[test]
fn engelmaier_life_monotone_in_swing() {
    let mut rng = SplitMix64::new(0xe9a1_0002);
    for _ in 0..CASES {
        let cold = rng.range_f64(-55.0, 0.0);
        let hot1 = rng.range_f64(40.0, 80.0);
        let widen = rng.range_f64(5.0, 60.0);
        let attach = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(120.0),
        );
        let mild = ThermalCycleProfile::new(
            Celsius::new(cold),
            Celsius::new(hot1),
            TempRate::per_minute(5.0),
            600.0,
        )
        .unwrap();
        let harsh = ThermalCycleProfile::new(
            Celsius::new(cold),
            Celsius::new(hot1 + widen),
            TempRate::per_minute(5.0),
            600.0,
        )
        .unwrap();
        let n_mild = attach.cycles_to_failure(&mild).unwrap();
        let n_harsh = attach.cycles_to_failure(&harsh).unwrap();
        assert!(n_harsh < n_mild, "wider swing must shorten life");
        assert!(n_harsh > 0.0);
    }
}

#[test]
fn engelmaier_life_monotone_in_joint_height() {
    let mut rng = SplitMix64::new(0xe9a1_0003);
    for _ in 0..CASES {
        let h1_um = rng.range_f64(60.0, 150.0);
        let grow = rng.range_f64(1.2, 2.5);
        let profile = ThermalCycleProfile::date2010_shock().unwrap();
        let short = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(h1_um),
        );
        let tall = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(h1_um * grow),
        );
        assert!(
            tall.cycles_to_failure(&profile).unwrap() > short.cycles_to_failure(&profile).unwrap()
        );
    }
}

#[test]
fn arrhenius_monotone_and_unity_at_reference() {
    let mut rng = SplitMix64::new(0xe9a1_0004);
    for _ in 0..CASES {
        let t1 = rng.range_f64(40.0, 120.0);
        let dt = rng.range_f64(1.0, 40.0);
        for kind in [
            PartKind::Microprocessor,
            PartKind::PowerSemiconductor,
            PartKind::CeramicCapacitor,
            PartKind::Resistor,
        ] {
            let f1 = kind.temperature_factor(Celsius::new(t1));
            let f2 = kind.temperature_factor(Celsius::new(t1 + dt));
            assert!(f2 > f1, "{kind:?} must accelerate with temperature");
            assert!(f1 >= 1.0 - 1e-12, "above the 40 °C reference");
        }
    }
}

#[test]
fn mtbf_additivity() {
    let mut rng = SplitMix64::new(0xe9a1_0005);
    for _ in 0..CASES {
        let n1 = 1 + (rng.next_u64() % 49) as usize;
        let n2 = 1 + (rng.next_u64() % 49) as usize;
        let tj = rng.range_f64(40.0, 110.0);
        // Failure rates add: λ(A∪B) = λ(A) + λ(B).
        let t = Celsius::new(tj);
        let single = |kind: PartKind, count: usize| {
            let mut m = ReliabilityModel::new(Environment::AirborneInhabited);
            m.add(PartGroup {
                kind,
                count,
                junction: t,
            })
            .unwrap();
            m.failure_rate_per_hour()
        };
        let mut both = ReliabilityModel::new(Environment::AirborneInhabited);
        both.add(PartGroup {
            kind: PartKind::Memory,
            count: n1,
            junction: t,
        })
        .unwrap();
        both.add(PartGroup {
            kind: PartKind::Resistor,
            count: n2,
            junction: t,
        })
        .unwrap();
        let sum = single(PartKind::Memory, n1) + single(PartKind::Resistor, n2);
        assert!((both.failure_rate_per_hour() - sum).abs() < 1e-18);
    }
}

#[test]
fn cycle_waveform_stays_within_extremes() {
    let mut rng = SplitMix64::new(0xe9a1_0006);
    for _ in 0..CASES {
        let t_frac = rng.range_f64(0.0, 4.0);
        let p = ThermalCycleProfile::date2010_shock().unwrap();
        let t = p.temperature_at(t_frac * p.cycle_duration_seconds());
        assert!(t >= p.cold() - aeropack_units::TempDelta::new(1e-9));
        assert!(t <= p.hot() + aeropack_units::TempDelta::new(1e-9));
    }
}
