//! Property-based tests of the qualification and reliability models.

use aeropack_envqual::{
    steinberg_allowable_deflection, ComponentStyle, Environment, PartGroup, PartKind,
    ReliabilityModel, SolderAttachment, ThermalCycleProfile,
};
use aeropack_units::{Celsius, Length, TempRate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn steinberg_scaling_laws(
        edge_mm in 80.0..300.0f64,
        t_mm in 1.0..3.2f64,
        comp_mm in 5.0..50.0f64,
    ) {
        let z = |e: f64, t: f64, c: f64| steinberg_allowable_deflection(
            Length::from_millimeters(e),
            Length::from_millimeters(t),
            Length::from_millimeters(c),
            1.0,
            ComponentStyle::SmtGullWing,
        ).unwrap().value();
        let base = z(edge_mm, t_mm, comp_mm);
        // Linear in board edge.
        prop_assert!((z(2.0 * edge_mm, t_mm, comp_mm) - 2.0 * base).abs() < 1e-9 * base);
        // Inverse in thickness.
        prop_assert!((z(edge_mm, 2.0 * t_mm, comp_mm) - base / 2.0).abs() < 1e-9 * base);
        // Inverse square-root in component length.
        prop_assert!(
            (z(edge_mm, t_mm, 4.0 * comp_mm) - base / 2.0).abs() < 1e-9 * base
        );
    }

    #[test]
    fn engelmaier_life_monotone_in_swing(
        cold in -55.0..0.0f64,
        hot1 in 40.0..80.0f64,
        widen in 5.0..60.0f64,
    ) {
        let attach = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(120.0),
        );
        let mild = ThermalCycleProfile::new(
            Celsius::new(cold), Celsius::new(hot1), TempRate::per_minute(5.0), 600.0,
        ).unwrap();
        let harsh = ThermalCycleProfile::new(
            Celsius::new(cold), Celsius::new(hot1 + widen), TempRate::per_minute(5.0), 600.0,
        ).unwrap();
        let n_mild = attach.cycles_to_failure(&mild).unwrap();
        let n_harsh = attach.cycles_to_failure(&harsh).unwrap();
        prop_assert!(n_harsh < n_mild, "wider swing must shorten life");
        prop_assert!(n_harsh > 0.0);
    }

    #[test]
    fn engelmaier_life_monotone_in_joint_height(
        h1_um in 60.0..150.0f64,
        grow in 1.2..2.5f64,
    ) {
        let profile = ThermalCycleProfile::date2010_shock().unwrap();
        let short = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(h1_um),
        );
        let tall = SolderAttachment::ceramic_on_fr4(
            Length::from_millimeters(8.0),
            Length::from_micrometers(h1_um * grow),
        );
        prop_assert!(
            tall.cycles_to_failure(&profile).unwrap()
                > short.cycles_to_failure(&profile).unwrap()
        );
    }

    #[test]
    fn arrhenius_monotone_and_unity_at_reference(
        t1 in 40.0..120.0f64,
        dt in 1.0..40.0f64,
    ) {
        for kind in [
            PartKind::Microprocessor,
            PartKind::PowerSemiconductor,
            PartKind::CeramicCapacitor,
            PartKind::Resistor,
        ] {
            let f1 = kind.temperature_factor(Celsius::new(t1));
            let f2 = kind.temperature_factor(Celsius::new(t1 + dt));
            prop_assert!(f2 > f1, "{kind:?} must accelerate with temperature");
            prop_assert!(f1 >= 1.0 - 1e-12, "above the 40 °C reference");
        }
    }

    #[test]
    fn mtbf_additivity(
        n1 in 1usize..50,
        n2 in 1usize..50,
        tj in 40.0..110.0f64,
    ) {
        // Failure rates add: λ(A∪B) = λ(A) + λ(B).
        let t = Celsius::new(tj);
        let single = |kind: PartKind, count: usize| {
            let mut m = ReliabilityModel::new(Environment::AirborneInhabited);
            m.add(PartGroup { kind, count, junction: t }).unwrap();
            m.failure_rate_per_hour()
        };
        let mut both = ReliabilityModel::new(Environment::AirborneInhabited);
        both.add(PartGroup { kind: PartKind::Memory, count: n1, junction: t }).unwrap();
        both.add(PartGroup { kind: PartKind::Resistor, count: n2, junction: t }).unwrap();
        let sum = single(PartKind::Memory, n1) + single(PartKind::Resistor, n2);
        prop_assert!((both.failure_rate_per_hour() - sum).abs() < 1e-18);
    }

    #[test]
    fn cycle_waveform_stays_within_extremes(
        t_frac in 0.0..4.0f64,
    ) {
        let p = ThermalCycleProfile::date2010_shock().unwrap();
        let t = p.temperature_at(t_frac * p.cycle_duration_seconds());
        prop_assert!(t >= p.cold() - aeropack_units::TempDelta::new(1e-9));
        prop_assert!(t <= p.hot() + aeropack_units::TempDelta::new(1e-9));
    }
}
