//! The paper's §V cooling decision as an optimizer run.
//!
//! The paper reasons by inspection: conduction rails alone cannot hold
//! 100 W-class equipment, two-phase devices buy the margin back, and
//! tilting the seat derates every capillary device. This example asks
//! NSGA-II the same question three times — conduction rails only, the
//! full design space on a level seat, and the full space at 22°
//! adverse tilt — and prints which topologies survive onto the Pareto
//! front each time, alongside the tilt-derated transport limits the
//! evaluator hands the search.
//!
//! Run with `cargo run --release --example paper_trade -p aeropack-optimize`.

use aeropack_optimize::{DesignSpace, EvalContext, Optimizer, OptimizerConfig, Topology};
use aeropack_sweep::Sweep;
use aeropack_units::{Celsius, Power};

const AMBIENT_C: f64 = 25.0;
const RACK_POWER_W: f64 = 250.0;

fn run(label: &str, space: DesignSpace, tilt_deg: f64) {
    let ctx = EvalContext::new(
        Celsius::new(AMBIENT_C),
        Power::new(RACK_POWER_W),
        tilt_deg.to_radians(),
    );
    let config = OptimizerConfig {
        population: 64,
        generations: 40,
        seed: 0x5a40,
        ..OptimizerConfig::default()
    };
    let result = Optimizer::new(space, config).run(&ctx, &Sweep::new(2));

    let best_dt = result
        .front
        .points()
        .iter()
        .map(|p| p.objectives.dt_k)
        .fold(f64::INFINITY, f64::min);
    println!(
        "{label} — {} evaluations, {} designs on the front, best ΔT {best_dt:.1} K:",
        result.evaluations,
        result.front.len(),
    );
    for topology in Topology::ALL {
        let members: Vec<_> = result
            .front
            .points()
            .iter()
            .filter(|p| p.genome.topology == topology)
            .collect();
        if members.is_empty() {
            continue;
        }
        let dt = members
            .iter()
            .map(|p| p.objectives.dt_k)
            .fold(f64::INFINITY, f64::min);
        let mass = members
            .iter()
            .map(|p| p.objectives.mass_kg)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {:<16} {:>2} design(s)   best ΔT {:>7.2} K   lightest {:>6.3} kg",
            topology.tag(),
            members.len(),
            dt,
            mass
        );
    }
    println!();
}

fn main() {
    println!(
        "{RACK_POWER_W} W avionics rack in a {AMBIENT_C} °C cabin; objectives are\n\
         worst junction ΔT, packaged mass and MIL-HDBK-217F MTBF.\n"
    );

    // 1. The paper's baseline: conduction rails only.
    let rails_only = DesignSpace {
        topologies: vec![Topology::Conduction],
        ..DesignSpace::default()
    };
    run("conduction rails only       ", rails_only, 0.0);

    // 2. Open the full topology space on a level seat.
    run("full design space, level    ", DesignSpace::default(), 0.0);

    // 3. The same search with the seat tilted 22° against the wick.
    run("full design space, 22° tilt ", DesignSpace::default(), 22.0);

    // The mechanism behind the tilted decision, straight from the
    // evaluator: adverse static head derates every capillary device's
    // transport limit, while the pumped loop holds its setpoint.
    let level = EvalContext::new(Celsius::new(AMBIENT_C), Power::new(RACK_POWER_W), 0.0);
    let tilted = EvalContext::new(
        Celsius::new(AMBIENT_C),
        Power::new(RACK_POWER_W),
        22f64.to_radians(),
    );
    println!("transport limits, level → tilted 22°:");
    for t in Topology::ALL {
        let (a, b) = (level.device(t).q_max_w, tilted.device(t).q_max_w);
        println!("  {:<16} {a:>7.1} W → {b:>7.1} W", t.tag());
    }
}
