//! Deterministic multi-objective packaging optimization.
//!
//! The paper's §V trade — stay with conduction rails, add heat pipes,
//! escape to a loop heat pipe, or go to a pumped loop — is a genuine
//! multi-objective decision: junction margin, mass and reliability
//! pull in different directions. This crate closes that loop as a
//! search problem:
//!
//! * [`Genome`]/[`DesignSpace`] — a discrete cooling topology
//!   ([`Topology`]) crossed with continuous packaging parameters (TIM
//!   bond line and fill, board pitch, wall thickness, power margin).
//! * [`EvalContext`] — folds the `aeropack-twophase` device physics
//!   into per-topology characteristics once per run, then evaluates
//!   each genome closed-form: worst ΔT, packaged mass, MIL-HDBK-217F
//!   MTBF from `aeropack-envqual`.
//! * [`Optimizer`] — NSGA-II with all randomness on one serial
//!   [`SplitMix64`](aeropack_units::SplitMix64) stream and all
//!   parallel work behind order-preserving
//!   [`Sweep::map`](aeropack_sweep::Sweep) calls, so a run is
//!   bit-identical at 1, 2 or 8 threads.
//! * [`ParetoFront`] — the canonical non-dominated set with a
//!   [`Fingerprint`](aeropack_solver::Fingerprint)-based hash for
//!   golden gating.
//!
//! # Example
//!
//! ```
//! use aeropack_optimize::{DesignSpace, EvalContext, Optimizer, OptimizerConfig};
//! use aeropack_sweep::Sweep;
//! use aeropack_units::{Celsius, Power};
//!
//! let ctx = EvalContext::new(Celsius::new(25.0), Power::new(120.0), 0.0);
//! let config = OptimizerConfig {
//!     population: 16,
//!     generations: 4,
//!     seed: 7,
//!     ..OptimizerConfig::default()
//! };
//! let result = Optimizer::new(DesignSpace::default(), config).run(&ctx, &Sweep::serial());
//! assert!(!result.front.is_empty());
//! assert_eq!(result.evaluations, 16 * 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod front;
mod genome;
mod nsga;

pub use eval::{dominates, DeviceCharacteristics, EvalContext, Objectives};
pub use front::{ParetoFront, ParetoPoint};
pub use genome::{DesignSpace, GeneRange, Genome, Topology};
pub use nsga::{OptimizeResult, Optimizer, OptimizerConfig};
