//! Deterministic NSGA-II over the sweep engine.
//!
//! The shape is the classical one — fast non-dominated sort, crowding
//! distance, binary tournament, blend crossover, Gaussian mutation,
//! elitist (µ+λ) environmental selection — with two structural choices
//! that make the whole run bit-identical at any thread count:
//!
//! * **All randomness is serial.** One [`SplitMix64`] stream on the
//!   calling thread drives sampling, selection, crossover and
//!   mutation; workers never see the RNG.
//! * **All parallel work is order-preserving and pure.** Objective
//!   evaluation and the O(N²) domination scan go through
//!   [`Sweep::map`], which returns results in input order regardless
//!   of the worker count, and the mapped closures are pure functions
//!   of their input.
//!
//! Ties are always broken by a total order (rank, then crowding with a
//! bit-level f64 fallback, then population index), never by pointer or
//! hash-map iteration order.

use aeropack_obs::{counter, span};
use aeropack_sweep::Sweep;
use aeropack_units::SplitMix64;

use crate::eval::{dominates, EvalContext};
use crate::front::{ParetoFront, ParetoPoint};
use crate::genome::DesignSpace;

/// Run parameters. `population × (generations + 1)` objective
/// evaluations are performed in total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of offspring generations after the initial sample.
    pub generations: usize,
    /// Root seed of the single serial RNG stream.
    pub seed: u64,
    /// Probability a mating pair recombines (else the parents pass
    /// through unchanged, still subject to mutation).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation kick as a fraction of each gene's range.
    pub mutation_sigma: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            population: 128,
            generations: 40,
            seed: 0xae20_9a5e_0b75_c0de,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            mutation_sigma: 0.1,
        }
    }
}

/// The outcome of one optimizer run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// The non-dominated set of the final population.
    pub front: ParetoFront,
    /// The full final population (front members included).
    pub population: Vec<ParetoPoint>,
    /// Objective evaluations performed.
    pub evaluations: u64,
    /// Generations run.
    pub generations: usize,
}

/// Per-individual state the selection operators read.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    rank: u32,
    crowding: f64,
}

/// Descending f64 with a bit-level fallback so the order is total even
/// for the ±∞ crowding sentinels.
fn cmp_f64_desc(a: f64, b: f64) -> std::cmp::Ordering {
    b.partial_cmp(&a)
        .unwrap_or_else(|| b.to_bits().cmp(&a.to_bits()))
}

fn cmp_f64_asc(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b)
        .unwrap_or_else(|| a.to_bits().cmp(&b.to_bits()))
}

/// Fast non-dominated sort: returns the fronts as index lists, best
/// first. The O(N²) domination scan runs through the sweep (pure,
/// order-preserving); the peel is serial.
fn fast_nondominated_sort(objectives: &[[f64; 3]], sweep: &Sweep) -> Vec<Vec<u32>> {
    let n = objectives.len();
    let indices: Vec<u32> = (0..n as u32).collect();
    // For each individual: how many dominate it, and whom it dominates.
    let meta: Vec<(u32, Vec<u32>)> = sweep.map(&indices, |&i| {
        let mine = &objectives[i as usize];
        let mut dominated_by = 0u32;
        let mut dominates_list = Vec::new();
        for (j, other) in objectives.iter().enumerate() {
            if j as u32 == i {
                continue;
            }
            if dominates(other, mine) {
                dominated_by += 1;
            } else if dominates(mine, other) {
                dominates_list.push(j as u32);
            }
        }
        (dominated_by, dominates_list)
    });

    let mut remaining: Vec<u32> = meta.iter().map(|(d, _)| *d).collect();
    let mut fronts: Vec<Vec<u32>> = Vec::new();
    let mut current: Vec<u32> = indices
        .iter()
        .copied()
        .filter(|&i| remaining[i as usize] == 0)
        .collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &meta[i as usize].1 {
                remaining[j as usize] -= 1;
                if remaining[j as usize] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of one front (boundary points get ∞).
fn crowding_distances(front: &[u32], objectives: &[[f64; 3]]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    // `m` walks the objective axes of the inner `[f64; 3]`, not an
    // iterable container.
    #[allow(clippy::needless_range_loop)]
    for m in 0..3 {
        order.sort_by(|&a, &b| {
            cmp_f64_asc(
                objectives[front[a] as usize][m],
                objectives[front[b] as usize][m],
            )
            .then(front[a].cmp(&front[b]))
        });
        let lo = objectives[front[order[0]] as usize][m];
        let hi = objectives[front[order[n - 1]] as usize][m];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range > 0.0 {
            for w in 1..n - 1 {
                let below = objectives[front[order[w - 1]] as usize][m];
                let above = objectives[front[order[w + 1]] as usize][m];
                dist[order[w]] += (above - below) / range;
            }
        }
    }
    dist
}

/// Ranks a population: NSGA rank + crowding for every individual.
fn rank_population(objectives: &[[f64; 3]], sweep: &Sweep) -> Vec<Ranked> {
    let fronts = fast_nondominated_sort(objectives, sweep);
    let mut ranked = vec![
        Ranked {
            rank: u32::MAX,
            crowding: 0.0,
        };
        objectives.len()
    ];
    for (r, front) in fronts.iter().enumerate() {
        let dist = crowding_distances(front, objectives);
        for (&i, &d) in front.iter().zip(&dist) {
            ranked[i as usize] = Ranked {
                rank: r as u32,
                crowding: d,
            };
        }
    }
    ranked
}

/// Binary tournament: lower rank wins, then higher crowding, then
/// lower index — a total order, so the winner is never ambiguous.
fn tournament(ranked: &[Ranked], rng: &mut SplitMix64) -> usize {
    let n = ranked.len() as u64;
    let a = (rng.next_u64() % n) as usize;
    let b = (rng.next_u64() % n) as usize;
    let better = ranked[a]
        .rank
        .cmp(&ranked[b].rank)
        .then(cmp_f64_desc(ranked[a].crowding, ranked[b].crowding))
        .then(a.cmp(&b));
    if better.is_le() {
        a
    } else {
        b
    }
}

/// The optimizer: a design space, a configuration and a run loop.
#[derive(Debug, Clone)]
pub struct Optimizer {
    space: DesignSpace,
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer over `space` with `config`.
    ///
    /// # Panics
    ///
    /// Panics when the population is smaller than 2 or the design
    /// space admits no topology — both are programming errors, not
    /// data errors.
    pub fn new(space: DesignSpace, config: OptimizerConfig) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(
            !space.topologies.is_empty(),
            "design space must admit at least one topology"
        );
        Self { space, config }
    }

    /// The configuration the optimizer was built with.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the search. Bit-identical output for identical
    /// `(space, config, ctx)` at any sweep thread count.
    pub fn run(&self, ctx: &EvalContext, sweep: &Sweep) -> OptimizeResult {
        let _span = span!(
            "optimize.run",
            seed = self.config.seed,
            population = self.config.population,
            generations = self.config.generations
        );
        counter!("optimize.runs");
        let n = self.config.population;
        let mut rng = SplitMix64::new(self.config.seed);
        let mut evaluations = 0u64;

        let evaluate =
            |genomes: &[crate::genome::Genome], evaluations: &mut u64| -> Vec<ParetoPoint> {
                let objectives = sweep.map(genomes, |g| ctx.evaluate(g));
                *evaluations += genomes.len() as u64;
                counter!("optimize.evaluations", genomes.len() as u64);
                genomes
                    .iter()
                    .zip(objectives)
                    .map(|(g, o)| ParetoPoint {
                        genome: *g,
                        objectives: o,
                    })
                    .collect()
            };

        let seeds: Vec<_> = (0..n).map(|_| self.space.sample(&mut rng)).collect();
        let mut population = evaluate(&seeds, &mut evaluations);

        for _ in 0..self.config.generations {
            counter!("optimize.generations");
            let objectives: Vec<[f64; 3]> = population.iter().map(|p| p.minimized()).collect();
            let ranked = rank_population(&objectives, sweep);

            // Breed λ = N offspring on the serial RNG stream.
            let mut offspring = Vec::with_capacity(n);
            while offspring.len() < n {
                let p1 = population[tournament(&ranked, &mut rng)].genome;
                let p2 = population[tournament(&ranked, &mut rng)].genome;
                let (mut c1, mut c2) = if rng.next_f64() < self.config.crossover_rate {
                    self.space.crossover(&p1, &p2, &mut rng)
                } else {
                    (p1, p2)
                };
                self.space.mutate(
                    &mut c1,
                    &mut rng,
                    self.config.mutation_rate,
                    self.config.mutation_sigma,
                );
                self.space.mutate(
                    &mut c2,
                    &mut rng,
                    self.config.mutation_rate,
                    self.config.mutation_sigma,
                );
                offspring.push(c1);
                if offspring.len() < n {
                    offspring.push(c2);
                }
            }
            let offspring = evaluate(&offspring, &mut evaluations);

            // Elitist (µ+λ) environmental selection.
            let mut combined = population;
            combined.extend(offspring);
            let combined_obj: Vec<[f64; 3]> = combined.iter().map(|p| p.minimized()).collect();
            let fronts = fast_nondominated_sort(&combined_obj, sweep);
            let mut next = Vec::with_capacity(n);
            for front in &fronts {
                if next.len() + front.len() <= n {
                    next.extend(front.iter().map(|&i| combined[i as usize]));
                } else {
                    let dist = crowding_distances(front, &combined_obj);
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| {
                        cmp_f64_desc(dist[a], dist[b]).then(front[a].cmp(&front[b]))
                    });
                    for &w in order.iter().take(n - next.len()) {
                        next.push(combined[front[w] as usize]);
                    }
                    break;
                }
            }
            population = next;
        }

        let front = ParetoFront::from_points(&population);
        counter!("optimize.front_size", front.len() as u64);
        OptimizeResult {
            front,
            population,
            evaluations,
            generations: self.config.generations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_units::{Celsius, Power};

    fn quick_config(seed: u64) -> OptimizerConfig {
        OptimizerConfig {
            population: 32,
            generations: 8,
            seed,
            ..OptimizerConfig::default()
        }
    }

    fn ctx() -> EvalContext {
        EvalContext::new(Celsius::new(25.0), Power::new(120.0), 0.0)
    }

    #[test]
    fn run_produces_nonempty_mutually_nondominated_front() {
        let opt = Optimizer::new(DesignSpace::default(), quick_config(1));
        let result = opt.run(&ctx(), &Sweep::serial());
        assert!(!result.front.is_empty());
        for a in result.front.points() {
            for b in result.front.points() {
                assert!(!dominates(&a.minimized(), &b.minimized()) || a == b);
            }
        }
    }

    #[test]
    fn evaluation_count_is_population_times_generations_plus_one() {
        let cfg = quick_config(2);
        let opt = Optimizer::new(DesignSpace::default(), cfg);
        let result = opt.run(&ctx(), &Sweep::serial());
        assert_eq!(
            result.evaluations,
            (cfg.population * (cfg.generations + 1)) as u64
        );
        assert_eq!(result.population.len(), cfg.population);
    }

    #[test]
    fn identical_runs_are_bitwise_identical_across_thread_counts() {
        let context = ctx();
        let opt = Optimizer::new(DesignSpace::default(), quick_config(3));
        let serial = opt.run(&context, &Sweep::serial());
        let two = opt.run(&context, &Sweep::new(2));
        let eight = opt.run(&context, &Sweep::new(8));
        assert_eq!(serial.front.fingerprint(), two.front.fingerprint());
        assert_eq!(serial.front.fingerprint(), eight.front.fingerprint());
        assert_eq!(serial.population, two.population);
        assert_eq!(serial.population, eight.population);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let context = ctx();
        let a = Optimizer::new(DesignSpace::default(), quick_config(10))
            .run(&context, &Sweep::serial());
        let b = Optimizer::new(DesignSpace::default(), quick_config(11))
            .run(&context, &Sweep::serial());
        assert_ne!(a.front.fingerprint(), b.front.fingerprint());
    }

    #[test]
    fn search_improves_over_random_sampling() {
        // The evolved front should cover (dominate or match) most of a
        // fresh random sample of the same budget's initial slice.
        let context = ctx();
        let opt = Optimizer::new(DesignSpace::default(), quick_config(4));
        let result = opt.run(&context, &Sweep::serial());
        let space = DesignSpace::default();
        let mut rng = aeropack_units::SplitMix64::new(0xbeef);
        let mut covered = 0;
        let total = 64;
        for _ in 0..total {
            let g = space.sample(&mut rng);
            let obj = context.evaluate(&g).minimized();
            if result.front.covers(&obj)
                || result
                    .front
                    .points()
                    .iter()
                    .any(|p| !dominates(&obj, &p.minimized()))
            {
                covered += 1;
            }
        }
        assert!(covered > total / 2, "front covered only {covered}/{total}");
    }

    #[test]
    fn sort_and_crowding_are_deterministic() {
        let objectives = vec![
            [1.0, 2.0, 3.0],
            [2.0, 1.0, 3.0],
            [3.0, 3.0, 3.0],
            [1.0, 2.0, 3.0],
        ];
        let serial = fast_nondominated_sort(&objectives, &Sweep::serial());
        let threaded = fast_nondominated_sort(&objectives, &Sweep::new(4));
        assert_eq!(serial, threaded);
        // [3,3,3] is dominated by both minima; the duplicate pair and
        // the [2,1,3] trade-off share front 0.
        assert_eq!(serial[0], vec![0, 1, 3]);
        assert_eq!(serial[1], vec![2]);
        let dist = crowding_distances(&serial[0], &objectives);
        assert_eq!(dist.len(), 3);
    }
}
