//! The scenario evaluator: genome → three objectives.
//!
//! Millions of evaluations per optimizer run rule out a full SEB
//! operating-point search per candidate, so the expensive device
//! physics is folded once per run into per-topology
//! [`DeviceCharacteristics`] (transport capability, series resistance
//! and mass at the run's reference state, straight from the
//! `aeropack-twophase` models), and each evaluation is then a pure
//! closed-form resistance/mass/reliability chain:
//!
//! * **max ΔT** — junction rise over ambient through junction→case,
//!   TIM ([`lewis_nielsen`] at the genome's fill), device transport,
//!   wall spreading and the external film; a pumped loop instead pins
//!   the evaporator at its CO₂ setpoint.
//! * **mass** — chassis walls, boards, TIM bonds and cooling hardware.
//! * **MTBF** — the MIL-HDBK-217F parts-count module of
//!   `aeropack-envqual` at the computed junction, one module per
//!   board, with a reliability derate for the pumped loop's moving
//!   parts.
//!
//! Candidates whose device cannot carry the load are not discarded —
//! they receive a finite, strictly-worse ΔT penalty proportional to
//! the transport deficit, so the search keeps a smooth gradient back
//! toward feasibility and the front itself stays feasible.

use aeropack_envqual::{Environment, ReliabilityModel};
use aeropack_tim::{lewis_nielsen, FillerShape};
use aeropack_twophase::{FlatHeatPipe, HeatPipe, LoopHeatPipe, PumpedTwoPhaseLoop};
use aeropack_units::{Celsius, Length, Power, ThermalConductivity};

use crate::genome::{Genome, Topology};

/// Per-topology constants resolved once per run from the twophase
/// device models at the run's reference state.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCharacteristics {
    /// Transport capability per device, W (`f64::INFINITY` for plain
    /// conduction).
    pub q_max_w: f64,
    /// Series thermal resistance per device, K/W.
    pub resistance_k_w: f64,
    /// Mass per device, kg.
    pub mass_kg: f64,
    /// Failure-rate multiplier (moving parts, drive electronics).
    pub lambda_factor: f64,
    /// Parasitic electrical power, W (pump drive).
    pub parasitic_w: f64,
    /// `Some(setpoint °C)` when the device pins its cold side to a
    /// controlled saturation temperature instead of the box wall.
    pub pinned_setpoint_c: Option<f64>,
    /// Whether one device serves the whole box (pumped loop) rather
    /// than one per board.
    pub per_box: bool,
}

/// The three objectives of one evaluated design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Worst junction rise over cabin ambient, K (includes the
    /// transport-deficit penalty for infeasible candidates).
    pub dt_k: f64,
    /// Packaged mass, kg.
    pub mass_kg: f64,
    /// Box-level MTBF, hours.
    pub mtbf_hours: f64,
}

impl Objectives {
    /// The minimized objective vector (MTBF negated).
    pub fn minimized(&self) -> [f64; 3] {
        [self.dt_k, self.mass_kg, -self.mtbf_hours]
    }
}

/// `a` Pareto-dominates `b` (all minimized objectives ≤, at least one
/// strictly <).
pub fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let mut strict = false;
    for i in 0..3 {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strict = true;
        }
    }
    strict
}

/// The fixed evaluation scenario: box geometry, environment and the
/// per-topology device characteristics.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Cabin/bay ambient.
    pub ambient: Celsius,
    /// Nominal box dissipation at `power_scale = 1`.
    pub base_power: Power,
    /// Adverse tilt applied to every gravity-sensitive device, rad.
    pub tilt_rad: f64,
    /// Card-cage length available for boards, m.
    pub cage_length_m: f64,
    /// External film coefficient × box area, W/K.
    pub external_conductance_w_k: f64,
    /// Chassis footprint area for wall mass, m².
    pub wall_area_m2: f64,
    /// Per-board TIM contact area, m².
    pub tim_area_m2: f64,
    /// Junction→case resistance per board, K/W.
    pub r_jc_k_w: f64,
    /// Bare board mass, kg.
    pub board_mass_kg: f64,
    /// Reliability environment.
    pub environment: Environment,
    devices: [DeviceCharacteristics; 5],
}

/// Reference vapour temperature the device characteristics are
/// resolved at (a warm avionics operating point).
const REFERENCE_VAPOR_C: f64 = 60.0;
/// CO₂ accumulator setpoint for the pumped loop, °C.
const CO2_SETPOINT_C: f64 = 5.0;
/// Aluminium wall conductivity, W/m·K, and density, kg/m³.
const WALL_K: f64 = 167.0;
const WALL_RHO: f64 = 2700.0;
/// Silicone matrix and alumina filler conductivities for the TIM.
const TIM_MATRIX_K: f64 = 0.2;
const TIM_FILLER_K: f64 = 30.0;
/// TIM density, kg/m³ (filled silicone).
const TIM_RHO: f64 = 2600.0;
/// ΔT penalty floor and slope for transport-infeasible candidates.
const INFEASIBLE_DT_FLOOR: f64 = 400.0;
const INFEASIBLE_DT_PER_W: f64 = 10.0;
/// Mass of the conduction rail per board, kg, and its resistance.
const RAIL_MASS_KG: f64 = 0.06;
const RAIL_RESISTANCE_K_W: f64 = 2.2;
/// Loop-heat-pipe per-board hardware mass, kg (miniature LHP).
const LHP_MASS_KG: f64 = 0.45;
/// Pumped-loop failure-rate multiplier (pump + drive electronics).
const PUMP_LAMBDA_FACTOR: f64 = 1.3;

impl EvalContext {
    /// Builds the evaluation context, resolving every topology's
    /// characteristics from its `aeropack-twophase` model at the
    /// reference state and the given tilt.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in device constructors fail, which
    /// cannot happen for the fixed geometries used here.
    pub fn new(ambient: Celsius, base_power: Power, tilt_rad: f64) -> Self {
        let t_ref = Celsius::new(REFERENCE_VAPOR_C);

        // Round pipe: the COSEE 6 mm board drain.
        let round = HeatPipe::copper_water_6mm(
            Length::from_millimeters(80.0),
            Length::from_millimeters(150.0),
            Length::from_millimeters(80.0),
        )
        .expect("round pipe geometry");
        let round_chars = DeviceCharacteristics {
            q_max_w: round
                .max_power(t_ref, tilt_rad)
                .map(|q| q.value())
                .unwrap_or(0.0),
            resistance_k_w: round
                .thermal_resistance(t_ref)
                .expect("round pipe resistance")
                .value(),
            mass_kg: round.mass_estimate(),
            lambda_factor: 1.0,
            parasitic_w: 0.0,
            pinned_setpoint_c: None,
            per_box: false,
        };

        // Thin flat pipe under the same spans.
        let flat = FlatHeatPipe::copper_water_thin(
            Length::from_millimeters(25.0),
            Length::from_millimeters(80.0),
            Length::from_millimeters(150.0),
            Length::from_millimeters(80.0),
        )
        .expect("flat pipe geometry");
        let flat_chars = DeviceCharacteristics {
            q_max_w: flat
                .max_power(t_ref, tilt_rad)
                .map(|q| q.value())
                .unwrap_or(0.0),
            resistance_k_w: flat
                .thermal_resistance(t_ref)
                .expect("flat pipe resistance")
                .value(),
            mass_kg: flat.mass_estimate(),
            lambda_factor: 1.0,
            parasitic_w: 0.0,
            pinned_setpoint_c: None,
            per_box: false,
        };

        // Ammonia LHP: transport capability against the ambient sink
        // at the run tilt; series resistance from the condenser film.
        let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8)).expect("LHP geometry");
        let lhp_q = lhp
            .max_transport(ambient, tilt_rad)
            .map(|q| q.value())
            .unwrap_or(0.0);
        let lhp_chars = DeviceCharacteristics {
            q_max_w: lhp_q,
            resistance_k_w: 1.0 / lhp.condenser_conductance().value(),
            mass_kg: LHP_MASS_KG,
            lambda_factor: 1.0,
            parasitic_w: 0.0,
            pinned_setpoint_c: None,
            per_box: false,
        };

        // Pumped CO₂ loop: one loop per box, setpoint-pinned.
        let pumped =
            PumpedTwoPhaseLoop::co2_ams02(Celsius::new(CO2_SETPOINT_C)).expect("pumped loop");
        let (_, pumped_q) = pumped
            .max_transport(tilt_rad)
            .expect("pumped loop transport");
        let pumped_chars = DeviceCharacteristics {
            q_max_w: pumped_q.value(),
            resistance_k_w: 1.0 / pumped.evaporator_conductance().value(),
            mass_kg: pumped.mass_estimate(),
            lambda_factor: PUMP_LAMBDA_FACTOR,
            parasitic_w: pumped.pump_power().value(),
            pinned_setpoint_c: Some(CO2_SETPOINT_C),
            per_box: true,
        };

        let conduction_chars = DeviceCharacteristics {
            q_max_w: f64::INFINITY,
            resistance_k_w: RAIL_RESISTANCE_K_W,
            mass_kg: RAIL_MASS_KG,
            lambda_factor: 1.0,
            parasitic_w: 0.0,
            pinned_setpoint_c: None,
            per_box: false,
        };

        let mut devices = [conduction_chars; 5];
        devices[Topology::Conduction.index()] = conduction_chars;
        devices[Topology::RoundHeatPipe.index()] = round_chars;
        devices[Topology::FlatHeatPipe.index()] = flat_chars;
        devices[Topology::LoopHeatPipe.index()] = lhp_chars;
        devices[Topology::PumpedCo2.index()] = pumped_chars;

        Self {
            ambient,
            base_power,
            tilt_rad,
            cage_length_m: 0.35,
            external_conductance_w_k: 1.9,
            wall_area_m2: 0.27,
            tim_area_m2: 2.0e-3,
            r_jc_k_w: 0.8,
            board_mass_kg: 0.25,
            environment: Environment::AirborneInhabited,
            devices: [devices[0], devices[1], devices[2], devices[3], devices[4]],
        }
    }

    /// The resolved characteristics of one topology.
    pub fn device(&self, topology: Topology) -> &DeviceCharacteristics {
        &self.devices[topology.index()]
    }

    /// Evaluates one genome. Pure: bitwise identical for identical
    /// inputs, no interior mutability, no allocation on the hot path
    /// beyond the reliability model's part list.
    pub fn evaluate(&self, g: &Genome) -> Objectives {
        let dev = self.device(g.topology);
        let power = self.base_power.value() * g.power_scale + dev.parasitic_w;
        let n_boards = ((self.cage_length_m * 1000.0 / g.board_pitch_mm).floor() as usize).max(1);
        let per_board = power / n_boards as f64;
        let per_device = if dev.per_box { power } else { per_board };

        // TIM joint at the genome's fill and bond line.
        let k_tim = lewis_nielsen(
            ThermalConductivity::new(TIM_MATRIX_K),
            ThermalConductivity::new(TIM_FILLER_K),
            g.tim_fill,
            FillerShape::Sphere,
        )
        .map(|k| k.value())
        // Off the model's validity range (shrunk design spaces can
        // push there): fall back to the matrix floor, a strictly
        // worse but finite joint.
        .unwrap_or(TIM_MATRIX_K);
        let r_tim = g.tim_bond_microns * 1e-6 / (k_tim * self.tim_area_m2);

        // Wall spreading from the board tap toward the radiating
        // surface: half a pitch of path through the wall section.
        let wall_m = g.wall_mm * 1e-3;
        let spread_path_m = g.board_pitch_mm * 1e-3 * 0.5;
        let wall_section_width_m = 0.3;
        let r_wall = spread_path_m / (WALL_K * wall_m * wall_section_width_m);

        // Junction temperature.
        let deficit = (per_device - dev.q_max_w).max(0.0);
        let feasible = deficit == 0.0;
        let dt_k = if let Some(setpoint) = dev.pinned_setpoint_c {
            // Pumped loop: the evaporator is pinned; ambient only
            // enters through the (remote) condenser, not the box.
            let junction_rise =
                per_board * (self.r_jc_k_w + r_tim) + per_device * dev.resistance_k_w;
            setpoint + junction_rise - self.ambient.value()
        } else {
            let dt_ext = power / self.external_conductance_w_k;
            dt_ext + per_board * (self.r_jc_k_w + r_tim + r_wall) + per_device * dev.resistance_k_w
        };
        let dt_k = if feasible {
            dt_k
        } else {
            INFEASIBLE_DT_FLOOR + INFEASIBLE_DT_PER_W * deficit + dt_k.max(0.0)
        };

        // Mass.
        let device_count = if dev.per_box { 1.0 } else { n_boards as f64 };
        let tim_mass = n_boards as f64 * self.tim_area_m2 * g.tim_bond_microns * 1e-6 * TIM_RHO;
        let mass_kg = self.wall_area_m2 * wall_m * WALL_RHO
            + n_boards as f64 * self.board_mass_kg
            + device_count * dev.mass_kg
            + tim_mass;

        // Reliability: one parts-count module per board at its
        // junction, failure rates in series across the box.
        let junction = Celsius::new((self.ambient.value() + dt_k).clamp(-55.0, 175.0));
        let module = ReliabilityModel::typical_avionics_module(self.environment, junction)
            .expect("typical module construction");
        let lambda_box = module.failure_rate_per_hour() * n_boards as f64 * dev.lambda_factor;
        let mtbf_hours = 1.0 / lambda_box;

        Objectives {
            dt_k,
            mass_kg,
            mtbf_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EvalContext {
        EvalContext::new(Celsius::new(25.0), Power::new(120.0), 0.0)
    }

    fn genome(topology: Topology) -> Genome {
        Genome {
            topology,
            tim_bond_microns: 100.0,
            tim_fill: 0.4,
            board_pitch_mm: 25.0,
            wall_mm: 2.0,
            power_scale: 1.0,
        }
    }

    #[test]
    fn heat_pipes_beat_bare_conduction_on_dt() {
        let c = ctx();
        let base = c.evaluate(&genome(Topology::Conduction));
        let hp = c.evaluate(&genome(Topology::RoundHeatPipe));
        assert!(
            hp.dt_k < base.dt_k,
            "heat pipe {:.1} K vs rails {:.1} K",
            hp.dt_k,
            base.dt_k
        );
    }

    #[test]
    fn pumped_loop_buys_dt_with_mass_and_mtbf() {
        let c = ctx();
        let pumped = c.evaluate(&genome(Topology::PumpedCo2));
        let hp = c.evaluate(&genome(Topology::RoundHeatPipe));
        // The 5 °C setpoint puts junctions far below every passive
        // option…
        assert!(pumped.dt_k < hp.dt_k);
        // …at a mass premium (pump + accumulator + charge)…
        assert!(pumped.mass_kg > 0.0);
        // …and the junction benefit must NOT hide the pump's
        // failure-rate multiplier: recompute the passive-equivalent
        // MTBF at the same junction and check the derate shows.
        let junction = Celsius::new(25.0 + pumped.dt_k);
        let module =
            ReliabilityModel::typical_avionics_module(Environment::AirborneInhabited, junction)
                .unwrap();
        let n_boards: f64 = 0.35 * 1000.0 / 25.0;
        let passive_mtbf = 1.0 / (module.failure_rate_per_hour() * n_boards.floor());
        assert!(pumped.mtbf_hours < passive_mtbf);
    }

    #[test]
    fn infeasible_transport_is_finitely_penalized() {
        let c = ctx();
        let mut g = genome(Topology::RoundHeatPipe);
        g.power_scale = 30.0; // deliberately past any pipe's transport
        g.board_pitch_mm = 45.0; // few boards → huge per-board power
        let obj = c.evaluate(&g);
        assert!(obj.dt_k.is_finite());
        assert!(obj.dt_k >= INFEASIBLE_DT_FLOOR);
    }

    #[test]
    fn tilt_degrades_wick_devices_not_the_pump() {
        let flat = EvalContext::new(Celsius::new(25.0), Power::new(120.0), 0.0);
        let tilted = EvalContext::new(Celsius::new(25.0), Power::new(120.0), 60f64.to_radians());
        let round_flat = flat.device(Topology::RoundHeatPipe).q_max_w;
        let round_tilted = tilted.device(Topology::RoundHeatPipe).q_max_w;
        assert!(round_tilted < round_flat);
        let pump_flat = flat.device(Topology::PumpedCo2).q_max_w;
        let pump_tilted = tilted.device(Topology::PumpedCo2).q_max_w;
        assert!(pump_tilted > 0.9 * pump_flat);
    }

    #[test]
    fn evaluation_is_bitwise_deterministic() {
        let c = ctx();
        let g = genome(Topology::LoopHeatPipe);
        let a = c.evaluate(&g);
        let b = c.evaluate(&g);
        assert_eq!(a.minimized(), b.minimized());
    }

    #[test]
    fn dominance_is_strict_partial_order() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 1.0, 1.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a));
    }
}
