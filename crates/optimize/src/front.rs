//! The Pareto front: the non-dominated set in canonical order, with a
//! fingerprint so two runs (or two thread counts) can be compared
//! bit-for-bit.

use aeropack_solver::Fingerprint;

use crate::eval::{dominates, Objectives};
use crate::genome::Genome;

/// One evaluated design on (or off) the front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// The design vector.
    pub genome: Genome,
    /// Its three objectives.
    pub objectives: Objectives,
}

impl ParetoPoint {
    /// The minimized objective vector.
    pub fn minimized(&self) -> [f64; 3] {
        self.objectives.minimized()
    }
}

/// The mutually non-dominated set, canonically ordered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

/// Total order on minimized objective vectors with the genome
/// fingerprint as the final tie-break. Objective values are finite by
/// construction (the evaluator penalizes instead of producing NaN or
/// ∞... except conduction's infinite `q_max`, which never reaches an
/// objective), so `partial_cmp` cannot fail; we still fall back to a
/// bit-level order to keep the sort total no matter what.
fn canonical_cmp(a: &ParetoPoint, b: &ParetoPoint) -> std::cmp::Ordering {
    let (ka, kb) = (a.minimized(), b.minimized());
    for i in 0..3 {
        match ka[i]
            .partial_cmp(&kb[i])
            .unwrap_or_else(|| ka[i].to_bits().cmp(&kb[i].to_bits()))
        {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    a.genome.fingerprint().cmp(&b.genome.fingerprint())
}

impl ParetoFront {
    /// Extracts the non-dominated subset of `points`, deduplicated by
    /// genome fingerprint and canonically sorted.
    pub fn from_points(points: &[ParetoPoint]) -> Self {
        let mut front: Vec<ParetoPoint> = Vec::new();
        'candidate: for (i, p) in points.iter().enumerate() {
            let pm = p.minimized();
            for (j, q) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let qm = q.minimized();
                if dominates(&qm, &pm) {
                    continue 'candidate;
                }
            }
            front.push(*p);
        }
        front.sort_by(canonical_cmp);
        front.dedup_by_key(|p| p.genome.fingerprint());
        Self { points: front }
    }

    /// The front's points in canonical order.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of designs on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// True when some front member dominates (or equals) the sample.
    pub fn covers(&self, sample: &[f64; 3]) -> bool {
        self.points
            .iter()
            .any(|p| p.minimized() == *sample || dominates(&p.minimized(), sample))
    }

    /// Bit-exact fingerprint of the whole front: every genome and every
    /// objective vector in canonical order. Two fronts share a
    /// fingerprint iff they are bitwise identical.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("optimize.front");
        fp.write_usize(self.points.len());
        for p in &self.points {
            p.genome.hash_into(&mut fp);
            for v in p.minimized() {
                fp.write_f64(v);
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Topology;

    fn point(dt: f64, mass: f64, mtbf: f64, seed: f64) -> ParetoPoint {
        ParetoPoint {
            genome: Genome {
                topology: Topology::Conduction,
                tim_bond_microns: 20.0 + seed,
                tim_fill: 0.1,
                board_pitch_mm: 20.0,
                wall_mm: 2.0,
                power_scale: 1.0,
            },
            objectives: Objectives {
                dt_k: dt,
                mass_kg: mass,
                mtbf_hours: mtbf,
            },
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = [
            point(10.0, 5.0, 1e4, 0.0),
            point(20.0, 6.0, 0.9e4, 1.0), // dominated by the first
            point(8.0, 7.0, 1e4, 2.0),    // trades dt for mass: kept
        ];
        let front = ParetoFront::from_points(&pts);
        assert_eq!(front.len(), 2);
        assert!(front.covers(&[20.0, 6.0, -0.9e4]));
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let pts = [
            point(10.0, 5.0, 1e4, 0.0),
            point(8.0, 7.0, 1.2e4, 1.0),
            point(6.0, 9.0, 0.8e4, 2.0),
        ];
        let front = ParetoFront::from_points(&pts);
        for a in front.points() {
            for b in front.points() {
                assert!(!dominates(&a.minimized(), &b.minimized()) || a == b);
            }
        }
    }

    #[test]
    fn duplicate_genomes_collapse() {
        let p = point(10.0, 5.0, 1e4, 0.0);
        let front = ParetoFront::from_points(&[p, p, p]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = [point(10.0, 5.0, 1e4, 0.0), point(8.0, 7.0, 1e4, 1.0)];
        let b = [a[1], a[0]];
        assert_eq!(
            ParetoFront::from_points(&a).fingerprint(),
            ParetoFront::from_points(&b).fingerprint()
        );
    }

    #[test]
    fn fingerprint_separates_different_fronts() {
        let a = ParetoFront::from_points(&[point(10.0, 5.0, 1e4, 0.0)]);
        let b = ParetoFront::from_points(&[point(11.0, 5.0, 1e4, 0.0)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
