//! The design vector: a discrete cooling topology crossed with the
//! continuous packaging parameters, plus the bounded design space the
//! optimizer samples, recombines and mutates inside.
//!
//! Everything here is deterministic given a [`SplitMix64`] stream, and
//! every genome has a canonical [`Fingerprint`] so fronts can be
//! compared bit-for-bit across runs and thread counts.

use aeropack_solver::Fingerprint;
use aeropack_units::SplitMix64;

/// The discrete cooling-topology gene: how heat leaves the boards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Conduction rails to the chassis wall only (the no-device
    /// baseline the paper starts from).
    Conduction,
    /// One 6 mm cylindrical copper/water heat pipe per board.
    RoundHeatPipe,
    /// One thin sintered-wick flat heat pipe per board
    /// (arXiv:0802.3107 geometry).
    FlatHeatPipe,
    /// One ammonia loop heat pipe per board (the COSEE escape path).
    LoopHeatPipe,
    /// A single mechanically pumped CO₂ loop serving the whole box
    /// (AMS-02 TTCS architecture, arXiv:1302.4294).
    PumpedCo2,
}

impl Topology {
    /// Every topology, in canonical gene order.
    pub const ALL: [Topology; 5] = [
        Topology::Conduction,
        Topology::RoundHeatPipe,
        Topology::FlatHeatPipe,
        Topology::LoopHeatPipe,
        Topology::PumpedCo2,
    ];

    /// Stable tag (wire encoding, reports, snapshots).
    pub fn tag(self) -> &'static str {
        match self {
            Self::Conduction => "conduction",
            Self::RoundHeatPipe => "round_heat_pipe",
            Self::FlatHeatPipe => "flat_heat_pipe",
            Self::LoopHeatPipe => "loop_heat_pipe",
            Self::PumpedCo2 => "pumped_co2",
        }
    }

    /// Parses a stable tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.tag() == tag)
    }

    /// Canonical gene index (fingerprints, dense tables).
    pub fn index(self) -> usize {
        match self {
            Self::Conduction => 0,
            Self::RoundHeatPipe => 1,
            Self::FlatHeatPipe => 2,
            Self::LoopHeatPipe => 3,
            Self::PumpedCo2 => 4,
        }
    }
}

/// One candidate design: topology × continuous packaging parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Genome {
    /// Cooling topology.
    pub topology: Topology,
    /// TIM bond-line thickness, µm.
    pub tim_bond_microns: f64,
    /// TIM filler volume fraction (spherical filler, Lewis–Nielsen).
    pub tim_fill: f64,
    /// Board (card) pitch, mm — sets how many boards share the box.
    pub board_pitch_mm: f64,
    /// Chassis wall thickness, mm — spreading vs structural mass.
    pub wall_mm: f64,
    /// Power-map scale: the dissipation margin the design must absorb.
    pub power_scale: f64,
}

/// A closed interval a continuous gene lives in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneRange {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive; sampling is half-open, mutation clamps
    /// onto the closed interval).
    pub hi: f64,
}

impl GeneRange {
    fn clamp(&self, v: f64) -> f64 {
        v.max(self.lo).min(self.hi)
    }
}

/// The bounded design space: which topologies are admissible and the
/// range of every continuous gene.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Admissible topologies (at least one).
    pub topologies: Vec<Topology>,
    /// TIM bond line, µm.
    pub tim_bond_microns: GeneRange,
    /// TIM filler volume fraction.
    pub tim_fill: GeneRange,
    /// Board pitch, mm.
    pub board_pitch_mm: GeneRange,
    /// Wall thickness, mm.
    pub wall_mm: GeneRange,
    /// Power-map scale.
    pub power_scale: GeneRange,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self {
            topologies: Topology::ALL.to_vec(),
            tim_bond_microns: GeneRange {
                lo: 20.0,
                hi: 300.0,
            },
            tim_fill: GeneRange { lo: 0.05, hi: 0.55 },
            board_pitch_mm: GeneRange { lo: 12.0, hi: 45.0 },
            wall_mm: GeneRange { lo: 0.8, hi: 5.0 },
            power_scale: GeneRange { lo: 0.5, hi: 2.0 },
        }
    }
}

impl DesignSpace {
    /// Samples a uniform random genome.
    pub fn sample(&self, rng: &mut SplitMix64) -> Genome {
        let topology = self.topologies[(rng.next_u64() % self.topologies.len() as u64) as usize];
        Genome {
            topology,
            tim_bond_microns: rng.range_f64(self.tim_bond_microns.lo, self.tim_bond_microns.hi),
            tim_fill: rng.range_f64(self.tim_fill.lo, self.tim_fill.hi),
            board_pitch_mm: rng.range_f64(self.board_pitch_mm.lo, self.board_pitch_mm.hi),
            wall_mm: rng.range_f64(self.wall_mm.lo, self.wall_mm.hi),
            power_scale: rng.range_f64(self.power_scale.lo, self.power_scale.hi),
        }
    }

    /// Blend (BLX-style) crossover of the continuous genes; each child
    /// inherits one parent's topology.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut SplitMix64) -> (Genome, Genome) {
        let mut blend = |ra: &GeneRange, x: f64, y: f64| {
            let alpha = rng.range_f64(-0.25, 1.25);
            let c1 = ra.clamp(x + alpha * (y - x));
            let c2 = ra.clamp(y + alpha * (x - y));
            (c1, c2)
        };
        let (t1, t2) = (self.tim_bond_microns, self.tim_fill);
        let (bond1, bond2) = blend(&t1, a.tim_bond_microns, b.tim_bond_microns);
        let (fill1, fill2) = blend(&t2, a.tim_fill, b.tim_fill);
        let (pitch1, pitch2) = blend(&self.board_pitch_mm, a.board_pitch_mm, b.board_pitch_mm);
        let (wall1, wall2) = blend(&self.wall_mm, a.wall_mm, b.wall_mm);
        let (ps1, ps2) = blend(&self.power_scale, a.power_scale, b.power_scale);
        let swap = rng.next_u64() & 1 == 1;
        let (top1, top2) = if swap {
            (b.topology, a.topology)
        } else {
            (a.topology, b.topology)
        };
        (
            Genome {
                topology: top1,
                tim_bond_microns: bond1,
                tim_fill: fill1,
                board_pitch_mm: pitch1,
                wall_mm: wall1,
                power_scale: ps1,
            },
            Genome {
                topology: top2,
                tim_bond_microns: bond2,
                tim_fill: fill2,
                board_pitch_mm: pitch2,
                wall_mm: wall2,
                power_scale: ps2,
            },
        )
    }

    /// Mutates each gene with probability `rate`: continuous genes get
    /// a clamped Gaussian kick of `sigma` × range, the topology gene
    /// resamples uniformly.
    pub fn mutate(&self, g: &mut Genome, rng: &mut SplitMix64, rate: f64, sigma: f64) {
        let mut kick = |r: &GeneRange, v: &mut f64| {
            // Always draw from the stream so the choice sequence is
            // independent of which mutations fire.
            let fire = rng.next_f64() < rate;
            let z = rng.gaussian();
            if fire {
                *v = r.clamp(*v + z * sigma * (r.hi - r.lo));
            }
        };
        kick(&self.tim_bond_microns, &mut g.tim_bond_microns);
        kick(&self.tim_fill, &mut g.tim_fill);
        kick(&self.board_pitch_mm, &mut g.board_pitch_mm);
        kick(&self.wall_mm, &mut g.wall_mm);
        kick(&self.power_scale, &mut g.power_scale);
        let fire = rng.next_f64() < rate;
        let pick = rng.next_u64();
        if fire {
            g.topology = self.topologies[(pick % self.topologies.len() as u64) as usize];
        }
    }
}

impl Genome {
    /// Writes the canonical encoding into a fingerprint.
    pub fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_u8(self.topology.index() as u8);
        fp.write_f64(self.tim_bond_microns);
        fp.write_f64(self.tim_fill);
        fp.write_f64(self.board_pitch_mm);
        fp.write_f64(self.wall_mm);
        fp.write_f64(self.power_scale);
    }

    /// Canonical genome fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("optimize.genome");
        self.hash_into(&mut fp);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_stays_in_bounds() {
        let space = DesignSpace::default();
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            let g = space.sample(&mut rng);
            assert!(g.tim_bond_microns >= 20.0 && g.tim_bond_microns < 300.0);
            assert!(g.tim_fill >= 0.05 && g.tim_fill < 0.55);
            assert!(g.board_pitch_mm >= 12.0 && g.board_pitch_mm < 45.0);
            assert!(g.wall_mm >= 0.8 && g.wall_mm < 5.0);
            assert!(g.power_scale >= 0.5 && g.power_scale < 2.0);
        }
    }

    #[test]
    fn crossover_and_mutation_respect_bounds() {
        let space = DesignSpace::default();
        let mut rng = SplitMix64::new(11);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..200 {
            let (mut c1, mut c2) = space.crossover(&a, &b, &mut rng);
            space.mutate(&mut c1, &mut rng, 0.5, 0.2);
            space.mutate(&mut c2, &mut rng, 0.5, 0.2);
            for c in [c1, c2] {
                assert!(c.tim_bond_microns >= 20.0 && c.tim_bond_microns <= 300.0);
                assert!(c.tim_fill >= 0.05 && c.tim_fill <= 0.55);
                assert!(c.board_pitch_mm >= 12.0 && c.board_pitch_mm <= 45.0);
                assert!(c.wall_mm >= 0.8 && c.wall_mm <= 5.0);
                assert!(c.power_scale >= 0.5 && c.power_scale <= 2.0);
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let space = DesignSpace::default();
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..50 {
            assert_eq!(space.sample(&mut a), space.sample(&mut b));
        }
    }

    #[test]
    fn topology_tags_round_trip() {
        for t in Topology::ALL {
            assert_eq!(Topology::from_tag(t.tag()), Some(t));
        }
        assert_eq!(Topology::from_tag("fan"), None);
    }

    #[test]
    fn fingerprint_separates_genomes() {
        let space = DesignSpace::default();
        let mut rng = SplitMix64::new(3);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }
}
