//! Discretisation-robustness tests: the Level-2 board fields and the
//! equipment model must be mesh-converged at the default resolutions,
//! or every calibrated number downstream is an artefact.

use aeropack_core::{representative_board, CoolingMode, Level2Model};
use aeropack_units::{Celsius, Length, Power};

#[test]
fn level2_peak_is_mesh_converged() {
    let pcb = representative_board("conv", Power::new(30.0)).unwrap();
    let mode = CoolingMode::DirectForcedAir {
        flow_multiplier: 1.0,
    };
    let ambient = Celsius::new(40.0);
    let peak = |res_mm: f64| {
        Level2Model::new(&pcb, &mode, ambient, Length::from_millimeters(res_mm))
            .unwrap()
            .solve()
            .unwrap()
            .max_temperature()
            .value()
    };
    let coarse = peak(8.0);
    let default = peak(5.0);
    let fine = peak(2.5);
    // The default grid sits within a few percent of the refined one.
    let rel = (default - fine).abs() / (fine - ambient.value());
    assert!(
        rel < 0.08,
        "default vs fine peak rise differ by {:.1}%",
        rel * 100.0
    );
    // And refinement moves monotonically less than coarsening did.
    let step1 = (coarse - default).abs();
    let step2 = (default - fine).abs();
    assert!(
        step2 <= step1 + 0.5,
        "refinement must converge: {step1} then {step2}"
    );
}

#[test]
fn level2_mean_is_grid_insensitive() {
    // The mean (energy balance) should be nearly exact at any grid.
    let pcb = representative_board("conv2", Power::new(25.0)).unwrap();
    let mode = CoolingMode::LiquidFlowThrough {
        coolant_inlet: Celsius::new(30.0),
    };
    let mean = |res_mm: f64| {
        Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(40.0),
            Length::from_millimeters(res_mm),
        )
        .unwrap()
        .solve()
        .unwrap()
        .mean_temperature()
        .value()
    };
    let a = mean(8.0);
    let b = mean(3.0);
    assert!((a - b).abs() < 1.5, "means {a} vs {b}");
}
