//! The COSEE Seat Electronic Box model — the system behind the paper's
//! Fig 10.
//!
//! Heat path: components → PCB → (heat pipes + TIM joints) → SEB wall →
//! two parallel escapes:
//!
//! 1. natural convection + radiation from the box surface into the
//!    (enclosed) under-seat air, and
//! 2. optionally, loop heat pipes into the seat mechanical structure,
//!    which acts as a finned natural-convection sink.
//!
//! The solver finds the wall temperature at which the two escapes
//! balance the dissipation, with the LHP operating point (including
//! tilt) and all convection coefficients resolved self-consistently.

use aeropack_materials::{air_at_sea_level, Material};
use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_thermal::{
    film_temperature, natural_convection_vertical_plate, radiation_coefficient,
};
use aeropack_tim::TimJoint;
use aeropack_twophase::{HeatPipe, LoopHeatPipe, TwoPhaseError};
use aeropack_units::{
    Area, Celsius, Length, Power, Pressure, TempDelta, ThermalConductance, ThermalResistance,
};

use crate::error::DesignError;

/// The seat mechanical structure used as the LHP heat sink: rods of a
/// given material acting as natural-convection fins, with the LHP
/// condensers clamped over part of their length.
#[derive(Debug, Clone)]
pub struct SeatStructure {
    /// Rod material (aluminium in the first COSEE seats, carbon
    /// composite in the second campaign).
    pub material: Material,
    /// Length of each rod.
    pub rod_length: Length,
    /// Rod diameter.
    pub rod_diameter: Length,
    /// Number of rods ("two main aluminum rods").
    pub rod_count: usize,
    /// Extra wetted area from brackets and seat pans, as a multiplier on
    /// the bare rod area.
    pub area_multiplier: f64,
    /// Fraction of the rod length covered by the LHP condenser.
    pub condenser_coverage: f64,
    /// Surface emissivity.
    pub emissivity: f64,
}

impl SeatStructure {
    /// The COSEE aluminium seat structure.
    pub fn aluminum() -> Self {
        Self {
            material: Material::aluminum_6061(),
            rod_length: Length::new(1.2),
            rod_diameter: Length::from_millimeters(35.0),
            rod_count: 2,
            area_multiplier: 1.2,
            condenser_coverage: 0.25,
            emissivity: 0.8,
        }
    }

    /// The COSEE carbon-composite seat structure ("rather poor thermal
    /// conductivity").
    pub fn carbon_composite() -> Self {
        Self {
            material: Material::carbon_composite(),
            ..Self::aluminum()
        }
    }

    /// Total wetted area.
    pub fn wetted_area(&self) -> Area {
        Area::new(
            std::f64::consts::PI
                * self.rod_diameter.value()
                * self.rod_length.value()
                * self.rod_count as f64
                * self.area_multiplier,
        )
    }

    /// Conductance from the structure (at `surface`) to the ambient air,
    /// including the fin efficiency of the rod sections beyond the
    /// condenser clamp.
    ///
    /// # Errors
    ///
    /// Propagates correlation errors.
    pub fn sink_conductance(
        &self,
        surface: Celsius,
        ambient: Celsius,
    ) -> Result<ThermalConductance, DesignError> {
        let film = film_temperature(surface, ambient);
        let air = air_at_sea_level(film);
        // Guard against zero ΔT (no convection estimate possible): use
        // at least a 1 K driving difference for the correlation.
        let t_for_corr = if (surface - ambient).kelvin().abs() < 1.0 {
            ambient + TempDelta::new(1.0)
        } else {
            surface
        };
        let h_c = natural_convection_vertical_plate(&air, t_for_corr, self.rod_length)?;
        let h_r = radiation_coefficient(self.emissivity, t_for_corr, ambient)?;
        let h = (h_c + h_r).value();
        let k = self.material.thermal_conductivity.value();
        let d = self.rod_diameter.value();
        let l_fin = self.rod_length.value() * (1.0 - self.condenser_coverage);
        // Cylindrical fin parameter m = √(4h/(k·d)).
        let m = (4.0 * h / (k * d)).sqrt();
        let eta = if m * l_fin < 1e-9 {
            1.0
        } else {
            (m * l_fin).tanh() / (m * l_fin)
        };
        let area = self.wetted_area().value();
        let g = h * area * (self.condenser_coverage + (1.0 - self.condenser_coverage) * eta);
        Ok(ThermalConductance::new(g))
    }
}

/// The LHP installation between the SEB wall and the seat structure.
#[derive(Debug, Clone)]
pub struct LhpInstallation {
    /// The loop-heat-pipe model.
    pub lhp: LoopHeatPipe,
    /// Number of loops ("two LHPs transfer the heat from the seat").
    pub count: usize,
    /// Adverse tilt in radians (0 = horizontal seat; the paper tests
    /// 22°).
    pub tilt_rad: f64,
}

/// The complete SEB thermal model.
#[derive(Debug, Clone)]
pub struct SebModel {
    /// Box outer dimensions, metres.
    pub box_dimensions: (f64, f64, f64),
    /// Fraction of the box's free-convection capability that survives
    /// being "buried in small enclosed zones" under the seat.
    pub enclosure_factor: f64,
    /// Box surface emissivity.
    pub emissivity: f64,
    /// The board-to-wall heat pipes.
    pub heat_pipe: HeatPipe,
    /// Number of heat pipes in parallel.
    pub heat_pipe_count: usize,
    /// TIM joint at each end of the heat-pipe path.
    pub tim: TimJoint,
    /// TIM contact area per joint.
    pub tim_area: Area,
    /// TIM assembly pressure.
    pub tim_pressure: Pressure,
    /// The LHP escape, if installed.
    pub lhp: Option<LhpInstallation>,
    /// The seat structure sink (used only when `lhp` is present).
    pub seat: SeatStructure,
}

/// The solved operating state of the SEB at one power level.
#[derive(Debug, Clone, Copy)]
pub struct SebOperatingState {
    /// Dissipated power.
    pub power: Power,
    /// PCB reference temperature (the paper's `Tpcb1`).
    pub pcb_temperature: Celsius,
    /// Box wall temperature.
    pub wall_temperature: Celsius,
    /// Seat structure temperature at the condenser (if LHPs installed).
    pub seat_temperature: Option<Celsius>,
    /// Heat carried by the LHPs.
    pub lhp_power: Power,
    /// Heat leaving by box convection/radiation.
    pub box_power: Power,
}

impl SebOperatingState {
    /// The Fig 10 ordinate: `T_pcb − T_air`.
    pub fn dt_pcb_air(&self, ambient: Celsius) -> TempDelta {
        self.pcb_temperature - ambient
    }
}

impl SebModel {
    /// The COSEE demonstrator configuration: a seat electronic box with
    /// three copper/water heat pipes to the wall and (optionally) two
    /// ammonia LHPs to the given seat structure.
    ///
    /// # Errors
    ///
    /// Propagates device construction errors (cannot occur for these
    /// values).
    pub fn cosee(seat: SeatStructure, with_lhp: bool, tilt_rad: f64) -> Result<Self, DesignError> {
        let heat_pipe = HeatPipe::copper_water_6mm(
            Length::from_millimeters(80.0),
            Length::from_millimeters(150.0),
            Length::from_millimeters(80.0),
        )?;
        let lhp = if with_lhp {
            Some(LhpInstallation {
                lhp: LoopHeatPipe::ammonia_seb(Length::new(0.8))?,
                count: 2,
                tilt_rad,
            })
        } else {
            None
        };
        Ok(Self {
            box_dimensions: (0.35, 0.25, 0.08),
            enclosure_factor: 0.21,
            emissivity: 0.8,
            heat_pipe,
            heat_pipe_count: 3,
            tim: TimJoint::conventional_grease()?,
            tim_area: Area::from_square_centimeters(20.0),
            tim_pressure: Pressure::from_kilopascals(200.0),
            lhp,
            seat,
        })
    }

    /// Box external surface area.
    pub fn box_area(&self) -> Area {
        let (x, y, z) = self.box_dimensions;
        Area::new(2.0 * (x * y + y * z + x * z))
    }

    /// The internal PCB→wall resistance: heat pipes in parallel plus the
    /// two TIM joints in series.
    ///
    /// # Errors
    ///
    /// Returns the heat-pipe dry-out error if `power` exceeds the pipes'
    /// combined transport capability.
    pub fn internal_resistance(
        &self,
        power: Power,
        pcb_temperature: Celsius,
    ) -> Result<ThermalResistance, DesignError> {
        let per_pipe = power / self.heat_pipe_count as f64;
        let t_vapor = pcb_temperature.min(self.heat_pipe.fluid().max_temperature());
        let r_hp = self
            .heat_pipe
            .operate(per_pipe, t_vapor, 0.0)
            .map_err(DesignError::TwoPhase)?;
        let r_tim = self
            .tim
            .area_resistance(self.tim_pressure)?
            .over_area(self.tim_area);
        Ok(ThermalResistance::new(r_hp.value() / self.heat_pipe_count as f64) + r_tim + r_tim)
    }

    /// Conductance of the box surface into the enclosed under-seat air.
    fn box_conductance(
        &self,
        wall: Celsius,
        ambient: Celsius,
    ) -> Result<ThermalConductance, DesignError> {
        let film = film_temperature(wall, ambient);
        let air = air_at_sea_level(film);
        let t_for_corr = if (wall - ambient).kelvin().abs() < 1.0 {
            ambient + TempDelta::new(1.0)
        } else {
            wall
        };
        let h_c = natural_convection_vertical_plate(
            &air,
            t_for_corr,
            Length::new(self.box_dimensions.2),
        )?;
        let h_r = radiation_coefficient(self.emissivity, t_for_corr, ambient)?;
        Ok(ThermalConductance::new(
            (h_c + h_r).value() * self.box_area().value() * self.enclosure_factor,
        ))
    }

    /// Wall temperature sustained by box convection alone at `q_box`.
    fn wall_from_box(&self, q_box: Power, ambient: Celsius) -> Result<Celsius, DesignError> {
        let mut wall = ambient + TempDelta::new(15.0);
        for _ in 0..60 {
            let g = self.box_conductance(wall, ambient)?;
            let new = ambient + q_box / g;
            if (new - wall).kelvin().abs() < 1e-7 {
                return Ok(new);
            }
            wall = Celsius::new(0.5 * (wall.value() + new.value()));
        }
        Ok(wall)
    }

    /// Wall temperature required to push `q_seat` through the LHPs into
    /// the seat. `Ok(None)` means the LHPs cannot carry that load
    /// (dry-out) — the caller treats it as an infinite requirement.
    fn wall_from_seat(
        &self,
        q_seat: Power,
        ambient: Celsius,
    ) -> Result<Option<(Celsius, Celsius)>, DesignError> {
        let inst = self
            .lhp
            .as_ref()
            .expect("wall_from_seat called without an LHP installation");
        // Seat temperature from its sink conductance (fixed point).
        let mut seat = ambient + TempDelta::new(10.0);
        for _ in 0..60 {
            let g = self.seat.sink_conductance(seat, ambient)?;
            let new = ambient + q_seat / g;
            if (new - seat).kelvin().abs() < 1e-7 {
                seat = new;
                break;
            }
            seat = Celsius::new(0.5 * (seat.value() + new.value()));
        }
        let per_loop = q_seat / inst.count as f64;
        match inst.lhp.operating_point(per_loop, seat, inst.tilt_rad) {
            Ok(op) => Ok(Some((op.case_temperature, seat))),
            // Dry-out, or a loop driven off the property tables by an
            // overwhelmed sink: either way this seat share is not
            // sustainable and the split must move toward the box path.
            Err(TwoPhaseError::DryOut { .. }) | Err(TwoPhaseError::Fluid(_)) => Ok(None),
            Err(e) => Err(DesignError::TwoPhase(e)),
        }
    }

    /// Solves the SEB at a power level and cabin ambient.
    ///
    /// # Errors
    ///
    /// Returns a dry-out error when the internal heat pipes cannot carry
    /// the load, and propagates any solver/property failure. LHP
    /// saturation is not an error: the excess heat simply stays on the
    /// box-convection path (the box gets hotter).
    pub fn solve(&self, power: Power, ambient: Celsius) -> Result<SebOperatingState, DesignError> {
        let _span = aeropack_obs::span!("seb.solve");
        aeropack_obs::counter!("seb.solves");
        if power.value() <= 0.0 {
            return Err(DesignError::invalid("SEB power must be positive"));
        }
        let (wall, q_seat, seat_temp) = if self.lhp.is_some() {
            // Bisection on the seat share: wall_from_seat is increasing
            // in q_seat, wall_from_box(q − q_seat) is decreasing.
            let mut lo = Power::ZERO;
            let mut hi = power;
            // Shrink hi below the LHP dry-out boundary first.
            for _ in 0..40 {
                if self.wall_from_seat(hi, ambient)?.is_some() || hi.value() < 1e-6 {
                    break;
                }
                hi *= 0.8;
            }
            let mut best = (self.wall_from_box(power, ambient)?, Power::ZERO, None);
            if hi.value() > 1e-6 {
                for _ in 0..60 {
                    let mid = (lo + hi) * 0.5;
                    let seat_side = self.wall_from_seat(mid, ambient)?;
                    let box_side = self.wall_from_box(power - mid, ambient)?;
                    match seat_side {
                        Some((wall_seat, t_seat)) if wall_seat < box_side => {
                            lo = mid;
                            best = (box_side, mid, Some(t_seat));
                        }
                        _ => {
                            hi = mid;
                        }
                    }
                }
                // Refine the wall estimate at the converged split.
                let q_seat = (lo + hi) * 0.5;
                if let Some((wall_seat, t_seat)) = self.wall_from_seat(q_seat, ambient)? {
                    let box_side = self.wall_from_box(power - q_seat, ambient)?;
                    best = (
                        Celsius::new(0.5 * (wall_seat.value() + box_side.value())),
                        q_seat,
                        Some(t_seat),
                    );
                }
            }
            best
        } else {
            (self.wall_from_box(power, ambient)?, Power::ZERO, None)
        };

        // Internal drop (may dry out — that *is* an error for the SEB).
        let mut pcb = wall + TempDelta::new(5.0);
        for _ in 0..30 {
            let r_int = self.internal_resistance(power, pcb)?;
            let new = wall + r_int * power;
            if (new - pcb).kelvin().abs() < 1e-7 {
                pcb = new;
                break;
            }
            pcb = new;
        }

        Ok(SebOperatingState {
            power,
            pcb_temperature: pcb,
            wall_temperature: wall,
            seat_temperature: seat_temp,
            lhp_power: q_seat,
            box_power: power - q_seat,
        })
    }

    /// Like [`solve`](Self::solve), but also reports how the
    /// operating-point search went as [`SolverStats`] — the same
    /// observability contract the linear solvers offer.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_with_stats(
        &self,
        power: Power,
        ambient: Celsius,
    ) -> Result<(SebOperatingState, aeropack_solver::SolverStats), DesignError> {
        use aeropack_solver::{Method, Precond, SolverStats};
        let start = std::time::Instant::now();
        let state = self.solve(power, ambient)?;
        aeropack_obs::histogram!("seb.solve_seconds", start.elapsed().as_secs_f64());
        let stats = SolverStats {
            context: "SEB operating point",
            method: Method::Bisection,
            preconditioner: Precond::None,
            requested_preconditioner: Precond::None,
            unknowns: if self.lhp.is_some() { 3 } else { 2 },
            threads: 1,
            iterations: if self.lhp.is_some() { 60 } else { 0 },
            residual_history: Vec::new(),
            final_residual: 0.0,
            tolerance: 1e-7,
            wall_time: start.elapsed(),
            setup_seconds: 0.0,
            iterate_seconds: start.elapsed().as_secs_f64(),
            factorization: None,
            spectral: None,
            dd: None,
        };
        Ok((state, stats))
    }

    /// Solves the whole Fig 10 grid — every `configs` entry at every
    /// power level — in one parallel call over the sweep engine.
    ///
    /// Returns one result row per configuration (in `configs` order,
    /// each row in `powers` order) plus the [`SweepStats`] roll-up of
    /// every operating-point search. Per-point failures (e.g. heat-pipe
    /// dry-out past the capability knee) are reported in place rather
    /// than aborting the rest of the grid.
    ///
    /// Results are bitwise identical at any thread count: scenarios are
    /// pure functions of `(config, power, ambient)` and the runner
    /// preserves ordering.
    #[allow(clippy::type_complexity)]
    pub fn power_sweep(
        configs: &[SebModel],
        powers: &[Power],
        ambient: Celsius,
        runner: &Sweep,
    ) -> (Vec<Vec<Result<SebOperatingState, DesignError>>>, SweepStats) {
        let _span = aeropack_obs::span!(
            "seb.power_sweep",
            configs = configs.len(),
            powers = powers.len()
        );
        let grid: Vec<(usize, Power)> = configs
            .iter()
            .enumerate()
            .flat_map(|(ci, _)| powers.iter().map(move |&p| (ci, p)))
            .collect();
        let (flat, stats) = runner.map_stats(&grid, |&(ci, p)| {
            let _point = aeropack_obs::span_labeled("seb.point", || format!("config={ci}"));
            match configs[ci].solve_with_stats(p, ambient) {
                Ok((state, st)) => (Ok(state), ScenarioStats::from_solver(&st)),
                Err(e) => {
                    aeropack_obs::counter!("seb.point_failures");
                    (Err(e), ScenarioStats::default())
                }
            }
        });
        let mut rows = Vec::with_capacity(configs.len());
        let mut flat = flat.into_iter();
        for _ in configs {
            rows.push(flat.by_ref().take(powers.len()).collect());
        }
        (rows, stats)
    }

    /// The heat-dissipation capability: the largest power whose
    /// PCB-to-air ΔT stays at or below `dt_limit` (Fig 10's reading at a
    /// constant PCB temperature).
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than dry-out (dry-out simply
    /// caps the capability).
    pub fn capability(&self, dt_limit: TempDelta, ambient: Celsius) -> Result<Power, DesignError> {
        let _span = aeropack_obs::span!("seb.capability");
        let ok = |p: f64| -> Result<bool, DesignError> {
            aeropack_obs::counter!("seb.capability_probes");
            match self.solve(Power::new(p), ambient) {
                Ok(state) => Ok(state.dt_pcb_air(ambient).kelvin() <= dt_limit.kelvin()),
                Err(DesignError::TwoPhase(TwoPhaseError::DryOut { .. })) => Ok(false),
                Err(e) => Err(e),
            }
        };
        let mut lo = 1.0;
        let mut hi;
        if ok(lo)? {
            hi = 2.0;
            while ok(hi)? {
                lo = hi;
                hi *= 2.0;
                if hi > 4096.0 {
                    return Ok(Power::new(lo));
                }
            }
        } else {
            // A tight ΔT limit can put the capability below 1 W. Bisect
            // the unit interval instead of rounding the answer to zero
            // (the lower endpoint is never evaluated: solve rejects
            // non-positive power, and every bisection probe is > 0).
            lo = 0.0;
            hi = 1.0;
        }
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if ok(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Power::new(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AMBIENT: Celsius = Celsius::new(25.0);

    fn no_lhp() -> SebModel {
        SebModel::cosee(SeatStructure::aluminum(), false, 0.0).unwrap()
    }

    fn with_lhp(tilt_deg: f64) -> SebModel {
        SebModel::cosee(SeatStructure::aluminum(), true, tilt_deg.to_radians()).unwrap()
    }

    #[test]
    fn fig10_without_lhp_anchor() {
        // Paper: without LHP, ~40 W at ΔT ≈ 60 °C.
        let state = no_lhp().solve(Power::new(40.0), AMBIENT).unwrap();
        let dt = state.dt_pcb_air(AMBIENT).kelvin();
        assert!(
            (45.0..75.0).contains(&dt),
            "ΔT(40 W, no LHP) = {dt:.1} K (paper ≈ 60)"
        );
        assert_eq!(state.lhp_power, Power::ZERO);
    }

    #[test]
    fn fig10_capability_improvement() {
        // Paper: +150 % capability at constant PCB temperature
        // (40 W → 100 W). Accept the 2×–3.2× band.
        let dt = TempDelta::new(60.0);
        let base = no_lhp().capability(dt, AMBIENT).unwrap();
        let lhp = with_lhp(0.0).capability(dt, AMBIENT).unwrap();
        let gain = lhp.value() / base.value();
        assert!(
            (2.0..3.4).contains(&gain),
            "capability {base:.0} → {lhp:.0}: gain {gain:.2} (paper 2.5×)"
        );
    }

    #[test]
    fn fig10_temperature_drop_at_40w() {
        // Paper: at 40 W the HP+LHP system lowers the PCB ~32 °C.
        let t_base = no_lhp()
            .solve(Power::new(40.0), AMBIENT)
            .unwrap()
            .pcb_temperature;
        let t_lhp = with_lhp(0.0)
            .solve(Power::new(40.0), AMBIENT)
            .unwrap()
            .pcb_temperature;
        let drop = (t_base - t_lhp).kelvin();
        assert!(
            (20.0..45.0).contains(&drop),
            "drop at 40 W = {drop:.1} K (paper 32)"
        );
    }

    #[test]
    fn fig10_tilt_penalty_is_small() {
        // Paper: the 22° curve sits slightly above horizontal.
        let q = Power::new(80.0);
        let flat = with_lhp(0.0).solve(q, AMBIENT).unwrap();
        let tilted = with_lhp(22.0).solve(q, AMBIENT).unwrap();
        let penalty = (tilted.pcb_temperature - flat.pcb_temperature).kelvin();
        assert!(
            (-0.5..8.0).contains(&penalty),
            "22° tilt penalty = {penalty:.2} K"
        );
    }

    #[test]
    fn lhp_carries_majority_share_at_high_power() {
        // Paper: "power dissipated by loop heat pipes: 58 W" at ~100 W.
        let state = with_lhp(0.0).solve(Power::new(100.0), AMBIENT).unwrap();
        let share = state.lhp_power.value() / 100.0;
        assert!(
            (0.4..0.8).contains(&share),
            "LHP share = {:.0}% ({} of 100 W)",
            share * 100.0,
            state.lhp_power
        );
    }

    #[test]
    fn composite_seat_sits_between() {
        // Paper: composite gives +80 % (vs +150 % for aluminium).
        let dt = TempDelta::new(60.0);
        let base = no_lhp().capability(dt, AMBIENT).unwrap();
        let alu = with_lhp(0.0).capability(dt, AMBIENT).unwrap();
        let comp = SebModel::cosee(SeatStructure::carbon_composite(), true, 0.0)
            .unwrap()
            .capability(dt, AMBIENT)
            .unwrap();
        assert!(
            comp.value() > 1.3 * base.value(),
            "composite must still improve: {comp} vs {base}"
        );
        assert!(
            comp.value() < alu.value(),
            "composite must trail aluminium: {comp} vs {alu}"
        );
    }

    #[test]
    fn energy_balance() {
        let state = with_lhp(0.0).solve(Power::new(70.0), AMBIENT).unwrap();
        let sum = state.lhp_power.value() + state.box_power.value();
        assert!((sum - 70.0).abs() < 1e-6);
        assert!(state.wall_temperature < state.pcb_temperature);
        if let Some(seat) = state.seat_temperature {
            assert!(seat < state.wall_temperature);
            assert!(seat > AMBIENT);
        }
    }

    #[test]
    fn monotone_dt_vs_power() {
        let model = with_lhp(0.0);
        let mut last = 0.0;
        for p in [20.0, 40.0, 60.0, 80.0] {
            let dt = model
                .solve(Power::new(p), AMBIENT)
                .unwrap()
                .dt_pcb_air(AMBIENT)
                .kelvin();
            assert!(dt > last, "ΔT must grow with power");
            last = dt;
        }
    }

    #[test]
    fn invalid_power_rejected() {
        assert!(no_lhp().solve(Power::ZERO, AMBIENT).is_err());
    }

    #[test]
    fn capability_resolves_sub_watt_limits() {
        // Regression: a ΔT limit tight enough that even 1 W violates it
        // used to make capability() return exactly 0 W. The capability
        // is small but real — the bisection must find it in (0, 1) W.
        let model = no_lhp();
        let dt = TempDelta::new(1.0);
        let cap = model.capability(dt, AMBIENT).unwrap();
        assert!(
            cap.value() > 0.0 && cap.value() < 1.0,
            "sub-watt capability, got {cap}"
        );
        // The reported capability must actually meet the limit, and a
        // slightly larger power must violate it.
        let dt_at_cap = model
            .solve(cap, AMBIENT)
            .unwrap()
            .dt_pcb_air(AMBIENT)
            .kelvin();
        assert!(dt_at_cap <= 1.0 + 1e-6, "ΔT at capability {dt_at_cap:.3}");
        let dt_above = model
            .solve(cap * 1.2, AMBIENT)
            .unwrap()
            .dt_pcb_air(AMBIENT)
            .kelvin();
        assert!(dt_above > 1.0, "ΔT just above capability {dt_above:.3}");
        // A zero-capability verdict is still possible in principle, but
        // ordinary limits keep returning sensible >1 W answers.
        let normal = model.capability(TempDelta::new(60.0), AMBIENT).unwrap();
        assert!(normal.value() > 1.0);
    }

    #[test]
    fn obs_records_seb_spans_and_counters() {
        let reg = std::sync::Arc::new(aeropack_obs::Registry::new());
        {
            let _obs = aeropack_obs::scoped(reg.clone());
            let configs = [no_lhp()];
            let powers = [Power::new(20.0), Power::new(40.0)];
            let _ = SebModel::power_sweep(&configs, &powers, AMBIENT, &Sweep::new(2));
        }
        assert_eq!(reg.counter("seb.solves"), 2);
        let snap = reg.snapshot();
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path.starts_with("seb.power_sweep{")));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path.contains("seb.point{config=0}")));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "seb.solve_seconds"));
    }

    #[test]
    fn power_sweep_matches_pointwise_solves_at_any_thread_count() {
        let configs = [no_lhp(), with_lhp(0.0), with_lhp(22.0)];
        let powers: Vec<Power> = (1..=6).map(|i| Power::new(15.0 * i as f64)).collect();
        let reference: Vec<Vec<Option<f64>>> = configs
            .iter()
            .map(|m| {
                powers
                    .iter()
                    .map(|&p| m.solve(p, AMBIENT).ok().map(|s| s.pcb_temperature.value()))
                    .collect()
            })
            .collect();
        for threads in [1, 2, 8] {
            let (rows, stats) =
                SebModel::power_sweep(&configs, &powers, AMBIENT, &Sweep::new(threads));
            assert_eq!(rows.len(), configs.len());
            assert_eq!(stats.scenarios, configs.len() * powers.len());
            for (ci, row) in rows.iter().enumerate() {
                assert_eq!(row.len(), powers.len());
                for (pi, point) in row.iter().enumerate() {
                    let got = point.as_ref().ok().map(|s| s.pcb_temperature.value());
                    // Bitwise identity with the serial pointwise path.
                    assert_eq!(got, reference[ci][pi], "threads={threads} ci={ci} pi={pi}");
                }
            }
        }
    }
}
