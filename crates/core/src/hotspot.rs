//! The hot-spot study of the paper's §IV: a highly integrated component
//! at 10–100 W/cm² under ARINC 600 forced air, showing why "up to ten
//! times the standard air flow rate would be required" and how a
//! two-phase spreader fixes it.

use aeropack_materials::{air_at_sea_level, Material};
use aeropack_thermal::{forced_convection_channel, Face, FaceBc, FvGrid, FvModel};
use aeropack_units::{
    Celsius, HeatFlux, Length, MassFlowRate, Power, TempDelta, ThermalConductivity,
    ThermalResistance,
};

use crate::cooling::ARINC600_KG_PER_H_PER_KW;
use crate::error::DesignError;

/// A hot-spot scenario: one concentrated source on a conduction board in
/// a forced-air card channel.
#[derive(Debug, Clone)]
pub struct HotSpotStudy {
    /// Board size, metres.
    pub board: (f64, f64),
    /// Board core thickness (aluminium conduction core).
    pub core_thickness: Length,
    /// Core material.
    pub core_material: Material,
    /// Hot-spot flux.
    pub flux: HeatFlux,
    /// Hot-spot footprint side (square), metres.
    pub spot_side: f64,
    /// Junction-to-case resistance of the hot component.
    pub theta_jc: ThermalResistance,
    /// Cooling-air inlet temperature.
    pub ambient: Celsius,
    /// Optional embedded two-phase spreader: effective conductivity it
    /// gives the core region under and around the spot.
    pub spreader: Option<ThermalConductivity>,
}

impl HotSpotStudy {
    /// The paper's baseline: a 10 W/cm² component on a conduction board
    /// under ARINC 600 air at 55 °C.
    pub fn ten_watt_per_cm2() -> Self {
        Self {
            board: (0.16, 0.10),
            core_thickness: Length::from_millimeters(2.0),
            core_material: Material::aluminum_6061(),
            flux: HeatFlux::from_watts_per_square_centimeter(10.0),
            spot_side: 0.02,
            theta_jc: ThermalResistance::new(0.25),
            ambient: Celsius::new(55.0),
            spreader: None,
        }
    }

    /// The coming generation: 100 W/cm² over a 1 cm² die.
    pub fn hundred_watt_per_cm2() -> Self {
        Self {
            flux: HeatFlux::from_watts_per_square_centimeter(100.0),
            spot_side: 0.01,
            ..Self::ten_watt_per_cm2()
        }
    }

    /// Adds an embedded two-phase spreader (vapour-chamber class
    /// effective conductivity).
    pub fn with_two_phase_spreader(mut self) -> Self {
        self.spreader = Some(ThermalConductivity::new(2000.0));
        self
    }

    /// Adds a modelled vapour chamber as the spreader, taking its
    /// homogenised conductivity at the expected ~80 °C operating point.
    ///
    /// # Errors
    ///
    /// Propagates fluid-range errors from the chamber model.
    pub fn with_vapor_chamber(
        mut self,
        chamber: &aeropack_twophase::VaporChamber,
    ) -> Result<Self, DesignError> {
        let k = chamber.homogenized_conductivity(Celsius::new(80.0))?;
        self.spreader = Some(k);
        Ok(self)
    }

    /// Hot-spot power.
    pub fn spot_power(&self) -> Power {
        self.flux * aeropack_units::Area::new(self.spot_side * self.spot_side)
    }

    /// Junction temperature at a given multiple of the ARINC 600 air
    /// flow (1.0 = 220 kg/h per kW).
    ///
    /// # Errors
    ///
    /// Propagates correlation and solver failures.
    pub fn junction_temperature(&self, flow_multiplier: f64) -> Result<Celsius, DesignError> {
        if flow_multiplier <= 0.0 {
            return Err(DesignError::invalid("flow multiplier must be positive"));
        }
        let q = self.spot_power();
        let (lx, ly) = self.board;
        let n = 24;
        let m = (n as f64 * ly / lx).round() as usize;
        let grid = FvGrid::new((lx, ly, self.core_thickness.value()), (n, m.max(4), 1))?;
        let mut model = FvModel::new(grid, &self.core_material);
        if let Some(k_spread) = self.spreader {
            // The spreader occupies a band around the spot (3× its side).
            let (nx, ny, _) = grid.shape();
            let cx = nx / 2;
            let cy = ny / 2;
            let half_x = ((1.5 * self.spot_side / lx * nx as f64).ceil() as usize).max(1);
            let half_y = ((1.5 * self.spot_side / ly * ny as f64).ceil() as usize).max(1);
            let lo = (cx.saturating_sub(half_x), cy.saturating_sub(half_y), 0);
            let hi = ((cx + half_x).min(nx), (cy + half_y).min(ny), 1);
            model.fill_box_orthotropic([k_spread, k_spread, k_spread], 2.0e6, lo, hi)?;
        }
        // Spot source centred on the board.
        let (nx, ny, _) = grid.shape();
        let cx = nx / 2;
        let cy = ny / 2;
        let half_x = ((0.5 * self.spot_side / lx * nx as f64).ceil() as usize).max(1);
        let half_y = ((0.5 * self.spot_side / ly * ny as f64).ceil() as usize).max(1);
        let lo = (cx.saturating_sub(half_x), cy.saturating_sub(half_y), 0);
        let hi = ((cx + half_x).min(nx), (cy + half_y).min(ny), 1);
        model.add_power_box(q, lo, hi)?;

        // ARINC 600 channel flow scaled by the multiplier.
        let flow = MassFlowRate::from_kg_per_hour(
            ARINC600_KG_PER_H_PER_KW * q.value() / 1000.0 * flow_multiplier,
        );
        let air = air_at_sea_level(self.ambient + TempDelta::new(10.0));
        let (h, _) =
            forced_convection_channel(&air, flow, Length::new(ly), Length::from_millimeters(5.0))?;
        let cp = air.specific_heat.value();
        let air_mean = self.ambient + TempDelta::new(q.value() / (2.0 * flow.value() * cp));
        let bc = FaceBc::Convection {
            h,
            ambient: air_mean,
        };
        model.set_face_bc(Face::ZMin, bc);
        model.set_face_bc(Face::ZMax, bc);
        let field = model.solve_steady()?;
        Ok(field.max_temperature() + self.theta_jc * q)
    }

    /// The smallest ARINC 600 flow multiplier that holds the junction at
    /// or below `limit`, searched over `[1, max_multiplier]`. Returns
    /// `None` when even `max_multiplier` is not enough.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn required_flow_multiplier(
        &self,
        limit: Celsius,
        max_multiplier: f64,
    ) -> Result<Option<f64>, DesignError> {
        if self.junction_temperature(1.0)? <= limit {
            return Ok(Some(1.0));
        }
        if self.junction_temperature(max_multiplier)? > limit {
            return Ok(None);
        }
        let (mut lo, mut hi) = (1.0, max_multiplier);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.junction_temperature(mid)? > limit {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: Celsius = Celsius::new(125.0);

    #[test]
    fn standard_flow_fails_ten_watt_per_cm2() {
        // The paper's premise: ARINC 600 flow cannot hold a 10 W/cm² hot
        // spot at the junction limit.
        let study = HotSpotStudy::ten_watt_per_cm2();
        let t1 = study.junction_temperature(1.0).unwrap();
        assert!(t1 > LIMIT, "Tj at 1× flow = {t1}");
    }

    #[test]
    fn several_times_the_flow_is_needed() {
        // "up to ten times the standard air flow rate would be required".
        let study = HotSpotStudy::ten_watt_per_cm2();
        let needed = study.required_flow_multiplier(LIMIT, 40.0).unwrap();
        match needed {
            Some(mult) => assert!(
                (1.3..40.0).contains(&mult),
                "required multiplier = {mult:.1}"
            ),
            None => panic!("40× flow should eventually hold 10 W/cm²"),
        }
    }

    #[test]
    fn hundred_watt_per_cm2_is_hopeless_on_air() {
        let study = HotSpotStudy::hundred_watt_per_cm2();
        let needed = study.required_flow_multiplier(LIMIT, 10.0).unwrap();
        assert!(needed.is_none(), "100 W/cm² must defeat air cooling");
    }

    #[test]
    fn two_phase_spreader_rescues_the_hot_spot() {
        let plain = HotSpotStudy::ten_watt_per_cm2();
        let spread = HotSpotStudy::ten_watt_per_cm2().with_two_phase_spreader();
        let t_plain = plain.junction_temperature(2.0).unwrap();
        let t_spread = spread.junction_temperature(2.0).unwrap();
        assert!(
            t_spread.value() < t_plain.value() - 5.0,
            "spreader must cut the peak: {t_plain} vs {t_spread}"
        );
    }

    #[test]
    fn more_flow_always_helps() {
        let study = HotSpotStudy::ten_watt_per_cm2();
        let mut last = f64::INFINITY;
        for mult in [1.0, 3.0, 9.0] {
            let t = study.junction_temperature(mult).unwrap().value();
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn modelled_vapor_chamber_matches_generic_spreader_class() {
        use aeropack_twophase::VaporChamber;
        use aeropack_units::Length as L;
        let chamber = VaporChamber::water_spreader((0.06, 0.06), L::from_millimeters(3.0)).unwrap();
        let study = HotSpotStudy::ten_watt_per_cm2()
            .with_vapor_chamber(&chamber)
            .unwrap();
        let bare = HotSpotStudy::ten_watt_per_cm2();
        let t_vc = study.junction_temperature(2.0).unwrap();
        let t_bare = bare.junction_temperature(2.0).unwrap();
        assert!(t_vc.value() < t_bare.value() - 5.0, "{t_bare} vs {t_vc}");
        // The modelled chamber is at least as good as the generic
        // 2000 W/mK assumption.
        let generic = HotSpotStudy::ten_watt_per_cm2().with_two_phase_spreader();
        let t_gen = generic.junction_temperature(2.0).unwrap();
        assert!(t_vc.value() <= t_gen.value() + 0.5);
    }

    #[test]
    fn invalid_multiplier_rejected() {
        let study = HotSpotStudy::ten_watt_per_cm2();
        assert!(study.junction_temperature(0.0).is_err());
    }
}
