//! The avionics packaging co-design framework — the paper's actual
//! contribution: a procedure (Fig 1) that runs mechanical and thermal
//! analyses in parallel, walks the three simulation levels of Fig 4,
//! selects a cooling technology from the Fig 5 trade space, and closes
//! the design against the qualification spec.
//!
//! Key entry points:
//!
//! * [`Equipment`] / [`Module`] / [`Pcb`] / [`Component`] — the product
//!   model.
//! * [`CoolingSelector`] — Level-1 technology selection.
//! * [`Level2Model`] / [`level3`] — board fields and junction
//!   temperatures.
//! * [`SebModel`] — the COSEE Seat Electronic Box with heat pipes and
//!   loop heat pipes (the Fig 10 system).
//! * [`HotSpotStudy`] — the §IV hot-spot-vs-airflow argument.
//! * [`run_design`] — the full Fig 1 procedure producing a
//!   [`DesignReport`].
//!
//! # Example
//!
//! ```
//! use aeropack_core::{CoolingSelector, CoolingMode};
//! use aeropack_units::{Celsius, Power};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let selection = CoolingSelector::default()
//!     .select(Power::new(60.0), Celsius::new(55.0))?;
//! assert_ne!(selection.mode, CoolingMode::FreeConvection);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cooling;
mod equipment_model;
mod error;
mod hotspot;
mod levels;
mod product;
mod seb;
mod workflow;

pub use cooling::{
    predict_board_temperature, CoolingMode, CoolingSelection, CoolingSelector, ModuleGeometry,
    ARINC600_KG_PER_H_PER_KW,
};
pub use equipment_model::EquipmentThermalModel;
pub use error::DesignError;
pub use hotspot::HotSpotStudy;
pub use levels::{
    analyze_module, level1, level1_level2_consistency, level3, JunctionResult, Level1Report,
    Level2Model, Level3Report,
};
pub use product::{representative_board, Component, Equipment, Module, Pcb};
pub use seb::{LhpInstallation, SeatStructure, SebModel, SebOperatingState};
pub use workflow::{run_design, DesignReport, DesignSpec, ModuleReport};
