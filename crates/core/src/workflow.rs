//! The packaging design procedure of the paper's Fig 1: parallel
//! mechanical and thermal analyses feeding one design report.

use aeropack_envqual::{
    acceleration_test, assess_fatigue, Do160Curve, Environment, QualificationReport,
    SolderAttachment, TestOutcome, ThermalCycleProfile,
};
use aeropack_fem::{modal, random_response, Dof, HarmonicResponse, PlateMesh, PlateProperties};
use aeropack_materials::Material;
use aeropack_units::{Acceleration, Celsius, Frequency, Length, Stress};

use crate::cooling::CoolingSelector;
use crate::error::DesignError;
use crate::levels::{analyze_module, Level3Report};
use crate::product::{Equipment, Pcb};

/// The environmental specification the design is qualified against.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    /// Junction temperature limit (the paper's 125 °C).
    pub junction_limit: Celsius,
    /// Random-vibration test curve.
    pub vibration: Do160Curve,
    /// Structural damping ratio assumed for the boards.
    pub damping: f64,
    /// Quasi-static acceleration level (the paper's 9 g).
    pub acceleration: Acceleration,
    /// Thermal shock profile.
    pub shock: ThermalCycleProfile,
    /// Reliability environment.
    pub environment: Environment,
    /// Required fatigue life under the vibration spectrum, hours.
    pub vibration_life_hours: f64,
    /// Required number of thermal shock cycles.
    pub shock_cycles: f64,
    /// Lowest admissible first natural frequency (frequency allocation
    /// plan), if any.
    pub min_first_mode: Option<Frequency>,
}

impl DesignSpec {
    /// The paper's qualification set: 125 °C junctions, DO-160 C1,
    /// 9 g, −45/+55 °C shock, airborne-inhabited environment.
    ///
    /// # Errors
    ///
    /// Propagates profile construction errors (cannot occur).
    pub fn date2010() -> Result<Self, DesignError> {
        Ok(Self {
            junction_limit: Celsius::new(125.0),
            vibration: Do160Curve::C1,
            damping: 0.03,
            acceleration: Acceleration::from_g(9.0),
            shock: ThermalCycleProfile::date2010_shock()?,
            environment: Environment::AirborneInhabited,
            vibration_life_hours: 9.0, // 3 h per axis
            shock_cycles: 100.0,
            min_first_mode: None,
        })
    }
}

/// One module's design-report row.
#[derive(Debug, Clone)]
pub struct ModuleReport {
    /// Module name.
    pub name: String,
    /// Chosen cooling technology label.
    pub cooling: &'static str,
    /// Peak board temperature from Level 2.
    pub board_peak: Celsius,
    /// Level-3 junction rows.
    pub level3: Level3Report,
    /// First natural frequency of the board.
    pub first_mode: Frequency,
    /// MTBF of the module, hours.
    pub mtbf_hours: f64,
    /// How the modal extraction went (from the shared solver backend).
    pub modal_stats: Option<aeropack_solver::SolverStats>,
}

/// The complete design report of the Fig 1 procedure.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Per-module rows.
    pub modules: Vec<ModuleReport>,
    /// The qualification campaign results.
    pub qualification: QualificationReport,
    /// Equipment MTBF (series combination of modules), hours.
    pub mtbf_hours: f64,
}

impl DesignReport {
    /// Whether thermal limits, qualification and (if specified) the
    /// frequency allocation all hold.
    pub fn design_closes(&self) -> bool {
        self.qualification.all_passed()
    }
}

impl std::fmt::Display for DesignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for m in &self.modules {
            writeln!(
                f,
                "{}: {} | board peak {:.1} | worst junction {:.1} | \
                 f1 {:.0} Hz | MTBF {:.0} h",
                m.name,
                m.cooling,
                m.board_peak,
                m.level3.max_junction(),
                m.first_mode.value(),
                m.mtbf_hours
            )?;
        }
        writeln!(f, "{}", self.qualification)?;
        write!(
            f,
            "equipment MTBF {:.0} h — design {}",
            self.mtbf_hours,
            if self.design_closes() {
                "CLOSES"
            } else {
                "OPEN (iterate)"
            }
        )
    }
}

/// Builds the structural model of a board: an FR-4 plate with the
/// component masses smeared, pinned in card guides.
fn board_structure(pcb: &Pcb) -> Result<PlateMesh, DesignError> {
    let thickness = pcb.thickness();
    // Smear 1.5 g/cm² of component mass over the board (typical
    // populated density) on top of the laminate mass.
    let props = PlateProperties::from_material(&Material::fr4(), thickness)?.with_smeared_mass(3.0);
    let mut mesh = PlateMesh::rectangular(pcb.size.0, pcb.size.1, 8, 5, &props)?;
    mesh.pin_all_edges()?;
    Ok(mesh)
}

/// Runs the full Fig 1 procedure on an equipment: Level-1 cooling
/// selection, Level-2/3 thermal fields and junctions, modal placement,
/// random-vibration fatigue, 9 g, thermal shock, and the reliability
/// rollup.
///
/// # Errors
///
/// Propagates any analysis failure, including infeasible cooling.
pub fn run_design(
    equipment: &Equipment,
    selector: &CoolingSelector,
    spec: &DesignSpec,
) -> Result<DesignReport, DesignError> {
    let mut modules = Vec::with_capacity(equipment.modules.len());
    let mut qual = QualificationReport::new();
    let mut total_failure_rate = 0.0;

    for module in &equipment.modules {
        let pcb = &module.pcb;
        // Thermal chain.
        let (selection, board_peak, level3) = analyze_module(pcb, selector, equipment.ambient)?;
        let worst_junction = level3.max_junction();
        qual.record(TestOutcome::new(
            format!("{}: junction limit", module.name),
            (spec.junction_limit - equipment.ambient).kelvin()
                / (worst_junction - equipment.ambient).kelvin().max(1e-9),
            format!("worst junction {worst_junction:.1}"),
        ));

        // Mechanical chain.
        let mesh = board_structure(pcb)?;
        let modes = modal(&mesh.model, 3)?;
        let modal_stats = mesh.model.last_solve_stats();
        let first_mode = modes.fundamental();
        if let Some(f_min) = spec.min_first_mode {
            qual.record(TestOutcome::new(
                format!("{}: frequency allocation", module.name),
                first_mode.value() / f_min.value(),
                format!("first mode {first_mode:.0}"),
            ));
        }
        let response = HarmonicResponse::new(&mesh.model, &modes, spec.damping)?;
        let center = mesh.center_node();
        let rand = random_response(&response, center, Dof::W, &spec.vibration.psd())?;
        // Fatigue of every component, each with its Steinberg position
        // factor (parts near a supported edge see less curvature, so
        // their allowable deflection grows: r = 1 at the centre, → 2 at
        // the edges for the fundamental mode shape).
        if pcb.components.is_empty() {
            return Err(DesignError::invalid("board has no components"));
        }
        let mut worst_life = f64::INFINITY;
        let mut worst_name = String::new();
        for c in &pcb.components {
            let (cx, cy) = c.center();
            let sx = (std::f64::consts::PI * cx / pcb.size.0).sin().abs();
            let sy = (std::f64::consts::PI * cy / pcb.size.1).sin().abs();
            let position_factor = (1.0 / (sx * sy).max(0.5)).min(2.0);
            let fatigue = assess_fatigue(
                &rand,
                Length::new(pcb.size.0),
                pcb.thickness(),
                Length::new(c.size.0.max(c.size.1)),
                position_factor,
                c.style,
            )?;
            if fatigue.life_hours < worst_life {
                worst_life = fatigue.life_hours;
                worst_name = c.name.clone();
            }
        }
        qual.record(TestOutcome::new(
            format!("{}: DO-160 random vibration", module.name),
            worst_life / spec.vibration_life_hours,
            format!(
                "worst part `{worst_name}`: life {worst_life:.0} h vs {:.0} h demanded",
                spec.vibration_life_hours
            ),
        ));
        let largest = pcb
            .components
            .iter()
            .max_by(|a, b| {
                (a.size.0 * a.size.1)
                    .partial_cmp(&(b.size.0 * b.size.1))
                    .expect("finite footprints")
            })
            .expect("non-empty checked above");

        // 9 g quasi-static.
        let fr4 = Material::fr4();
        let accel = acceleration_test(
            &mesh.model,
            spec.acceleration,
            Stress::new(fr4.yield_strength.value() / 2.0), // laminate knock-down
        )?;
        qual.record(TestOutcome::new(
            format!("{}: linear acceleration", module.name),
            accel.stress_margin,
            format!("peak stress {:.1} MPa", accel.max_stress.megapascals()),
        ));

        // Thermal shock solder fatigue on the largest part.
        let attachment = SolderAttachment::ceramic_on_fr4(
            Length::new(0.5 * (largest.size.0.powi(2) + largest.size.1.powi(2)).sqrt()),
            Length::from_micrometers(120.0),
        );
        let n_f = attachment.cycles_to_failure(&spec.shock)?;
        qual.record(TestOutcome::new(
            format!("{}: thermal shock", module.name),
            n_f / spec.shock_cycles,
            format!("{n_f:.0} cycles to failure"),
        ));

        // Reliability.
        let reliability = level3.reliability(pcb, spec.environment)?;
        total_failure_rate += reliability.failure_rate_per_hour();

        modules.push(ModuleReport {
            name: module.name.clone(),
            cooling: selection.mode.label(),
            board_peak,
            level3,
            first_mode,
            mtbf_hours: reliability.mtbf_hours(),
            modal_stats,
        });
    }

    let mtbf_hours = if total_failure_rate > 0.0 {
        1.0 / total_failure_rate
    } else {
        f64::INFINITY
    };
    Ok(DesignReport {
        modules,
        qualification: qual,
        mtbf_hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{representative_board, Module};
    use aeropack_units::Power;

    fn small_equipment() -> Equipment {
        Equipment::new(
            "demo unit",
            (0.3, 0.2, 0.15),
            vec![
                Module::new(
                    "CPU module",
                    representative_board("b1", Power::new(25.0)).unwrap(),
                ),
                Module::new(
                    "IO module",
                    representative_board("b2", Power::new(12.0)).unwrap(),
                ),
            ],
            Celsius::new(55.0),
        )
        .unwrap()
    }

    #[test]
    fn full_procedure_closes_for_a_sane_design() {
        let report = run_design(
            &small_equipment(),
            &CoolingSelector::default(),
            &DesignSpec::date2010().unwrap(),
        )
        .unwrap();
        assert_eq!(report.modules.len(), 2);
        assert!(report.design_closes(), "{}", report.qualification);
        assert!(report.mtbf_hours > 10_000.0, "MTBF {}", report.mtbf_hours);
        for m in &report.modules {
            assert!(m.first_mode.value() > 50.0);
            assert!(m.level3.all_below(Celsius::new(125.0)));
        }
    }

    #[test]
    fn frequency_allocation_is_enforced() {
        let mut spec = DesignSpec::date2010().unwrap();
        spec.min_first_mode = Some(Frequency::new(10_000.0)); // absurd demand
        let report = run_design(&small_equipment(), &CoolingSelector::default(), &spec).unwrap();
        assert!(!report.design_closes());
    }

    #[test]
    fn report_display_is_complete() {
        let report = run_design(
            &small_equipment(),
            &CoolingSelector::default(),
            &DesignSpec::date2010().unwrap(),
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("CPU module"));
        assert!(text.contains("IO module"));
        assert!(text.contains("equipment MTBF"));
        assert!(text.contains("CLOSES"));
    }

    #[test]
    fn equipment_mtbf_is_series_of_modules() {
        let report = run_design(
            &small_equipment(),
            &CoolingSelector::default(),
            &DesignSpec::date2010().unwrap(),
        )
        .unwrap();
        let series: f64 = 1.0
            / report
                .modules
                .iter()
                .map(|m| 1.0 / m.mtbf_hours)
                .sum::<f64>();
        assert!((series - report.mtbf_hours).abs() < 1e-6 * series);
        assert!(report.mtbf_hours < report.modules[0].mtbf_hours);
    }
}
