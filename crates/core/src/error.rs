//! Error type for the co-design framework.

use std::error::Error;
use std::fmt;

use aeropack_envqual::QualError;
use aeropack_fem::FemError;
use aeropack_materials::MaterialError;
use aeropack_thermal::ThermalError;
use aeropack_tim::TimError;
use aeropack_twophase::TwoPhaseError;

/// Error returned by the design-level analyses.
#[derive(Debug)]
pub enum DesignError {
    /// Invalid product or analysis definition.
    Invalid {
        /// Human-readable reason.
        reason: String,
    },
    /// No cooling technology in the selector's repertoire can hold the
    /// requirement.
    NoFeasibleCooling {
        /// The dissipation that could not be cooled.
        power_watts: f64,
        /// The limit temperature that was violated by every option.
        limit_c: f64,
    },
    /// A thermal solver failure.
    Thermal(ThermalError),
    /// A structural solver failure.
    Structural(FemError),
    /// A two-phase device failure (including dry-out).
    TwoPhase(TwoPhaseError),
    /// A material/fluid property failure.
    Material(MaterialError),
    /// A TIM model failure.
    Tim(TimError),
    /// A qualification analysis failure.
    Qualification(QualError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid { reason } => write!(f, "invalid design input: {reason}"),
            Self::NoFeasibleCooling {
                power_watts,
                limit_c,
            } => write!(
                f,
                "no cooling technology holds {power_watts} W below {limit_c} °C"
            ),
            Self::Thermal(e) => write!(f, "thermal analysis: {e}"),
            Self::Structural(e) => write!(f, "structural analysis: {e}"),
            Self::TwoPhase(e) => write!(f, "two-phase device: {e}"),
            Self::Material(e) => write!(f, "material property: {e}"),
            Self::Tim(e) => write!(f, "interface material: {e}"),
            Self::Qualification(e) => write!(f, "qualification: {e}"),
        }
    }
}

impl Error for DesignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::Structural(e) => Some(e),
            Self::TwoPhase(e) => Some(e),
            Self::Material(e) => Some(e),
            Self::Tim(e) => Some(e),
            Self::Qualification(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for DesignError {
            fn from(e: $ty) -> Self {
                Self::$variant(e)
            }
        }
    };
}

from_err!(Thermal, ThermalError);
from_err!(Structural, FemError);
from_err!(TwoPhase, TwoPhaseError);
from_err!(Material, MaterialError);
from_err!(Tim, TimError);
from_err!(Qualification, QualError);

impl DesignError {
    /// Shorthand for [`DesignError::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::Invalid {
            reason: reason.into(),
        }
    }
}
