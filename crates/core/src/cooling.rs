//! The cooling-technology trade space of the paper's Fig 5 — free
//! convection, direct forced air, conduction to rails, flow-through
//! exchangers, liquid — with a first-order board-temperature predictor
//! per mode and the Level-1 selector that walks the options from
//! simplest to most complex.

use aeropack_materials::air_at;
use aeropack_thermal::{
    film_temperature, forced_convection_channel, natural_convection_vertical_plate,
    radiation_coefficient,
};
use aeropack_units::{
    Celsius, Length, MassFlowRate, Power, Pressure, TempDelta, ThermalResistance,
};

use crate::error::DesignError;

/// ARINC 600 standard forced-air allocation: 220 kg/h of cooling air per
/// kW of dissipation.
pub const ARINC600_KG_PER_H_PER_KW: f64 = 220.0;

/// A cooling technology from the Fig 5 trade space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingMode {
    /// Radiation + free convection from the equipment surfaces.
    FreeConvection,
    /// Direct air flow across the boards at a multiple of the ARINC 600
    /// allocation (1.0 = standard).
    DirectForcedAir {
        /// Flow multiplier relative to ARINC 600.
        flow_multiplier: f64,
    },
    /// Conduction along the board into wedge-locked rails at a
    /// controlled temperature.
    ConductionCooled {
        /// Rail (cold-wall) temperature.
        rail_temperature: Celsius,
    },
    /// Air flow through an internal finned exchanger (sealed
    /// electronics).
    AirFlowThrough {
        /// Flow multiplier relative to ARINC 600.
        flow_multiplier: f64,
    },
    /// Liquid cold plate behind the board.
    LiquidFlowThrough {
        /// Coolant inlet temperature.
        coolant_inlet: Celsius,
    },
}

impl CoolingMode {
    /// A human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Self::FreeConvection => "free convection",
            Self::DirectForcedAir { .. } => "direct forced air",
            Self::ConductionCooled { .. } => "conduction cooled",
            Self::AirFlowThrough { .. } => "air flow-through",
            Self::LiquidFlowThrough { .. } => "liquid flow-through",
        }
    }
}

/// A module-level cooling prediction context: board geometry plus the
/// in-plane conductivity the conduction path relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleGeometry {
    /// Board size (flow direction first), metres.
    pub board: (f64, f64),
    /// Card-channel air gap per face, metres.
    pub channel_gap: f64,
    /// Effective in-plane conductance parameter `k·t` of the bare
    /// board, W/K (conductivity × thickness).
    pub in_plane_kt: f64,
    /// Additional in-plane `k·t` of the bonded thermal core used when
    /// the module is conduction cooled (aluminium heat-sink plate).
    pub core_kt: f64,
    /// Wedge-lock contact resistance per edge.
    pub wedge_lock: ThermalResistance,
    /// Surface emissivity.
    pub emissivity: f64,
    /// Ambient static pressure (reduce for unpressurised bays at
    /// altitude — convection degrades with air density).
    pub ambient_pressure: Pressure,
}

impl Default for ModuleGeometry {
    fn default() -> Self {
        Self {
            board: (0.160, 0.100),
            channel_gap: 3.0e-3,
            // 6-layer board: ~40 W/mK over 1.6 mm.
            in_plane_kt: 40.0 * 1.6e-3,
            // 2 mm aluminium conduction core.
            core_kt: 170.0 * 2.0e-3,
            wedge_lock: ThermalResistance::new(0.5),
            emissivity: 0.8,
            ambient_pressure: Pressure::standard_atmosphere(),
        }
    }
}

/// Predicts the mean board temperature of a module dissipating `power`
/// under a cooling mode. This is the Level-1 estimator: deliberately
/// first-order, meant for technology selection, with the detailed field
/// left to the Level-2 finite-volume model.
///
/// # Errors
///
/// Returns an error for non-positive power or a correlation failure.
pub fn predict_board_temperature(
    mode: &CoolingMode,
    geometry: &ModuleGeometry,
    power: Power,
    ambient: Celsius,
) -> Result<Celsius, DesignError> {
    if power.value() <= 0.0 {
        return Err(DesignError::invalid("module power must be positive"));
    }
    let (lx, ly) = geometry.board;
    let face_area = aeropack_units::Area::new(lx * ly);
    match *mode {
        CoolingMode::FreeConvection => {
            // Vertical board, both faces, convection + radiation;
            // fixed-point on the surface temperature.
            let mut t_s = ambient + TempDelta::new(20.0);
            for _ in 0..60 {
                let film = film_temperature(t_s, ambient);
                let air = air_at(film, geometry.ambient_pressure);
                let h_c = natural_convection_vertical_plate(&air, t_s, Length::new(ly))?;
                let h_r = radiation_coefficient(geometry.emissivity, t_s, ambient)?;
                let g = (h_c + h_r).film_conductance(face_area * 2.0);
                let t_new = ambient + power / g;
                if (t_new - t_s).kelvin().abs() < 1e-6 {
                    t_s = t_new;
                    break;
                }
                t_s = Celsius::new(0.5 * (t_s.value() + t_new.value()));
            }
            Ok(t_s)
        }
        CoolingMode::DirectForcedAir { flow_multiplier } => {
            if flow_multiplier <= 0.0 {
                return Err(DesignError::invalid("flow multiplier must be positive"));
            }
            let flow = MassFlowRate::from_kg_per_hour(
                ARINC600_KG_PER_H_PER_KW * power.value() / 1000.0 * flow_multiplier,
            );
            let air = air_at(ambient + TempDelta::new(10.0), geometry.ambient_pressure);
            let (h, _) = forced_convection_channel(
                &air,
                flow,
                Length::new(ly),
                Length::new(geometry.channel_gap),
            )?;
            // Air heats along the channel: mean air rise = Q/(2·ṁ·cp).
            let cp = air.specific_heat.value();
            let air_rise = power.value() / (2.0 * flow.value() * cp);
            let g = h.film_conductance(face_area * 2.0);
            Ok(ambient + TempDelta::new(air_rise) + power / g)
        }
        CoolingMode::ConductionCooled { rail_temperature } => {
            // Uniformly heated strip conducting to both wedge-locked
            // edges: mean board rise over the edges is q·L/(12·k·t·w)
            // (mean of the parabola), plus the wedge-lock drop (two
            // locks in parallel, each carrying half the heat).
            let k_t = geometry.in_plane_kt + geometry.core_kt;
            let r_spread = lx / (12.0 * k_t * ly);
            let r_lock = geometry.wedge_lock.value() / 2.0;
            Ok(rail_temperature + TempDelta::new(power.value() * (r_spread + r_lock)))
        }
        CoolingMode::AirFlowThrough { flow_multiplier } => {
            if flow_multiplier <= 0.0 {
                return Err(DesignError::invalid("flow multiplier must be positive"));
            }
            // As forced air, but through an internal finned exchanger
            // with ~4× the wetted area, plus a plate-to-exchanger
            // conduction drop.
            let flow = MassFlowRate::from_kg_per_hour(
                ARINC600_KG_PER_H_PER_KW * power.value() / 1000.0 * flow_multiplier,
            );
            let air = air_at(ambient + TempDelta::new(10.0), geometry.ambient_pressure);
            let (h, _) = forced_convection_channel(
                &air,
                flow,
                Length::new(ly),
                Length::new(geometry.channel_gap),
            )?;
            let cp = air.specific_heat.value();
            let air_rise = power.value() / (2.0 * flow.value() * cp);
            let g = h.film_conductance(face_area * 4.0);
            let r_conduction = 0.05; // board-to-exchanger bond
            Ok(ambient
                + TempDelta::new(air_rise)
                + power / g
                + TempDelta::new(power.value() * r_conduction))
        }
        CoolingMode::LiquidFlowThrough { coolant_inlet } => {
            // Cold plate at h ≈ 2500 W/m²K over one face + bond.
            let g = aeropack_units::HeatTransferCoeff::new(2500.0).film_conductance(face_area);
            let r_bond = 0.03;
            Ok(coolant_inlet + power / g + TempDelta::new(power.value() * r_bond))
        }
    }
}

/// The Level-1 technology selector: walks the trade space from the
/// simplest option upward and returns the first that holds the board
/// limit, together with the whole candidate table.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingSelector {
    /// The board temperature limit (the paper's 85 °C ambient-class
    /// limit by default).
    pub board_limit: Celsius,
    /// Module geometry used for prediction.
    pub geometry: ModuleGeometry,
    /// Rail temperature assumed available for conduction cooling.
    pub rail_temperature_offset: TempDelta,
}

impl Default for CoolingSelector {
    fn default() -> Self {
        Self {
            board_limit: Celsius::new(85.0),
            geometry: ModuleGeometry::default(),
            rail_temperature_offset: TempDelta::new(10.0),
        }
    }
}

/// The outcome of a cooling selection.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingSelection {
    /// The chosen technology.
    pub mode: CoolingMode,
    /// Predicted board temperature with the chosen technology.
    pub board_temperature: Celsius,
    /// All evaluated candidates `(mode, predicted board temperature)`
    /// in evaluation order.
    pub candidates: Vec<(CoolingMode, Celsius)>,
}

impl CoolingSelector {
    /// Creates a selector with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a technology for a module power and ambient.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::NoFeasibleCooling`] if even the liquid
    /// option exceeds the limit, or prediction errors.
    pub fn select(&self, power: Power, ambient: Celsius) -> Result<CoolingSelection, DesignError> {
        let rail = ambient + self.rail_temperature_offset;
        let options = [
            CoolingMode::FreeConvection,
            CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
            CoolingMode::ConductionCooled {
                rail_temperature: rail,
            },
            CoolingMode::AirFlowThrough {
                flow_multiplier: 1.0,
            },
            CoolingMode::LiquidFlowThrough {
                coolant_inlet: ambient,
            },
        ];
        let mut candidates = Vec::with_capacity(options.len());
        let mut chosen: Option<(CoolingMode, Celsius)> = None;
        for mode in options {
            let t = predict_board_temperature(&mode, &self.geometry, power, ambient)?;
            candidates.push((mode, t));
            if chosen.is_none() && t <= self.board_limit {
                chosen = Some((mode, t));
            }
        }
        match chosen {
            Some((mode, board_temperature)) => Ok(CoolingSelection {
                mode,
                board_temperature,
                candidates,
            }),
            None => Err(DesignError::NoFeasibleCooling {
                power_watts: power.value(),
                limit_c: self.board_limit.value(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_watt_module_runs_on_free_convection() {
        // Fig 6 history: 10 W/module worked with simple means.
        let sel = CoolingSelector::default();
        let s = sel.select(Power::new(8.0), Celsius::new(40.0)).unwrap();
        assert_eq!(s.mode, CoolingMode::FreeConvection);
    }

    #[test]
    fn sixty_watt_module_needs_forced_flow() {
        // The paper's next-generation 60 W/module: free convection is
        // out; some forced option is selected.
        let sel = CoolingSelector::default();
        let s = sel.select(Power::new(60.0), Celsius::new(55.0)).unwrap();
        assert_ne!(s.mode, CoolingMode::FreeConvection);
        assert!(s.board_temperature <= Celsius::new(85.0));
        // The free-convection candidate row must show the violation.
        let free = &s.candidates[0];
        assert!(free.1 > Celsius::new(85.0));
    }

    #[test]
    fn escalating_power_escalates_technology() {
        let sel = CoolingSelector::default();
        let order = |mode: &CoolingMode| match mode {
            CoolingMode::FreeConvection => 0,
            CoolingMode::DirectForcedAir { .. } => 1,
            CoolingMode::ConductionCooled { .. } => 2,
            CoolingMode::AirFlowThrough { .. } => 3,
            CoolingMode::LiquidFlowThrough { .. } => 4,
        };
        let mut last = 0;
        for p in [5.0, 20.0, 60.0, 150.0, 400.0] {
            let s = sel.select(Power::new(p), Celsius::new(55.0)).unwrap();
            let o = order(&s.mode);
            assert!(o >= last, "technology cannot de-escalate at {p} W");
            last = o;
        }
    }

    #[test]
    fn impossible_requirement_is_reported() {
        let sel = CoolingSelector {
            board_limit: Celsius::new(56.0),
            ..CoolingSelector::default()
        };
        // 5 kW on one card at 55 °C ambient with a 1 K budget.
        let err = sel
            .select(Power::new(5000.0), Celsius::new(55.0))
            .unwrap_err();
        assert!(matches!(err, DesignError::NoFeasibleCooling { .. }));
    }

    #[test]
    fn forced_air_beats_free_convection() {
        let g = ModuleGeometry::default();
        let p = Power::new(40.0);
        let amb = Celsius::new(40.0);
        let free = predict_board_temperature(&CoolingMode::FreeConvection, &g, p, amb).unwrap();
        let forced = predict_board_temperature(
            &CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
            &g,
            p,
            amb,
        )
        .unwrap();
        assert!(forced.value() < free.value());
    }

    #[test]
    fn more_airflow_cools_better() {
        let g = ModuleGeometry::default();
        let p = Power::new(60.0);
        let amb = Celsius::new(55.0);
        let t1 = predict_board_temperature(
            &CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
            &g,
            p,
            amb,
        )
        .unwrap();
        let t10 = predict_board_temperature(
            &CoolingMode::DirectForcedAir {
                flow_multiplier: 10.0,
            },
            &g,
            p,
            amb,
        )
        .unwrap();
        assert!(t10.value() < t1.value() - 3.0);
    }

    #[test]
    fn conduction_mode_tracks_rail_temperature() {
        let g = ModuleGeometry::default();
        let p = Power::new(30.0);
        let cold = predict_board_temperature(
            &CoolingMode::ConductionCooled {
                rail_temperature: Celsius::new(30.0),
            },
            &g,
            p,
            Celsius::new(55.0),
        )
        .unwrap();
        let warm = predict_board_temperature(
            &CoolingMode::ConductionCooled {
                rail_temperature: Celsius::new(60.0),
            },
            &g,
            p,
            Celsius::new(55.0),
        )
        .unwrap();
        assert!((warm.value() - cold.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = ModuleGeometry::default();
        assert!(predict_board_temperature(
            &CoolingMode::FreeConvection,
            &g,
            Power::ZERO,
            Celsius::new(40.0)
        )
        .is_err());
        assert!(predict_board_temperature(
            &CoolingMode::DirectForcedAir {
                flow_multiplier: 0.0
            },
            &g,
            Power::new(10.0),
            Celsius::new(40.0)
        )
        .is_err());
    }
}
