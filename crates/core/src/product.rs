//! The product model: components on boards in modules in an equipment —
//! the hierarchy the paper's three simulation levels walk down (Fig 4).

use aeropack_envqual::{ComponentStyle, PartKind};
use aeropack_materials::PcbLaminate;
use aeropack_units::{Area, Celsius, HeatFlux, Length, Power, ThermalResistance};

use crate::error::DesignError;

/// A dissipating component placed on a board.
#[derive(Debug, Clone)]
pub struct Component {
    /// Reference designator / name.
    pub name: String,
    /// Dissipated power.
    pub power: Power,
    /// Footprint lower-left corner on the board, metres.
    pub position: (f64, f64),
    /// Footprint size, metres.
    pub size: (f64, f64),
    /// Junction-to-case thermal resistance.
    pub theta_jc: ThermalResistance,
    /// Part family for reliability prediction.
    pub part_kind: PartKind,
    /// Mechanical style for fatigue assessment.
    pub style: ComponentStyle,
}

impl Component {
    /// Builds a component; validates geometry and power.
    ///
    /// # Errors
    ///
    /// Returns an error for negative power, non-positive footprint or
    /// non-positive θjc.
    pub fn new(
        name: impl Into<String>,
        power: Power,
        position: (f64, f64),
        size: (f64, f64),
        theta_jc: ThermalResistance,
        part_kind: PartKind,
        style: ComponentStyle,
    ) -> Result<Self, DesignError> {
        if power.value() < 0.0 {
            return Err(DesignError::invalid("component power cannot be negative"));
        }
        if size.0 <= 0.0 || size.1 <= 0.0 {
            return Err(DesignError::invalid("component footprint must be positive"));
        }
        if theta_jc.value() <= 0.0 {
            return Err(DesignError::invalid("θjc must be positive"));
        }
        Ok(Self {
            name: name.into(),
            power,
            position,
            size,
            theta_jc,
            part_kind,
            style,
        })
    }

    /// Footprint area.
    pub fn footprint(&self) -> Area {
        Area::new(self.size.0 * self.size.1)
    }

    /// Footprint heat flux — the quantity the paper tracks from
    /// 10 W/cm² toward 100 W/cm².
    pub fn heat_flux(&self) -> HeatFlux {
        self.power / self.footprint()
    }

    /// Centre of the footprint.
    pub fn center(&self) -> (f64, f64) {
        (
            self.position.0 + 0.5 * self.size.0,
            self.position.1 + 0.5 * self.size.1,
        )
    }
}

/// A printed circuit board with its laminate and components.
#[derive(Debug, Clone)]
pub struct Pcb {
    /// Board name.
    pub name: String,
    /// Board size, metres.
    pub size: (f64, f64),
    /// The copper/FR-4 stack.
    pub laminate: PcbLaminate,
    /// Placed components.
    pub components: Vec<Component>,
}

impl Pcb {
    /// Builds a board and validates component placement.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive dimensions or a component
    /// extending beyond the board.
    pub fn new(
        name: impl Into<String>,
        size: (f64, f64),
        laminate: PcbLaminate,
        components: Vec<Component>,
    ) -> Result<Self, DesignError> {
        if size.0 <= 0.0 || size.1 <= 0.0 {
            return Err(DesignError::invalid("board dimensions must be positive"));
        }
        for c in &components {
            if c.position.0 < 0.0
                || c.position.1 < 0.0
                || c.position.0 + c.size.0 > size.0 + 1e-12
                || c.position.1 + c.size.1 > size.1 + 1e-12
            {
                return Err(DesignError::invalid(format!(
                    "component `{}` extends beyond the board",
                    c.name
                )));
            }
        }
        Ok(Self {
            name: name.into(),
            size,
            laminate,
            components,
        })
    }

    /// Total board dissipation.
    pub fn total_power(&self) -> Power {
        self.components.iter().map(|c| c.power).sum()
    }

    /// Board thickness from the laminate.
    pub fn thickness(&self) -> Length {
        self.laminate.thickness()
    }

    /// The hottest component by footprint flux.
    pub fn peak_flux(&self) -> HeatFlux {
        self.components
            .iter()
            .map(Component::heat_flux)
            .fold(HeatFlux::ZERO, HeatFlux::max)
    }
}

/// A module (LRU card or box slice) holding one board.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The board inside.
    pub pcb: Pcb,
}

impl Module {
    /// Builds a module.
    pub fn new(name: impl Into<String>, pcb: Pcb) -> Self {
        Self {
            name: name.into(),
            pcb,
        }
    }

    /// Module dissipation.
    pub fn power(&self) -> Power {
        self.pcb.total_power()
    }
}

/// A complete equipment: a box of modules in an environment.
#[derive(Debug, Clone)]
pub struct Equipment {
    /// Equipment name.
    pub name: String,
    /// External box dimensions, metres.
    pub dimensions: (f64, f64, f64),
    /// The modules inside.
    pub modules: Vec<Module>,
    /// The ambient the equipment lives in.
    pub ambient: Celsius,
}

impl Equipment {
    /// Builds an equipment.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive dimensions or no modules.
    pub fn new(
        name: impl Into<String>,
        dimensions: (f64, f64, f64),
        modules: Vec<Module>,
        ambient: Celsius,
    ) -> Result<Self, DesignError> {
        if dimensions.0 <= 0.0 || dimensions.1 <= 0.0 || dimensions.2 <= 0.0 {
            return Err(DesignError::invalid(
                "equipment dimensions must be positive",
            ));
        }
        if modules.is_empty() {
            return Err(DesignError::invalid("equipment needs at least one module"));
        }
        Ok(Self {
            name: name.into(),
            dimensions,
            modules,
            ambient,
        })
    }

    /// Total equipment dissipation.
    pub fn total_power(&self) -> Power {
        self.modules.iter().map(Module::power).sum()
    }

    /// External surface area of the box.
    pub fn surface_area(&self) -> Area {
        let (x, y, z) = self.dimensions;
        Area::new(2.0 * (x * y + y * z + x * z))
    }
}

/// A convenience builder for a representative avionics board of the kind
/// Fig 6 racks carry: a processor, memory, a power stage and support
/// parts, scaled to a total power.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid `total_power`).
pub fn representative_board(
    name: impl Into<String>,
    total_power: Power,
) -> Result<Pcb, DesignError> {
    if total_power.value() <= 0.0 {
        return Err(DesignError::invalid("board power must be positive"));
    }
    let p = total_power.value();
    let laminate = PcbLaminate::symmetric(6, 4, Length::from_millimeters(1.6))?;
    let mk = |name: &str,
              frac: f64,
              pos: (f64, f64),
              size: (f64, f64),
              theta: f64,
              kind: PartKind,
              style: ComponentStyle| {
        Component::new(
            name,
            Power::new(p * frac),
            pos,
            size,
            ThermalResistance::new(theta),
            kind,
            style,
        )
    };
    let components = vec![
        mk(
            "CPU",
            0.40,
            (0.060, 0.040),
            (0.030, 0.030),
            0.8,
            PartKind::Microprocessor,
            ComponentStyle::Bga,
        )?,
        mk(
            "DDR",
            0.15,
            (0.100, 0.045),
            (0.020, 0.012),
            1.5,
            PartKind::Memory,
            ComponentStyle::Bga,
        )?,
        mk(
            "PSU",
            0.30,
            (0.015, 0.015),
            (0.035, 0.025),
            1.2,
            PartKind::PowerSemiconductor,
            ComponentStyle::SmtGullWing,
        )?,
        mk(
            "IO",
            0.15,
            (0.110, 0.012),
            (0.022, 0.022),
            2.0,
            PartKind::AnalogIc,
            ComponentStyle::SmtGullWing,
        )?,
    ];
    Pcb::new(name, (0.160, 0.100), laminate, components)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_board_is_consistent() {
        let board = representative_board("test", Power::new(30.0)).unwrap();
        assert!((board.total_power().value() - 30.0).abs() < 1e-9);
        assert_eq!(board.components.len(), 4);
        // CPU flux at 12 W over 9 cm² = 1.33 W/cm².
        let cpu = &board.components[0];
        assert!((cpu.heat_flux().watts_per_square_centimeter() - 12.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn off_board_component_is_rejected() {
        let laminate = PcbLaminate::symmetric(4, 2, Length::from_millimeters(1.6)).unwrap();
        let c = Component::new(
            "X",
            Power::new(1.0),
            (0.15, 0.09),
            (0.03, 0.03),
            ThermalResistance::new(1.0),
            PartKind::AnalogIc,
            ComponentStyle::SmtGullWing,
        )
        .unwrap();
        assert!(Pcb::new("b", (0.16, 0.10), laminate, vec![c]).is_err());
    }

    #[test]
    fn equipment_totals() {
        let m1 = Module::new("M1", representative_board("b1", Power::new(20.0)).unwrap());
        let m2 = Module::new("M2", representative_board("b2", Power::new(40.0)).unwrap());
        let eq = Equipment::new("rack", (0.3, 0.2, 0.2), vec![m1, m2], Celsius::new(55.0)).unwrap();
        assert!((eq.total_power().value() - 60.0).abs() < 1e-9);
        assert!((eq.surface_area().value() - 0.32).abs() < 1e-9);
    }

    #[test]
    fn invalid_products_rejected() {
        assert!(representative_board("x", Power::ZERO).is_err());
        assert!(Equipment::new("e", (0.0, 0.1, 0.1), vec![], Celsius::new(20.0)).is_err());
        let m = Module::new("M", representative_board("b", Power::new(10.0)).unwrap());
        assert!(Equipment::new("e", (0.3, 0.2, 0.2), vec![m], Celsius::new(20.0)).is_ok());
    }

    #[test]
    fn peak_flux_finds_worst_component() {
        let board = representative_board("t", Power::new(50.0)).unwrap();
        let peak = board.peak_flux();
        // The DDR is the densest part: 7.5 W over 2.4 cm² ≈ 3.1 W/cm²,
        // above the CPU's 20 W / 9 cm² ≈ 2.2 W/cm².
        let ddr_flux = board.components[1].heat_flux();
        assert_eq!(peak, ddr_flux);
        assert!(peak.watts_per_square_centimeter() > 3.0);
    }
}
