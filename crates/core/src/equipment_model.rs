//! The Level-1 equipment-scale thermal field: the box of Fig 4's first
//! panel, with "dissipative PCBs … simulated with volumetric sources".
//!
//! Closure note: the paper uses a CFD code for the internal air; this
//! surrogate replaces the internal convective mixing with an enhanced
//! effective conductivity of the cavity medium (a standard
//! lumped-mixing trick: ~20–60× still air for a fan-stirred box,
//! ~5–15× for a buoyancy-stirred one), while the walls exchange with
//! the outside through a film coefficient. It reproduces what Level 1
//! is for — ranking module placements and checking global feasibility —
//! not local film detail, which belongs to Level 2.

use aeropack_thermal::{Face, FaceBc, FvField, FvGrid, FvModel};
use aeropack_units::{Celsius, HeatTransferCoeff, ThermalConductivity};

use crate::error::DesignError;
use crate::product::Equipment;

/// The equipment-scale finite-volume model with one source box per
/// module.
#[derive(Debug, Clone)]
pub struct EquipmentThermalModel {
    model: FvModel,
    module_cells: Vec<(usize, usize, usize)>,
}

impl EquipmentThermalModel {
    /// Builds the model: the cavity filled with an effective mixing
    /// medium of conductivity `internal_mixing_k`, each module a
    /// volumetric source slab, and all six walls exchanging with the
    /// equipment ambient through `external_h`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive closure parameters or more
    /// modules than the grid can slot.
    pub fn new(
        equipment: &Equipment,
        internal_mixing_k: ThermalConductivity,
        external_h: HeatTransferCoeff,
    ) -> Result<Self, DesignError> {
        if internal_mixing_k.value() <= 0.0 || external_h.value() <= 0.0 {
            return Err(DesignError::invalid(
                "mixing conductivity and external film must be positive",
            ));
        }
        let (lx, ly, lz) = equipment.dimensions;
        let n_modules = equipment.modules.len();
        // Slot modules along x: 2 cells of source + 1 cell of gap each.
        let nx = (3 * n_modules + 1).max(6);
        let ny = 6;
        let nz = 6;
        let grid = FvGrid::new((lx, ly, lz), (nx, ny, nz))?;
        // Fill with the mixing medium (heat capacity of air, irrelevant
        // for steady state).
        let mut model = FvModel::new(grid, &aeropack_materials::Material::fr4());
        model.fill_box_orthotropic(
            [internal_mixing_k, internal_mixing_k, internal_mixing_k],
            1.2e3,
            (0, 0, 0),
            (nx, ny, nz),
        )?;
        let mut module_cells = Vec::with_capacity(n_modules);
        for (i, module) in equipment.modules.iter().enumerate() {
            let x0 = 1 + 3 * i;
            let x1 = (x0 + 2).min(nx);
            // Module slab spans most of the cross-section.
            model.add_power_box(module.power(), (x0, 1, 1), (x1, ny - 1, nz - 1))?;
            module_cells.push((x0, ny / 2, nz / 2));
        }
        let bc = FaceBc::Convection {
            h: external_h,
            ambient: equipment.ambient,
        };
        for face in Face::ALL {
            model.set_face_bc(face, bc);
        }
        Ok(Self {
            model,
            module_cells,
        })
    }

    /// A default closure for a sealed, buoyancy-stirred box: mixing
    /// conductivity 0.3 W/m·K (≈ 12× still air) and 10 W/m²K external
    /// film (natural convection + radiation).
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn sealed_box(equipment: &Equipment) -> Result<Self, DesignError> {
        Self::new(
            equipment,
            ThermalConductivity::new(0.3),
            HeatTransferCoeff::new(10.0),
        )
    }

    /// Solves the cavity field.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self) -> Result<FvField, DesignError> {
        Ok(self.model.solve_steady()?)
    }

    /// The representative temperature of module `index` from a solved
    /// field (the cell at its slab centre).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range module index.
    pub fn module_temperature(
        &self,
        field: &FvField,
        index: usize,
    ) -> Result<Celsius, DesignError> {
        let &(i, j, k) = self
            .module_cells
            .get(index)
            .ok_or_else(|| DesignError::invalid(format!("no module slot {index}")))?;
        Ok(field.at(i, j, k)?)
    }

    /// The underlying finite-volume model.
    pub fn fv_model(&self) -> &FvModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{representative_board, Equipment, Module};
    use aeropack_thermal::Face;
    use aeropack_units::Power;

    fn equipment(powers: &[f64]) -> Equipment {
        let modules = powers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Module::new(
                    format!("m{i}"),
                    representative_board(format!("b{i}"), Power::new(p)).unwrap(),
                )
            })
            .collect();
        Equipment::new("box", (0.4, 0.25, 0.2), modules, Celsius::new(40.0)).unwrap()
    }

    #[test]
    fn hotter_module_reads_hotter() {
        let eq = equipment(&[5.0, 40.0, 5.0]);
        let model = EquipmentThermalModel::sealed_box(&eq).unwrap();
        let field = model.solve().unwrap();
        let t0 = model.module_temperature(&field, 0).unwrap();
        let t1 = model.module_temperature(&field, 1).unwrap();
        let t2 = model.module_temperature(&field, 2).unwrap();
        assert!(t1.value() > t0.value() + 3.0, "{t0} vs {t1}");
        assert!(t1.value() > t2.value() + 3.0);
    }

    #[test]
    fn energy_balance_over_the_box() {
        let eq = equipment(&[10.0, 20.0]);
        let model = EquipmentThermalModel::sealed_box(&eq).unwrap();
        let field = model.solve().unwrap();
        let out: f64 = Face::ALL
            .iter()
            .map(|&f| model.fv_model().boundary_heat(&field, f).unwrap().value())
            .sum();
        assert!((out - 30.0).abs() < 1e-6 * 30.0, "out = {out}");
    }

    #[test]
    fn better_mixing_flattens_the_field() {
        let eq = equipment(&[30.0]);
        let still = EquipmentThermalModel::new(
            &eq,
            ThermalConductivity::new(0.05),
            HeatTransferCoeff::new(10.0),
        )
        .unwrap();
        let stirred = EquipmentThermalModel::new(
            &eq,
            ThermalConductivity::new(2.0),
            HeatTransferCoeff::new(10.0),
        )
        .unwrap();
        let f_still = still.solve().unwrap();
        let f_stirred = stirred.solve().unwrap();
        let spread_still = (f_still.max_temperature() - f_still.min_temperature()).kelvin();
        let spread_stirred = (f_stirred.max_temperature() - f_stirred.min_temperature()).kelvin();
        assert!(spread_stirred < 0.3 * spread_still);
    }

    #[test]
    fn bad_closure_parameters_rejected() {
        let eq = equipment(&[10.0]);
        assert!(EquipmentThermalModel::new(
            &eq,
            ThermalConductivity::ZERO,
            HeatTransferCoeff::new(10.0)
        )
        .is_err());
        let model = EquipmentThermalModel::sealed_box(&eq).unwrap();
        let field = model.solve().unwrap();
        assert!(model.module_temperature(&field, 5).is_err());
    }
}
