//! The three simulation levels of the paper's Fig 4.
//!
//! * **Level 1 — equipment**: modules are volumetric sources; the
//!   analysis selects the cooling technology (see
//!   [`CoolingSelector`](crate::CoolingSelector)) and budgets each
//!   module's board temperature.
//! * **Level 2 — PCB**: the board is a finite-volume plate with
//!   component footprints as dissipative surfaces; used to optimise
//!   copper content, drains and wedge locks.
//! * **Level 3 — component**: every part gets a junction temperature
//!   (local board temperature + case and interface drops), feeding the
//!   safety and reliability calculations.

use aeropack_envqual::{Environment, PartGroup, ReliabilityModel};
use aeropack_materials::air_at_sea_level;
use aeropack_thermal::{
    forced_convection_channel, natural_convection_vertical_plate, radiation_coefficient, Face,
    FaceBc, FvField, FvGrid, FvModel,
};
use aeropack_tim::TimJoint;
use aeropack_units::{Celsius, Length, MassFlowRate, Power, Pressure, TempDelta};

use crate::cooling::{
    predict_board_temperature, CoolingMode, CoolingSelection, CoolingSelector, ModuleGeometry,
    ARINC600_KG_PER_H_PER_KW,
};
use crate::error::DesignError;
use crate::product::{Equipment, Pcb};

/// Level-1 result: one row per module.
#[derive(Debug, Clone)]
pub struct Level1Report {
    /// Per-module rows: name, dissipation, selection.
    pub modules: Vec<(String, Power, CoolingSelection)>,
}

impl Level1Report {
    /// The hottest predicted board temperature across modules.
    pub fn worst_board_temperature(&self) -> Celsius {
        self.modules
            .iter()
            .map(|(_, _, s)| s.board_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Whether every module found a feasible technology (always true if
    /// construction succeeded — selection errors abort the analysis).
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }
}

/// Runs the Level-1 analysis on an equipment: selects a cooling
/// technology per module.
///
/// # Errors
///
/// Returns an error when any module has no feasible cooling option.
pub fn level1(
    equipment: &Equipment,
    selector: &CoolingSelector,
) -> Result<Level1Report, DesignError> {
    let mut modules = Vec::with_capacity(equipment.modules.len());
    for m in &equipment.modules {
        let mut sel = selector.clone();
        sel.geometry.board = m.pcb.size;
        let selection = sel.select(m.power(), equipment.ambient)?;
        modules.push((m.name.clone(), m.power(), selection));
    }
    Ok(Level1Report { modules })
}

/// The Level-2 board thermal model: the PCB as an orthotropic
/// finite-volume plate with component footprint sources.
#[derive(Debug, Clone)]
pub struct Level2Model {
    model: FvModel,
    grid: FvGrid,
    nx: usize,
    ny: usize,
    board: (f64, f64),
}

impl Level2Model {
    /// Builds the board model under a cooling mode, with roughly
    /// `resolution` metres per cell.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate resolution or model-building
    /// failures.
    pub fn new(
        pcb: &Pcb,
        mode: &CoolingMode,
        ambient: Celsius,
        resolution: Length,
    ) -> Result<Self, DesignError> {
        if resolution.value() <= 0.0 {
            return Err(DesignError::invalid("resolution must be positive"));
        }
        let (lx, ly) = pcb.size;
        let nx = ((lx / resolution.value()).round() as usize).max(4);
        let ny = ((ly / resolution.value()).round() as usize).max(4);
        let t = pcb.thickness().value();
        let grid = FvGrid::new((lx, ly, t), (nx, ny, 1))?;
        let mut model = FvModel::new(grid, &aeropack_materials::Material::fr4());
        // Orthotropic laminate properties everywhere. A conduction-
        // cooled module carries a bonded aluminium core; homogenise its
        // in-plane k·t into the board thickness.
        let k_in = if matches!(mode, CoolingMode::ConductionCooled { .. }) {
            let core_kt = ModuleGeometry::default().core_kt;
            pcb.laminate.in_plane_conductivity()
                + aeropack_units::ThermalConductivity::new(core_kt / t)
        } else {
            pcb.laminate.in_plane_conductivity()
        };
        let k_thru = pcb.laminate.through_plane_conductivity();
        model.fill_box_orthotropic([k_in, k_in, k_thru], 1.85e6, (0, 0, 0), (nx, ny, 1))?;
        // Component sources.
        for c in &pcb.components {
            if c.power.value() <= 0.0 {
                continue;
            }
            let i0 = ((c.position.0 / lx * nx as f64).floor() as usize).min(nx - 1);
            let j0 = ((c.position.1 / ly * ny as f64).floor() as usize).min(ny - 1);
            let i1 =
                (((c.position.0 + c.size.0) / lx * nx as f64).ceil() as usize).clamp(i0 + 1, nx);
            let j1 =
                (((c.position.1 + c.size.1) / ly * ny as f64).ceil() as usize).clamp(j0 + 1, ny);
            model.add_power_box(c.power, (i0, j0, 0), (i1, j1, 1))?;
        }
        // Boundary conditions per cooling mode.
        let total = pcb.total_power();
        match *mode {
            CoolingMode::FreeConvection => {
                let t_est = ambient + TempDelta::new(30.0);
                let air = air_at_sea_level(ambient + TempDelta::new(15.0));
                let h_c = natural_convection_vertical_plate(&air, t_est, Length::new(ly))?;
                let h_r = radiation_coefficient(0.8, t_est, ambient)?;
                let bc = FaceBc::Convection {
                    h: h_c + h_r,
                    ambient,
                };
                model.set_face_bc(Face::ZMin, bc);
                model.set_face_bc(Face::ZMax, bc);
            }
            CoolingMode::DirectForcedAir { flow_multiplier }
            | CoolingMode::AirFlowThrough { flow_multiplier } => {
                let flow = MassFlowRate::from_kg_per_hour(
                    ARINC600_KG_PER_H_PER_KW * total.value() / 1000.0 * flow_multiplier,
                );
                let air = air_at_sea_level(ambient + TempDelta::new(10.0));
                let (h, _) = forced_convection_channel(
                    &air,
                    flow,
                    Length::new(ly),
                    Length::new(ModuleGeometry::default().channel_gap),
                )?;
                let cp = air.specific_heat.value();
                let air_mean = ambient + TempDelta::new(total.value() / (2.0 * flow.value() * cp));
                let area_factor = if matches!(mode, CoolingMode::AirFlowThrough { .. }) {
                    2.0
                } else {
                    1.0
                };
                let bc = FaceBc::Convection {
                    h: h * area_factor,
                    ambient: air_mean,
                };
                model.set_face_bc(Face::ZMin, bc);
                model.set_face_bc(Face::ZMax, bc);
            }
            CoolingMode::ConductionCooled { rail_temperature } => {
                model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(rail_temperature));
                model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(rail_temperature));
            }
            CoolingMode::LiquidFlowThrough { coolant_inlet } => {
                model.set_face_bc(
                    Face::ZMin,
                    FaceBc::Convection {
                        h: aeropack_units::HeatTransferCoeff::new(2500.0),
                        ambient: coolant_inlet,
                    },
                );
            }
        }
        Ok(Self {
            model,
            grid,
            nx,
            ny,
            board: (lx, ly),
        })
    }

    /// Solves the steady board temperature field.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self) -> Result<FvField, DesignError> {
        Ok(self.model.solve_steady()?)
    }

    /// Board temperature at a physical location, from a solved field.
    ///
    /// # Errors
    ///
    /// Returns an error when the point is outside the board.
    pub fn temperature_at(&self, field: &FvField, x: f64, y: f64) -> Result<Celsius, DesignError> {
        let (lx, ly) = self.board;
        if !(0.0..=lx).contains(&x) || !(0.0..=ly).contains(&y) {
            return Err(DesignError::invalid("probe point outside the board"));
        }
        let i = ((x / lx * self.nx as f64) as usize).min(self.nx - 1);
        let j = ((y / ly * self.ny as f64) as usize).min(self.ny - 1);
        Ok(field.at(i, j, 0)?)
    }

    /// A copy of this board model with every heat source scaled by
    /// `factor` — the cheap way a power sweep builds its scenario list.
    /// The copy shares the cached CSR pattern, so its assemblies skip
    /// the symbolic phase (solve one scale first to prime the cache).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive factor.
    pub fn with_power_scale(&self, factor: f64) -> Result<Self, DesignError> {
        if factor <= 0.0 {
            return Err(DesignError::invalid("power scale must be positive"));
        }
        let mut scaled = self.clone();
        scaled.model.scale_sources(factor);
        Ok(scaled)
    }

    /// Symbolic-cache counters of the underlying FV model:
    /// `(hits, misses)`.
    pub fn pattern_cache_stats(&self) -> (usize, usize) {
        self.model.pattern_cache_stats()
    }

    /// The underlying finite-volume model (for boundary heat queries).
    pub fn fv_model(&self) -> &FvModel {
        &self.model
    }

    /// Canonical content fingerprint of this board model: the
    /// underlying FV model's fingerprint (grid, properties, sources,
    /// boundary conditions, solver settings) folded with the board
    /// outline and in-plane resolution. Two models built from the same
    /// PCB, cooling mode and resolution hash identically regardless of
    /// construction history — the content-addressed cache key
    /// `aeropack-serve` uses for whole-solve results.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = aeropack_solver::Fingerprint::new("core.level2.model");
        fp.write_u64(self.model.fingerprint());
        fp.write_usize(self.nx);
        fp.write_usize(self.ny);
        fp.write_f64(self.board.0);
        fp.write_f64(self.board.1);
        fp.finish()
    }

    /// Overrides the solver configuration of the underlying FV model —
    /// the hook through which board refinements pick a preconditioner
    /// (e.g. `Precond::Ic0` for repeated power-sweep solves).
    pub fn set_solver_config(&mut self, config: aeropack_solver::SolverConfig) {
        self.model.set_solver_config(config);
    }

    /// Statistics from the most recent [`solve`](Self::solve), if any.
    pub fn last_solve_stats(&self) -> Option<aeropack_solver::SolverStats> {
        self.model.last_solve_stats()
    }

    /// The grid.
    pub fn grid(&self) -> &FvGrid {
        &self.grid
    }
}

/// One Level-3 row: a component's junction state.
#[derive(Debug, Clone)]
pub struct JunctionResult {
    /// Component name.
    pub name: String,
    /// Local board temperature under the part.
    pub board_temperature: Celsius,
    /// Junction temperature.
    pub junction_temperature: Celsius,
    /// Dissipation.
    pub power: Power,
}

/// The Level-3 analysis result for one board.
#[derive(Debug, Clone)]
pub struct Level3Report {
    /// Per-component junction rows.
    pub junctions: Vec<JunctionResult>,
}

impl Level3Report {
    /// The hottest junction.
    pub fn max_junction(&self) -> Celsius {
        self.junctions
            .iter()
            .map(|j| j.junction_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Whether every junction respects a limit (the paper's 125 °C).
    pub fn all_below(&self, limit: Celsius) -> bool {
        self.junctions
            .iter()
            .all(|j| j.junction_temperature <= limit)
    }

    /// Builds the reliability model these junctions imply.
    ///
    /// # Errors
    ///
    /// Propagates reliability-model construction errors.
    pub fn reliability(
        &self,
        pcb: &Pcb,
        environment: Environment,
    ) -> Result<ReliabilityModel, DesignError> {
        let mut model = ReliabilityModel::new(environment);
        for (j, c) in self.junctions.iter().zip(&pcb.components) {
            model.add(PartGroup {
                kind: c.part_kind,
                count: 1,
                junction: j.junction_temperature,
            })?;
        }
        Ok(model)
    }
}

/// Runs Level 3 on a solved Level-2 field: junction = local board
/// temperature + interface drop (optional TIM under the part at the
/// assembly pressure) + `P·θjc`.
///
/// # Errors
///
/// Propagates probe and TIM evaluation errors.
pub fn level3(
    pcb: &Pcb,
    level2: &Level2Model,
    field: &FvField,
    tim: Option<(&TimJoint, Pressure)>,
) -> Result<Level3Report, DesignError> {
    let mut junctions = Vec::with_capacity(pcb.components.len());
    for c in &pcb.components {
        let (cx, cy) = c.center();
        let board = level2.temperature_at(field, cx, cy)?;
        let mut junction = board + c.theta_jc * c.power;
        if let Some((joint, pressure)) = tim {
            let r = joint.area_resistance(pressure)?.over_area(c.footprint());
            junction += r * c.power;
        }
        junctions.push(JunctionResult {
            name: c.name.clone(),
            board_temperature: board,
            junction_temperature: junction,
            power: c.power,
        });
    }
    Ok(Level3Report { junctions })
}

/// Convenience: the full Level-1 → Level-2 → Level-3 chain on one
/// module, returning `(selection, field peak, level-3 report)`.
///
/// # Errors
///
/// Propagates any stage's failure.
pub fn analyze_module(
    pcb: &Pcb,
    selector: &CoolingSelector,
    ambient: Celsius,
) -> Result<(CoolingSelection, Celsius, Level3Report), DesignError> {
    let mut sel = selector.clone();
    sel.geometry.board = pcb.size;
    let selection = sel.select(pcb.total_power(), ambient)?;
    let l2 = Level2Model::new(pcb, &selection.mode, ambient, Length::from_millimeters(5.0))?;
    let field = l2.solve()?;
    let report = level3(pcb, &l2, &field, None)?;
    Ok((selection, field.max_temperature(), report))
}

/// Sanity link between Level 1 and Level 2: the Level-1 scalar estimate
/// for a mode should bracket the Level-2 mean within a stated factor.
/// Exposed for validation and tests.
///
/// # Errors
///
/// Propagates prediction errors.
pub fn level1_level2_consistency(
    pcb: &Pcb,
    mode: &CoolingMode,
    ambient: Celsius,
) -> Result<(Celsius, Celsius), DesignError> {
    let geometry = ModuleGeometry {
        board: pcb.size,
        ..ModuleGeometry::default()
    };
    let l1 = predict_board_temperature(mode, &geometry, pcb.total_power(), ambient)?;
    let l2 = Level2Model::new(pcb, mode, ambient, Length::from_millimeters(5.0))?;
    let field = l2.solve()?;
    Ok((l1, field.mean_temperature()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{representative_board, Module};

    fn board() -> Pcb {
        representative_board("test-board", Power::new(30.0)).unwrap()
    }

    #[test]
    fn level2_peak_sits_on_the_cpu() {
        let pcb = board();
        let mode = CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        };
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(40.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        // The CPU footprint centre must be hotter than the board mean.
        let cpu = &pcb.components[0];
        let (cx, cy) = cpu.center();
        let t_cpu = l2.temperature_at(&field, cx, cy).unwrap();
        assert!(t_cpu.value() > field.mean_temperature().value() + 1.0);
    }

    #[test]
    fn level3_junctions_exceed_board() {
        let pcb = board();
        let mode = CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        };
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(40.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        let l3 = level3(&pcb, &l2, &field, None).unwrap();
        assert_eq!(l3.junctions.len(), pcb.components.len());
        for j in &l3.junctions {
            assert!(j.junction_temperature >= j.board_temperature);
        }
        // CPU: 12 W × 0.8 K/W = 9.6 K above its board spot.
        let cpu = &l3.junctions[0];
        let dt = (cpu.junction_temperature - cpu.board_temperature).kelvin();
        assert!((dt - 9.6).abs() < 1e-9);
    }

    #[test]
    fn tim_interface_adds_junction_rise() {
        let pcb = board();
        let mode = CoolingMode::ConductionCooled {
            rail_temperature: Celsius::new(45.0),
        };
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(55.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        let joint = TimJoint::conventional_grease().unwrap();
        let without = level3(&pcb, &l2, &field, None).unwrap();
        let with = level3(
            &pcb,
            &l2,
            &field,
            Some((&joint, Pressure::from_kilopascals(200.0))),
        )
        .unwrap();
        assert!(with.max_junction().value() > without.max_junction().value());
    }

    #[test]
    fn level1_level2_agree_within_factor() {
        // The scalar Level-1 estimate and the FV Level-2 mean must agree
        // within a factor ~2 for forced air (both first-order models).
        let pcb = board();
        let mode = CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        };
        let (l1, l2) = level1_level2_consistency(&pcb, &mode, Celsius::new(40.0)).unwrap();
        let rise1 = l1.value() - 40.0;
        let rise2 = l2.value() - 40.0;
        let ratio = rise1 / rise2;
        assert!(
            (0.4..2.5).contains(&ratio),
            "L1 rise {rise1:.1} K vs L2 rise {rise2:.1} K"
        );
    }

    #[test]
    fn conduction_cooling_pins_the_edges() {
        let pcb = board();
        let rail = Celsius::new(45.0);
        let mode = CoolingMode::ConductionCooled {
            rail_temperature: rail,
        };
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(55.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        // Edge cells sit near the rail; the centre is warmer.
        let t_edge = l2.temperature_at(&field, 0.001, pcb.size.1 / 2.0).unwrap();
        let t_mid = l2
            .temperature_at(&field, pcb.size.0 / 2.0, pcb.size.1 / 2.0)
            .unwrap();
        assert!(t_mid.value() > t_edge.value());
        assert!(t_edge.value() < rail.value() + 15.0);
    }

    #[test]
    fn level1_report_covers_all_modules() {
        let eq = Equipment::new(
            "rack",
            (0.4, 0.3, 0.2),
            vec![
                Module::new("M1", representative_board("b1", Power::new(10.0)).unwrap()),
                Module::new("M2", representative_board("b2", Power::new(60.0)).unwrap()),
            ],
            Celsius::new(55.0),
        )
        .unwrap();
        let report = level1(&eq, &CoolingSelector::default()).unwrap();
        assert_eq!(report.module_count(), 2);
        assert!(report.worst_board_temperature() <= Celsius::new(85.0));
    }

    #[test]
    fn reliability_from_level3() {
        let pcb = board();
        let mode = CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        };
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(40.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        let l3 = level3(&pcb, &l2, &field, None).unwrap();
        let rel = l3
            .reliability(&pcb, Environment::AirborneInhabited)
            .unwrap();
        assert!(rel.mtbf_hours() > 10_000.0);
    }

    #[test]
    fn probe_outside_board_is_rejected() {
        let pcb = board();
        let mode = CoolingMode::FreeConvection;
        let l2 = Level2Model::new(
            &pcb,
            &mode,
            Celsius::new(40.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let field = l2.solve().unwrap();
        assert!(l2.temperature_at(&field, 1.0, 0.05).is_err());
    }
}
