//! Property-style tests of the TIM models and the virtual tester,
//! driven by the deterministic in-repo [`SplitMix64`] generator so the
//! suite runs fully offline.

use aeropack_materials::Material;
use aeropack_tim::{
    hashin_shtrikman_bounds, lewis_nielsen, loading_for_target, maxwell_garnett, D5470Tester,
    FillerShape, HncSurface, TimJoint,
};
use aeropack_units::{Length, Pressure, SplitMix64, ThermalConductivity};

const CASES: u64 = 32;

#[test]
fn joint_resistance_monotone_in_pressure() {
    let mut rng = SplitMix64::new(0x7133_0001);
    for _ in 0..CASES {
        let p1_kpa = rng.range_f64(10.0, 400.0);
        let dp_kpa = rng.range_f64(10.0, 600.0);
        let joint = TimJoint::nanopack_flake_adhesive().unwrap();
        let r1 = joint
            .area_resistance(Pressure::from_kilopascals(p1_kpa))
            .unwrap();
        let r2 = joint
            .area_resistance(Pressure::from_kilopascals(p1_kpa + dp_kpa))
            .unwrap();
        assert!(r2.value() <= r1.value() + 1e-15);
        // BLT floor is respected.
        let blt = joint
            .bond_line(Pressure::from_kilopascals(p1_kpa + dp_kpa))
            .unwrap();
        assert!(blt.value() >= joint.blt_min().value() - 1e-15);
    }
}

#[test]
fn better_bulk_conductivity_never_hurts() {
    let mut rng = SplitMix64::new(0x7133_0002);
    for _ in 0..CASES {
        let k1 = rng.range_f64(0.5, 5.0);
        let factor = rng.range_f64(1.1, 10.0);
        let p_kpa = rng.range_f64(50.0, 500.0);
        let build = |k: f64| {
            TimJoint::new(
                ThermalConductivity::new(k),
                Length::from_micrometers(60.0),
                Length::from_micrometers(12.0),
                Pressure::from_kilopascals(100.0),
                Length::from_micrometers(0.4),
            )
            .unwrap()
        };
        let p = Pressure::from_kilopascals(p_kpa);
        let r_poor = build(k1).area_resistance(p).unwrap();
        let r_good = build(k1 * factor).area_resistance(p).unwrap();
        assert!(r_good.value() < r_poor.value());
    }
}

#[test]
fn effective_medium_monotone_in_filler_conductivity() {
    let mut rng = SplitMix64::new(0x7133_0003);
    for _ in 0..CASES {
        let phi = rng.range_f64(0.05, 0.45);
        let kf1 = rng.range_f64(10.0, 200.0);
        let factor = rng.range_f64(1.2, 4.0);
        let km = Material::epoxy().thermal_conductivity;
        let a = maxwell_garnett(km, ThermalConductivity::new(kf1), phi).unwrap();
        let b = maxwell_garnett(km, ThermalConductivity::new(kf1 * factor), phi).unwrap();
        assert!(b.value() >= a.value());
        // HS bounds widen with contrast.
        let (l1, h1) = hashin_shtrikman_bounds(km, ThermalConductivity::new(kf1), phi).unwrap();
        let (_, h2) =
            hashin_shtrikman_bounds(km, ThermalConductivity::new(kf1 * factor), phi).unwrap();
        assert!(h2.value() >= h1.value());
        assert!(l1.value() <= h1.value());
    }
}

#[test]
fn loading_search_is_consistent() {
    let mut rng = SplitMix64::new(0x7133_0004);
    for _ in 0..CASES {
        let target = rng.range_f64(1.0, 12.0);
        let km = Material::epoxy().thermal_conductivity;
        let kf = Material::silver().thermal_conductivity;
        let target_k = ThermalConductivity::new(target);
        let phi = loading_for_target(km, kf, target_k, FillerShape::Sphere).unwrap();
        let achieved = lewis_nielsen(km, kf, phi, FillerShape::Sphere).unwrap();
        assert!(
            (achieved.value() - target).abs() < 0.02 * target,
            "wanted {target}, got {achieved} at φ = {phi}"
        );
    }
}

#[test]
fn hnc_reduction_bounded_and_monotone_in_pad_size() {
    let mut rng = SplitMix64::new(0x7133_0005);
    for _ in 0..CASES {
        let half1_mm = rng.range_f64(0.6, 4.0);
        let grow = rng.range_f64(1.2, 4.0);
        let hnc = HncSurface::nanopack_demo().unwrap();
        let r1 = hnc.reduction(Length::from_millimeters(half1_mm)).unwrap();
        let r2 = hnc
            .reduction(Length::from_millimeters(half1_mm * grow))
            .unwrap();
        assert!((0.0..1.0).contains(&r1));
        assert!(r2 >= r1 - 1e-12, "bigger pads benefit more");
    }
}

#[test]
fn tester_is_unbiased_within_noise() {
    // The averaged measurement is within instrument rating of truth for
    // any seed.
    let tester = D5470Tester::standard().unwrap();
    let joint = TimJoint::conventional_grease().unwrap();
    let p = Pressure::from_kilopascals(250.0);
    let truth = joint.area_resistance(p).unwrap().kelvin_mm2_per_watt();
    let mut rng = SplitMix64::new(0x7133_0006);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let m = tester.measure_averaged(&joint, p, 16, seed).unwrap();
        let err = (m.area_resistance.kelvin_mm2_per_watt() - truth).abs();
        assert!(err < 1.0, "error {err} K·mm²/W at seed {seed}");
    }
}
