//! Property-style tests of the TIM models and the virtual tester,
//! driven through the [`aeropack_verify`] harness: failures shrink to a
//! minimal counterexample and print a one-line reproducer seed.

use aeropack_materials::Material;
use aeropack_tim::{
    hashin_shtrikman_bounds, lewis_nielsen, loading_for_target, maxwell_garnett, D5470Tester,
    FillerShape, HncSurface, TimJoint,
};
use aeropack_units::{Length, Pressure, ThermalConductivity};
use aeropack_verify::{check, ensure, tuple3, Gen};

const CASES: u64 = 32;

#[test]
fn joint_resistance_monotone_in_pressure() {
    let gen = Gen::f64_range(10.0, 400.0).zip(&Gen::f64_range(10.0, 600.0));
    check(0x7133_0001, CASES, &gen, |&(p1_kpa, dp_kpa)| {
        let joint = TimJoint::nanopack_flake_adhesive().map_err(|e| e.to_string())?;
        let r1 = joint
            .area_resistance(Pressure::from_kilopascals(p1_kpa))
            .map_err(|e| e.to_string())?;
        let r2 = joint
            .area_resistance(Pressure::from_kilopascals(p1_kpa + dp_kpa))
            .map_err(|e| e.to_string())?;
        ensure!(
            r2.value() <= r1.value() + 1e-15,
            "R({}) = {} > R({p1_kpa}) = {}",
            p1_kpa + dp_kpa,
            r2.value(),
            r1.value()
        );
        // BLT floor is respected.
        let blt = joint
            .bond_line(Pressure::from_kilopascals(p1_kpa + dp_kpa))
            .map_err(|e| e.to_string())?;
        ensure!(blt.value() >= joint.blt_min().value() - 1e-15);
        Ok(())
    });
}

#[test]
fn better_bulk_conductivity_never_hurts() {
    let gen = tuple3(
        &Gen::f64_range(0.5, 5.0),
        &Gen::f64_range(1.1, 10.0),
        &Gen::f64_range(50.0, 500.0),
    );
    check(0x7133_0002, CASES, &gen, |&(k1, factor, p_kpa)| {
        let build = |k: f64| {
            TimJoint::new(
                ThermalConductivity::new(k),
                Length::from_micrometers(60.0),
                Length::from_micrometers(12.0),
                Pressure::from_kilopascals(100.0),
                Length::from_micrometers(0.4),
            )
            .unwrap()
        };
        let p = Pressure::from_kilopascals(p_kpa);
        let r_poor = build(k1).area_resistance(p).map_err(|e| e.to_string())?;
        let r_good = build(k1 * factor)
            .area_resistance(p)
            .map_err(|e| e.to_string())?;
        ensure!(
            r_good.value() < r_poor.value(),
            "k ×{factor} did not lower R: {} vs {}",
            r_good.value(),
            r_poor.value()
        );
        Ok(())
    });
}

#[test]
fn effective_medium_monotone_in_filler_conductivity() {
    let gen = tuple3(
        &Gen::f64_range(0.05, 0.45),
        &Gen::f64_range(10.0, 200.0),
        &Gen::f64_range(1.2, 4.0),
    );
    check(0x7133_0003, CASES, &gen, |&(phi, kf1, factor)| {
        let km = Material::epoxy().thermal_conductivity;
        let a =
            maxwell_garnett(km, ThermalConductivity::new(kf1), phi).map_err(|e| e.to_string())?;
        let b = maxwell_garnett(km, ThermalConductivity::new(kf1 * factor), phi)
            .map_err(|e| e.to_string())?;
        ensure!(b.value() >= a.value(), "MG fell from {} to {}", a, b);
        // HS bounds widen with contrast.
        let (l1, h1) = hashin_shtrikman_bounds(km, ThermalConductivity::new(kf1), phi)
            .map_err(|e| e.to_string())?;
        let (_, h2) = hashin_shtrikman_bounds(km, ThermalConductivity::new(kf1 * factor), phi)
            .map_err(|e| e.to_string())?;
        ensure!(h2.value() >= h1.value());
        ensure!(l1.value() <= h1.value());
        Ok(())
    });
}

#[test]
fn loading_search_is_consistent() {
    check(0x7133_0004, CASES, &Gen::f64_range(1.0, 12.0), |&target| {
        let km = Material::epoxy().thermal_conductivity;
        let kf = Material::silver().thermal_conductivity;
        let target_k = ThermalConductivity::new(target);
        let phi =
            loading_for_target(km, kf, target_k, FillerShape::Sphere).map_err(|e| e.to_string())?;
        let achieved =
            lewis_nielsen(km, kf, phi, FillerShape::Sphere).map_err(|e| e.to_string())?;
        ensure!(
            (achieved.value() - target).abs() < 0.02 * target,
            "wanted {target}, got {achieved} at φ = {phi}"
        );
        Ok(())
    });
}

#[test]
fn hnc_reduction_bounded_and_monotone_in_pad_size() {
    let gen = Gen::f64_range(0.6, 4.0).zip(&Gen::f64_range(1.2, 4.0));
    check(0x7133_0005, CASES, &gen, |&(half1_mm, grow)| {
        let hnc = HncSurface::nanopack_demo().map_err(|e| e.to_string())?;
        let r1 = hnc
            .reduction(Length::from_millimeters(half1_mm))
            .map_err(|e| e.to_string())?;
        let r2 = hnc
            .reduction(Length::from_millimeters(half1_mm * grow))
            .map_err(|e| e.to_string())?;
        ensure!((0.0..1.0).contains(&r1), "reduction {r1} out of [0, 1)");
        ensure!(r2 >= r1 - 1e-12, "bigger pads benefit more: {r2} < {r1}");
        Ok(())
    });
}

#[test]
fn tester_is_unbiased_within_noise() {
    // The averaged measurement is within instrument rating of truth for
    // any seed.
    let tester = D5470Tester::standard().unwrap();
    let joint = TimJoint::conventional_grease().unwrap();
    let p = Pressure::from_kilopascals(250.0);
    let truth = joint.area_resistance(p).unwrap().kelvin_mm2_per_watt();
    check(0x7133_0006, CASES, &Gen::u64_range(0, 1000), |&seed| {
        let m = tester
            .measure_averaged(&joint, p, 16, seed)
            .map_err(|e| e.to_string())?;
        let err = (m.area_resistance.kelvin_mm2_per_watt() - truth).abs();
        ensure!(err < 1.0, "error {err} K·mm²/W at seed {seed}");
        Ok(())
    });
}
