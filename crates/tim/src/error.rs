//! Error type for the TIM models.

use std::error::Error;
use std::fmt;

/// Error returned by TIM model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TimError {
    /// An argument violated a physical constraint.
    InvalidArgument {
        /// Name of the argument.
        name: &'static str,
        /// The constraint that was violated.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A requested target (e.g. a conductivity) is unreachable with the
    /// given constituents.
    TargetUnreachable {
        /// What was requested.
        what: String,
    },
}

impl fmt::Display for TimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidArgument {
                name,
                constraint,
                value,
            } => write!(f, "argument `{name}` = {value} violates: {constraint}"),
            Self::TargetUnreachable { what } => write!(f, "target unreachable: {what}"),
        }
    }
}

impl Error for TimError {}

impl TimError {
    pub(crate) fn invalid(name: &'static str, constraint: &'static str, value: f64) -> Self {
        Self::InvalidArgument {
            name,
            constraint,
            value,
        }
    }
}
