//! Carbon-nanotube array TIMs — the NANOPACK exploratory route
//! ("properties of randomly distributed and aligned carbon nanotubes are
//! currently studied").
//!
//! The model captures the known physics of CNT-array interfaces: the
//! tube bulk is an extraordinary conductor, so the measured resistance
//! is dominated by the tube-end contact resistances; only the fraction
//! of tubes actually touching the mating surface contributes.

use aeropack_units::{AreaResistance, Length, ThermalConductivity};

use crate::error::TimError;

/// A vertically aligned (or random-mat) CNT array interface.
///
/// # Examples
///
/// ```
/// use aeropack_tim::CntArray;
/// use aeropack_units::Length;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let array = CntArray::aligned(Length::from_micrometers(30.0), 0.10, 0.3)?;
/// let r = array.area_resistance();
/// // Contact-dominated: single-digit K·mm²/W despite k ≈ 3000 tubes.
/// assert!(r.kelvin_mm2_per_watt() > 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CntArray {
    /// Array height (bond line), m.
    height: Length,
    /// Tube area fill fraction.
    fill_fraction: f64,
    /// Fraction of tubes making contact with the mating surface.
    contact_fraction: f64,
    /// Axial conductivity of an individual tube, W/m·K.
    tube_conductivity: f64,
    /// Per-tube end contact resistance expressed as an area resistance
    /// over the tube footprint, K·m²/W.
    end_contact_resistance: f64,
    aligned: bool,
}

impl CntArray {
    /// A vertically aligned array.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive height or fractions outside
    /// `(0, 1]`.
    pub fn aligned(
        height: Length,
        fill_fraction: f64,
        contact_fraction: f64,
    ) -> Result<Self, TimError> {
        Self::build(height, fill_fraction, contact_fraction, true)
    }

    /// A randomly oriented CNT mat: the effective axial conductivity
    /// drops by the orientation average (×1/3) and contact statistics
    /// worsen.
    ///
    /// # Errors
    ///
    /// Same as [`CntArray::aligned`].
    pub fn random_mat(
        height: Length,
        fill_fraction: f64,
        contact_fraction: f64,
    ) -> Result<Self, TimError> {
        Self::build(height, fill_fraction, contact_fraction, false)
    }

    fn build(
        height: Length,
        fill_fraction: f64,
        contact_fraction: f64,
        aligned: bool,
    ) -> Result<Self, TimError> {
        if height.value() <= 0.0 {
            return Err(TimError::invalid(
                "height",
                "must be strictly positive",
                height.value(),
            ));
        }
        for (name, v) in [
            ("fill_fraction", fill_fraction),
            ("contact_fraction", contact_fraction),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(TimError::invalid(name, "must lie in (0, 1]", v));
            }
        }
        Ok(Self {
            height,
            fill_fraction,
            contact_fraction,
            tube_conductivity: 3000.0,
            end_contact_resistance: 1.0e-7, // 0.1 K·mm²/W per touching tube end
            aligned,
        })
    }

    /// Effective through-thickness conductivity of the array layer
    /// (tube conduction only, air gaps neglected).
    pub fn effective_conductivity(&self) -> ThermalConductivity {
        let orientation = if self.aligned { 1.0 } else { 1.0 / 3.0 };
        ThermalConductivity::new(self.tube_conductivity * self.fill_fraction * orientation)
    }

    /// Total area resistance: tube bulk in series with the two end
    /// contacts, the far end carried only by touching tubes.
    pub fn area_resistance(&self) -> AreaResistance {
        let k_eff = self.effective_conductivity().value();
        let bulk = self.height.value() / k_eff;
        // Grown end: all tubes rooted (good contact). Free end: only the
        // contact fraction carries heat, each with its end resistance
        // concentrated over the *contacting tube* area.
        let grown_end = self.end_contact_resistance / self.fill_fraction;
        let free_end = self.end_contact_resistance / (self.fill_fraction * self.contact_fraction);
        AreaResistance::new(bulk + grown_end + free_end)
    }

    /// Fraction of the total resistance sitting in the contacts — the
    /// diagnostic that explains why raw CNT arrays disappoint.
    pub fn contact_dominance(&self) -> f64 {
        let total = self.area_resistance().value();
        let bulk = self.height.value() / self.effective_conductivity().value();
        1.0 - bulk / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contacts_dominate() {
        let array = CntArray::aligned(Length::from_micrometers(30.0), 0.10, 0.3).unwrap();
        assert!(
            array.contact_dominance() > 0.7,
            "CNT arrays are contact-dominated: {}",
            array.contact_dominance()
        );
    }

    #[test]
    fn aligned_beats_random() {
        let h = Length::from_micrometers(30.0);
        let aligned = CntArray::aligned(h, 0.10, 0.3).unwrap();
        let random = CntArray::random_mat(h, 0.10, 0.3).unwrap();
        assert!(aligned.area_resistance().value() < random.area_resistance().value());
        assert!(
            aligned.effective_conductivity().value()
                > 2.9 * random.effective_conductivity().value()
        );
    }

    #[test]
    fn better_contact_helps() {
        let h = Length::from_micrometers(30.0);
        let poor = CntArray::aligned(h, 0.10, 0.1).unwrap();
        let good = CntArray::aligned(h, 0.10, 0.8).unwrap();
        assert!(good.area_resistance().value() < poor.area_resistance().value());
    }

    #[test]
    fn effective_conductivity_can_exceed_composites() {
        // The promise: 10 % fill of 3000 W/mK tubes = 300 W/mK layer.
        let array = CntArray::aligned(Length::from_micrometers(30.0), 0.10, 0.3).unwrap();
        assert!(array.effective_conductivity().value() > 100.0);
    }

    #[test]
    fn invalid_inputs() {
        assert!(CntArray::aligned(Length::ZERO, 0.1, 0.3).is_err());
        assert!(CntArray::aligned(Length::from_micrometers(30.0), 0.0, 0.3).is_err());
        assert!(CntArray::aligned(Length::from_micrometers(30.0), 0.1, 1.5).is_err());
    }
}
