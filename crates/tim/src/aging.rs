//! TIM degradation over thermal cycling — the reliability argument the
//! paper's conclusion makes implicitly: greases pump out of the joint as
//! the surfaces breathe with each thermal cycle, while cured adhesives
//! (the NANOPACK route) stay put.
//!
//! The grease closure follows the observed behaviour of pump-out data:
//! resistance grows with the square root of the cycle count (material
//! leaves the gap at a rate proportional to the remaining mobile
//! fraction) toward a dry-contact asymptote.

use aeropack_units::{AreaResistance, Pressure};

use crate::error::TimError;
use crate::interface::TimJoint;

/// How a joint's material responds to thermal cycling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimAgingClass {
    /// Mobile grease/paste: pumps out of the joint with cycling.
    Grease,
    /// Cured adhesive or gel: dimensionally stable.
    CuredAdhesive,
}

/// Pump-out model for a cycled joint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimAging {
    class: TimAgingClass,
    /// Fractional resistance growth per √cycle for greases.
    pump_out_rate: f64,
    /// Cap on the growth factor (dry contact).
    max_growth: f64,
}

impl TimAging {
    /// The default closure for a mobile grease: ~1 % resistance growth
    /// per √cycle, saturating at 4× (dry voided contact).
    pub fn grease() -> Self {
        Self {
            class: TimAgingClass::Grease,
            pump_out_rate: 0.01,
            max_growth: 4.0,
        }
    }

    /// A cured adhesive: no pump-out.
    pub fn cured_adhesive() -> Self {
        Self {
            class: TimAgingClass::CuredAdhesive,
            pump_out_rate: 0.0,
            max_growth: 1.0,
        }
    }

    /// The aging class.
    pub fn class(&self) -> TimAgingClass {
        self.class
    }

    /// Resistance growth factor after `cycles` thermal cycles.
    ///
    /// # Errors
    ///
    /// Returns an error for a negative cycle count.
    pub fn growth_factor(&self, cycles: f64) -> Result<f64, TimError> {
        if cycles < 0.0 {
            return Err(TimError::InvalidArgument {
                name: "cycles",
                constraint: "cannot be negative",
                value: cycles,
            });
        }
        Ok((1.0 + self.pump_out_rate * cycles.sqrt()).min(self.max_growth))
    }

    /// The aged area resistance of a joint at an assembly pressure after
    /// `cycles` thermal cycles.
    ///
    /// # Errors
    ///
    /// Propagates joint evaluation and cycle-count errors.
    pub fn aged_resistance(
        &self,
        joint: &TimJoint,
        pressure: Pressure,
        cycles: f64,
    ) -> Result<AreaResistance, TimError> {
        let fresh = joint.area_resistance(pressure)?;
        Ok(fresh * self.growth_factor(cycles)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grease_degrades_adhesive_does_not() {
        let joint = TimJoint::conventional_grease().unwrap();
        let p = Pressure::from_kilopascals(200.0);
        let fresh = joint.area_resistance(p).unwrap();
        let grease = TimAging::grease()
            .aged_resistance(&joint, p, 5_000.0)
            .unwrap();
        let adhesive = TimAging::cured_adhesive()
            .aged_resistance(&joint, p, 5_000.0)
            .unwrap();
        assert!(grease.value() > 1.4 * fresh.value(), "grease must pump out");
        assert!((adhesive.value() - fresh.value()).abs() < 1e-15);
    }

    #[test]
    fn growth_is_monotone_and_capped() {
        let aging = TimAging::grease();
        let g1 = aging.growth_factor(100.0).unwrap();
        let g2 = aging.growth_factor(10_000.0).unwrap();
        let g3 = aging.growth_factor(1.0e9).unwrap();
        assert!(1.0 < g1 && g1 < g2);
        assert!((g3 - 4.0).abs() < 1e-12, "saturates at the dry cap");
    }

    #[test]
    fn sqrt_law_shape() {
        let aging = TimAging::grease();
        let g100 = aging.growth_factor(100.0).unwrap() - 1.0;
        let g400 = aging.growth_factor(400.0).unwrap() - 1.0;
        assert!((g400 / g100 - 2.0).abs() < 1e-9, "√4 = 2 scaling");
    }

    #[test]
    fn zero_cycles_is_fresh() {
        assert!((TimAging::grease().growth_factor(0.0).unwrap() - 1.0).abs() < 1e-15);
        assert!(TimAging::grease().growth_factor(-1.0).is_err());
    }
}
