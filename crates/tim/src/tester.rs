//! Virtual ASTM D5470 reference-bar tester.
//!
//! NANOPACK built a physical tester "according to the ASTM standard
//! D5470 (achieved accuracy ±1 K·mm²/W)" that "also measures thermal
//! interface material's thickness (with ±2 µm accuracy)". This module
//! simulates that instrument: two instrumented copper meter bars with a
//! sample squeezed between them, thermocouple readings with Gaussian
//! noise, linear extrapolation of the surface temperatures, and a
//! displacement gauge for the bond line. It exercises the same data-
//! reduction path as the real machine and reproduces its accuracy
//! figures.

use aeropack_units::{
    AreaResistance, Celsius, HeatFlux, Length, Pressure, SplitMix64, ThermalConductivity,
};

use crate::error::TimError;
use crate::interface::TimJoint;

/// One D5470 measurement: the reduced interface resistance and bond
/// line, plus the raw extrapolated surface temperatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct D5470Measurement {
    /// Measured area-specific interface resistance.
    pub area_resistance: AreaResistance,
    /// Measured bond-line thickness.
    pub bond_line: Length,
    /// Extrapolated hot-bar surface temperature.
    pub hot_surface: Celsius,
    /// Extrapolated cold-bar surface temperature.
    pub cold_surface: Celsius,
}

/// The virtual instrument.
///
/// # Examples
///
/// ```
/// use aeropack_tim::{D5470Tester, TimJoint};
/// use aeropack_units::Pressure;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tester = D5470Tester::standard()?;
/// let joint = TimJoint::nanopack_sphere_adhesive()?;
/// let m = tester.measure(&joint, Pressure::from_kilopascals(300.0), 42)?;
/// let truth = joint.area_resistance(Pressure::from_kilopascals(300.0))?;
/// let err = (m.area_resistance.kelvin_mm2_per_watt()
///     - truth.kelvin_mm2_per_watt()).abs();
/// assert!(err < 3.0); // single-shot; averaging brings this under ±1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct D5470Tester {
    bar_conductivity: ThermalConductivity,
    /// Thermocouple positions measured from the bar/sample surface, m.
    tc_positions: Vec<f64>,
    /// Applied heat flux through the stack.
    flux: HeatFlux,
    /// Cold-plate temperature at the bottom of the cold bar.
    cold_plate: Celsius,
    /// 1σ thermocouple noise, K.
    temperature_noise: f64,
    /// 1σ displacement-gauge noise, m.
    thickness_noise: f64,
}

impl D5470Tester {
    /// The standard instrument: copper bars, four thermocouples per bar
    /// at 5 mm spacing starting 5 mm from the surface, 10 W/cm² test
    /// flux, 0.05 K thermocouples and a 1 µm displacement gauge.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn standard() -> Result<Self, TimError> {
        Self::new(
            ThermalConductivity::new(391.0),
            vec![5e-3, 10e-3, 15e-3, 20e-3],
            HeatFlux::from_watts_per_square_centimeter(10.0),
            Celsius::new(25.0),
            0.05,
            1.0e-6,
        )
    }

    /// Builds a custom instrument.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two thermocouples, non-positive
    /// flux/conductivity, or negative noise levels.
    pub fn new(
        bar_conductivity: ThermalConductivity,
        tc_positions: Vec<f64>,
        flux: HeatFlux,
        cold_plate: Celsius,
        temperature_noise: f64,
        thickness_noise: f64,
    ) -> Result<Self, TimError> {
        if tc_positions.len() < 2 {
            return Err(TimError::invalid(
                "tc_positions",
                "need at least two thermocouples per bar",
                tc_positions.len() as f64,
            ));
        }
        if tc_positions.iter().any(|&p| p <= 0.0) {
            return Err(TimError::invalid(
                "tc_positions",
                "positions must be positive distances from the surface",
                0.0,
            ));
        }
        if bar_conductivity.value() <= 0.0 || flux.value() <= 0.0 {
            return Err(TimError::invalid(
                "bar/flux",
                "conductivity and flux must be positive",
                bar_conductivity.value().min(flux.value()),
            ));
        }
        if temperature_noise < 0.0 || thickness_noise < 0.0 {
            return Err(TimError::invalid(
                "noise",
                "noise levels cannot be negative",
                temperature_noise.min(thickness_noise),
            ));
        }
        Ok(Self {
            bar_conductivity,
            tc_positions,
            flux,
            cold_plate,
            temperature_noise,
            thickness_noise,
        })
    }

    /// Performs one measurement of a joint at an assembly pressure with
    /// a deterministic noise seed.
    ///
    /// # Errors
    ///
    /// Propagates joint evaluation errors.
    pub fn measure(
        &self,
        joint: &TimJoint,
        pressure: Pressure,
        seed: u64,
    ) -> Result<D5470Measurement, TimError> {
        let mut rng = SplitMix64::new(seed);
        let truth_r = joint.area_resistance(pressure)?;
        let truth_blt = joint.bond_line(pressure)?;
        let q = self.flux.value();
        let k = self.bar_conductivity.value();

        // True surface temperatures (1-D steady stack above the cold
        // plate; absolute level set by the cold bar gradient).
        let cold_surface = self.cold_plate.value() + q * self.tc_positions[0] / k; // arbitrary datum
        let hot_surface = cold_surface + q * truth_r.value();

        // Simulated thermocouple readings and linear fits.
        let gauss = |rng: &mut SplitMix64, sigma: f64| sigma * rng.gaussian();
        let mut read_bar = |surface: f64, sign: f64| {
            // sign = +1: temperatures increase away from the sample (hot
            // bar); -1: decrease (cold bar).
            let pts: Vec<(f64, f64)> = self
                .tc_positions
                .iter()
                .map(|&d| {
                    (
                        d,
                        surface + sign * q * d / k + gauss(&mut rng, self.temperature_noise),
                    )
                })
                .collect();
            // Least-squares line T(d) = a + b·d → surface estimate a.
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
            (sy - b * sx) / n
        };
        let hot_est = read_bar(hot_surface, 1.0);
        let cold_est = read_bar(cold_surface, -1.0);
        let r_meas = (hot_est - cold_est) / q;
        let blt_meas = truth_blt.value() + gauss(&mut rng, self.thickness_noise);

        Ok(D5470Measurement {
            area_resistance: AreaResistance::new(r_meas),
            bond_line: Length::new(blt_meas.max(0.0)),
            hot_surface: Celsius::new(hot_est),
            cold_surface: Celsius::new(cold_est),
        })
    }

    /// Measures a joint `n` times (different seeds derived from `seed`)
    /// and returns the mean resistance and bond line — the averaging the
    /// real instrument does to reach its rated accuracy.
    ///
    /// # Errors
    ///
    /// Propagates joint evaluation errors; errors on `n == 0`.
    pub fn measure_averaged(
        &self,
        joint: &TimJoint,
        pressure: Pressure,
        n: usize,
        seed: u64,
    ) -> Result<D5470Measurement, TimError> {
        if n == 0 {
            return Err(TimError::invalid("n", "need at least one repetition", 0.0));
        }
        let mut r_sum = 0.0;
        let mut blt_sum = 0.0;
        let mut hot = 0.0;
        let mut cold = 0.0;
        for i in 0..n {
            let m = self.measure(joint, pressure, seed.wrapping_add(i as u64))?;
            r_sum += m.area_resistance.value();
            blt_sum += m.bond_line.value();
            hot += m.hot_surface.value();
            cold += m.cold_surface.value();
        }
        let nf = n as f64;
        Ok(D5470Measurement {
            area_resistance: AreaResistance::new(r_sum / nf),
            bond_line: Length::new(blt_sum / nf),
            hot_surface: Celsius::new(hot / nf),
            cold_surface: Celsius::new(cold / nf),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaged_measurement_is_within_rated_accuracy() {
        // The NANOPACK claim: ±1 K·mm²/W resistance, ±2 µm thickness.
        let tester = D5470Tester::standard().unwrap();
        let joint = TimJoint::nanopack_flake_adhesive().unwrap();
        let p = Pressure::from_kilopascals(300.0);
        let truth_r = joint.area_resistance(p).unwrap();
        let truth_blt = joint.bond_line(p).unwrap();
        let m = tester.measure_averaged(&joint, p, 25, 7).unwrap();
        let dr = (m.area_resistance.kelvin_mm2_per_watt() - truth_r.kelvin_mm2_per_watt()).abs();
        let dblt = (m.bond_line.micrometers() - truth_blt.micrometers()).abs();
        assert!(dr < 1.0, "resistance error {dr} K·mm²/W");
        assert!(dblt < 2.0, "thickness error {dblt} µm");
    }

    #[test]
    fn single_shots_scatter_more_than_averages() {
        let tester = D5470Tester::standard().unwrap();
        let joint = TimJoint::conventional_grease().unwrap();
        let p = Pressure::from_kilopascals(200.0);
        let truth = joint.area_resistance(p).unwrap().kelvin_mm2_per_watt();
        let spread_single: f64 = (0..20)
            .map(|s| {
                (tester
                    .measure(&joint, p, s)
                    .unwrap()
                    .area_resistance
                    .kelvin_mm2_per_watt()
                    - truth)
                    .powi(2)
            })
            .sum::<f64>()
            .sqrt();
        let spread_avg: f64 = (0..20)
            .map(|s| {
                (tester
                    .measure_averaged(&joint, p, 16, 1000 + s * 100)
                    .unwrap()
                    .area_resistance
                    .kelvin_mm2_per_watt()
                    - truth)
                    .powi(2)
            })
            .sum::<f64>()
            .sqrt();
        assert!(
            spread_avg < 0.6 * spread_single,
            "averaging must reduce scatter: {spread_avg} vs {spread_single}"
        );
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let tester = D5470Tester::standard().unwrap();
        let joint = TimJoint::nanopack_sphere_adhesive().unwrap();
        let p = Pressure::from_kilopascals(300.0);
        let a = tester.measure(&joint, p, 99).unwrap();
        let b = tester.measure(&joint, p, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hot_surface_is_above_cold() {
        let tester = D5470Tester::standard().unwrap();
        let joint = TimJoint::conventional_grease().unwrap();
        let m = tester
            .measure(&joint, Pressure::from_kilopascals(100.0), 3)
            .unwrap();
        assert!(m.hot_surface > m.cold_surface);
    }

    #[test]
    fn pressure_sweep_reproduces_blt_curve() {
        // Sweeping pressure on the virtual tester recovers the squeeze
        // curve within gauge noise.
        let tester = D5470Tester::standard().unwrap();
        let joint = TimJoint::nanopack_flake_adhesive().unwrap();
        let mut last = f64::INFINITY;
        for (i, kpa) in [50.0, 150.0, 400.0, 1000.0].iter().enumerate() {
            let p = Pressure::from_kilopascals(*kpa);
            let m = tester
                .measure_averaged(&joint, p, 9, 40 + i as u64)
                .unwrap();
            assert!(
                m.bond_line.micrometers() < last + 0.5,
                "BLT must fall with pressure"
            );
            last = m.bond_line.micrometers();
        }
    }

    #[test]
    fn invalid_instruments_rejected() {
        assert!(D5470Tester::new(
            ThermalConductivity::new(391.0),
            vec![5e-3],
            HeatFlux::from_watts_per_square_centimeter(10.0),
            Celsius::new(25.0),
            0.05,
            1e-6,
        )
        .is_err());
        assert!(D5470Tester::new(
            ThermalConductivity::new(391.0),
            vec![5e-3, -1e-3],
            HeatFlux::from_watts_per_square_centimeter(10.0),
            Celsius::new(25.0),
            0.05,
            1e-6,
        )
        .is_err());
        let t = D5470Tester::standard().unwrap();
        let joint = TimJoint::conventional_grease().unwrap();
        assert!(t
            .measure_averaged(&joint, Pressure::from_kilopascals(100.0), 0, 1)
            .is_err());
    }
}
