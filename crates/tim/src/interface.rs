//! The TIM joint model: bond-line thickness under pressure, contact
//! resistance, and the total area-specific interface resistance —
//! the quantity NANOPACK targets at "< 5 K·mm²/W with bond line
//! thickness lower than 20 µm".

use aeropack_units::{AreaResistance, Length, Pressure, ThermalConductivity};

use crate::error::TimError;
use crate::hnc::HncSurface;

/// A thermal-interface joint: a TIM of given bulk conductivity squeezed
/// between two surfaces of given roughness.
///
/// The bond-line thickness follows a squeeze-flow closure
/// `BLT(P) = BLT_min + (BLT₀ − BLT_min)·P_ref/(P_ref + P)`: unbounded
/// thinning is prevented by the filler particle size (`BLT_min`), and
/// the thinning rate is set by the paste rheology through `P_ref`.
///
/// # Examples
///
/// ```
/// use aeropack_tim::TimJoint;
/// use aeropack_units::{Length, Pressure, ThermalConductivity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let joint = TimJoint::new(
///     ThermalConductivity::new(6.0),       // NANOPACK flake adhesive
///     Length::from_micrometers(60.0),      // unloaded bond line
///     Length::from_micrometers(12.0),      // largest filler
///     Pressure::from_kilopascals(100.0),   // rheology reference
///     Length::from_micrometers(0.5),       // surface roughness (each side)
/// )?;
/// let r = joint.area_resistance(Pressure::from_kilopascals(300.0))?;
/// assert!(r.kelvin_mm2_per_watt() < 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimJoint {
    bulk_conductivity: ThermalConductivity,
    blt_zero: Length,
    blt_min: Length,
    pressure_ref: Pressure,
    roughness: Length,
}

impl TimJoint {
    /// Builds a joint model.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive conductivity/pressures or an
    /// inconsistent thickness pair (`blt_min > blt_zero`).
    pub fn new(
        bulk_conductivity: ThermalConductivity,
        blt_zero: Length,
        blt_min: Length,
        pressure_ref: Pressure,
        roughness: Length,
    ) -> Result<Self, TimError> {
        if bulk_conductivity.value() <= 0.0 {
            return Err(TimError::invalid(
                "bulk_conductivity",
                "must be strictly positive",
                bulk_conductivity.value(),
            ));
        }
        if blt_zero.value() <= 0.0 || blt_min.value() <= 0.0 {
            return Err(TimError::invalid(
                "blt",
                "thicknesses must be strictly positive",
                blt_zero.value().min(blt_min.value()),
            ));
        }
        if blt_min.value() > blt_zero.value() {
            return Err(TimError::invalid(
                "blt_min",
                "cannot exceed the unloaded bond line",
                blt_min.value(),
            ));
        }
        if pressure_ref.value() <= 0.0 {
            return Err(TimError::invalid(
                "pressure_ref",
                "must be strictly positive",
                pressure_ref.value(),
            ));
        }
        if roughness.value() < 0.0 {
            return Err(TimError::invalid(
                "roughness",
                "cannot be negative",
                roughness.value(),
            ));
        }
        Ok(Self {
            bulk_conductivity,
            blt_zero,
            blt_min,
            pressure_ref,
            roughness,
        })
    }

    /// A conventional silicone thermal grease (k ≈ 0.8 W/m·K) — the
    /// state of practice NANOPACK set out to beat.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn conventional_grease() -> Result<Self, TimError> {
        Self::new(
            ThermalConductivity::new(0.8),
            Length::from_micrometers(80.0),
            Length::from_micrometers(25.0),
            Pressure::from_kilopascals(80.0),
            Length::from_micrometers(0.5),
        )
    }

    /// The NANOPACK silver-flake adhesive at 6 W/m·K with fine filler.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn nanopack_flake_adhesive() -> Result<Self, TimError> {
        Self::new(
            ThermalConductivity::new(6.0),
            Length::from_micrometers(60.0),
            Length::from_micrometers(12.0),
            Pressure::from_kilopascals(100.0),
            Length::from_micrometers(0.4),
        )
    }

    /// The NANOPACK micro-sphere adhesive at 9.5 W/m·K.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn nanopack_sphere_adhesive() -> Result<Self, TimError> {
        Self::new(
            ThermalConductivity::new(9.5),
            Length::from_micrometers(70.0),
            Length::from_micrometers(15.0),
            Pressure::from_kilopascals(120.0),
            Length::from_micrometers(0.4),
        )
    }

    /// Bond-line thickness at an assembly pressure.
    ///
    /// # Errors
    ///
    /// Returns an error for a negative pressure.
    pub fn bond_line(&self, pressure: Pressure) -> Result<Length, TimError> {
        if pressure.value() < 0.0 {
            return Err(TimError::invalid(
                "pressure",
                "cannot be negative",
                pressure.value(),
            ));
        }
        let p_ref = self.pressure_ref.value();
        let span = self.blt_zero.value() - self.blt_min.value();
        Ok(Length::new(
            self.blt_min.value() + span * p_ref / (p_ref + pressure.value()),
        ))
    }

    /// Contact resistance of *one* surface: the unfilled roughness layer
    /// conducts through the TIM at reduced (half) efficiency.
    pub fn contact_resistance(&self) -> AreaResistance {
        AreaResistance::new(self.roughness.value() / (0.5 * self.bulk_conductivity.value()))
    }

    /// Total area-specific resistance at pressure:
    /// `R = BLT/k + 2·R_contact`.
    ///
    /// # Errors
    ///
    /// Returns an error for a negative pressure.
    pub fn area_resistance(&self, pressure: Pressure) -> Result<AreaResistance, TimError> {
        let blt = self.bond_line(pressure)?;
        let bulk = AreaResistance::new(blt.value() / self.bulk_conductivity.value());
        Ok(bulk + self.contact_resistance() + self.contact_resistance())
    }

    /// The joint with a hierarchical-nested-channel surface applied to
    /// one side: the channels shorten the squeeze-flow escape path,
    /// reducing the achieved bond line.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid pressure.
    pub fn area_resistance_with_hnc(
        &self,
        pressure: Pressure,
        hnc: &HncSurface,
        contact_half_width: Length,
    ) -> Result<(AreaResistance, Length), TimError> {
        let blt_flat = self.bond_line(pressure)?;
        let blt = hnc.reduced_bond_line(blt_flat, contact_half_width)?;
        let blt = blt.max(self.blt_min);
        let bulk = AreaResistance::new(blt.value() / self.bulk_conductivity.value());
        let r = bulk + self.contact_resistance() + self.contact_resistance();
        Ok((r, blt))
    }

    /// Bulk conductivity of the TIM.
    pub fn bulk_conductivity(&self) -> ThermalConductivity {
        self.bulk_conductivity
    }

    /// Minimum (filler-limited) bond line.
    pub fn blt_min(&self) -> Length {
        self.blt_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blt_decreases_with_pressure_to_floor() {
        let joint = TimJoint::nanopack_flake_adhesive().unwrap();
        let b0 = joint.bond_line(Pressure::ZERO).unwrap();
        let b1 = joint.bond_line(Pressure::from_kilopascals(100.0)).unwrap();
        let b2 = joint.bond_line(Pressure::from_kilopascals(1000.0)).unwrap();
        assert!(b1.value() < b0.value());
        assert!(b2.value() < b1.value());
        assert!(b2.value() >= joint.blt_min().value());
        // At the reference pressure the excess thickness has halved.
        assert!(
            (b1.micrometers() - (12.0 + (60.0 - 12.0) * 0.5)).abs() < 1e-9,
            "{b1}"
        );
    }

    #[test]
    fn nanopack_adhesives_beat_grease() {
        let p = Pressure::from_kilopascals(300.0);
        let grease = TimJoint::conventional_grease()
            .unwrap()
            .area_resistance(p)
            .unwrap();
        let flake = TimJoint::nanopack_flake_adhesive()
            .unwrap()
            .area_resistance(p)
            .unwrap();
        let sphere = TimJoint::nanopack_sphere_adhesive()
            .unwrap()
            .area_resistance(p)
            .unwrap();
        assert!(flake.kelvin_mm2_per_watt() < 0.3 * grease.kelvin_mm2_per_watt());
        assert!(sphere.kelvin_mm2_per_watt() < flake.kelvin_mm2_per_watt() * 1.2);
    }

    #[test]
    fn nanopack_target_is_met_at_assembly_pressure() {
        // < 5 K·mm²/W with BLT < 20 µm.
        let joint = TimJoint::nanopack_sphere_adhesive().unwrap();
        let p = Pressure::from_kilopascals(500.0);
        let blt = joint.bond_line(p).unwrap();
        let r = joint.area_resistance(p).unwrap();
        assert!(blt.micrometers() < 30.0, "BLT = {blt}");
        assert!(
            r.kelvin_mm2_per_watt() < 5.0,
            "R = {} K·mm²/W",
            r.kelvin_mm2_per_watt()
        );
    }

    #[test]
    fn resistance_decomposition_is_consistent() {
        let joint = TimJoint::nanopack_flake_adhesive().unwrap();
        let p = Pressure::from_kilopascals(200.0);
        let blt = joint.bond_line(p).unwrap();
        let r = joint.area_resistance(p).unwrap();
        let bulk = blt.value() / joint.bulk_conductivity().value();
        let contact = 2.0 * joint.contact_resistance().value();
        assert!((r.value() - bulk - contact).abs() < 1e-15);
    }

    #[test]
    fn invalid_construction() {
        assert!(TimJoint::new(
            ThermalConductivity::ZERO,
            Length::from_micrometers(50.0),
            Length::from_micrometers(10.0),
            Pressure::from_kilopascals(100.0),
            Length::from_micrometers(0.5),
        )
        .is_err());
        // blt_min above blt_zero.
        assert!(TimJoint::new(
            ThermalConductivity::new(5.0),
            Length::from_micrometers(10.0),
            Length::from_micrometers(50.0),
            Pressure::from_kilopascals(100.0),
            Length::from_micrometers(0.5),
        )
        .is_err());
        let joint = TimJoint::conventional_grease().unwrap();
        assert!(joint.bond_line(Pressure::new(-1.0)).is_err());
    }
}
