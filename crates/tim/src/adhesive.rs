//! Electrically conductive adhesives — the full NANOPACK materials
//! story. The paper reports that the silver-filled epoxies are not only
//! thermal successes but "electrically conductive (10⁻⁴ Ω·cm)" with a
//! shear strength of 14 MPa "which is also remarkable and suggests
//! excellent mechanical and reliability properties".
//!
//! Electrical conduction in a filled adhesive is percolative: below the
//! threshold the epoxy insulates (~10¹⁴ Ω·cm); above it a silver network
//! carries current with a power-law approach to a contact-limited floor.
//! Shear strength falls with loading (filler replaces load-bearing
//! matrix) from the neat-resin value.

use aeropack_units::{Stress, ThermalConductivity};

use crate::effective_medium::{lewis_nielsen, FillerShape};
use crate::error::TimError;

/// Electrical resistivity floor of a well-percolated silver-flake
/// network, Ω·cm (contact-limited; bulk silver is 1.6×10⁻⁶).
const RHO_FLOOR_OHM_CM: f64 = 5.0e-5;
/// Neat epoxy resistivity, Ω·cm.
const RHO_MATRIX_OHM_CM: f64 = 1.0e14;
/// Electrical percolation threshold for flakes (lower than spheres
/// because of their aspect ratio).
const PHI_C_FLAKE: f64 = 0.18;
/// Electrical percolation threshold for spheres.
const PHI_C_SPHERE: f64 = 0.28;
/// Neat epoxy lap-shear strength, MPa.
const SHEAR_NEAT_MPA: f64 = 22.0;

/// A silver-filled electrically/thermally conductive adhesive.
///
/// # Examples
///
/// ```
/// use aeropack_tim::{ConductiveAdhesive, FillerShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The NANOPACK flake formulation at 47 vol%.
/// let adhesive = ConductiveAdhesive::new(0.47, FillerShape::Flake)?;
/// assert!(adhesive.is_electrically_conductive());
/// assert!(adhesive.shear_strength().megapascals() > 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductiveAdhesive {
    loading: f64,
    shape: FillerShape,
}

impl ConductiveAdhesive {
    /// Builds an adhesive description from the silver volume loading.
    ///
    /// # Errors
    ///
    /// Returns an error for a loading outside `[0, 1)` or beyond the
    /// shape's packing limit.
    pub fn new(loading: f64, shape: FillerShape) -> Result<Self, TimError> {
        if !(0.0..1.0).contains(&loading) {
            return Err(TimError::InvalidArgument {
                name: "loading",
                constraint: "must lie in [0, 1)",
                value: loading,
            });
        }
        if loading >= shape.max_packing() {
            return Err(TimError::InvalidArgument {
                name: "loading",
                constraint: "must stay below the shape's maximum packing",
                value: loading,
            });
        }
        Ok(Self { loading, shape })
    }

    /// The silver volume loading.
    pub fn loading(&self) -> f64 {
        self.loading
    }

    /// Electrical percolation threshold for this filler shape.
    pub fn percolation_threshold(&self) -> f64 {
        match self.shape {
            FillerShape::Flake => PHI_C_FLAKE,
            FillerShape::Sphere => PHI_C_SPHERE,
            FillerShape::Fiber => 0.12,
        }
    }

    /// Electrical volume resistivity, Ω·cm: percolation power law above
    /// threshold (`t = 2`), insulating below.
    pub fn electrical_resistivity_ohm_cm(&self) -> f64 {
        let phi_c = self.percolation_threshold();
        if self.loading <= phi_c {
            return RHO_MATRIX_OHM_CM;
        }
        let x = (self.loading - phi_c) / (1.0 - phi_c);
        // ρ = ρ_floor · x^(−2), capped at the matrix value.
        (RHO_FLOOR_OHM_CM * x.powf(-2.0)).min(RHO_MATRIX_OHM_CM)
    }

    /// Whether the adhesive conducts electrically (ρ below 1 Ω·cm —
    /// orders of magnitude under any antistatic threshold).
    pub fn is_electrically_conductive(&self) -> bool {
        self.electrical_resistivity_ohm_cm() < 1.0
    }

    /// Lap-shear strength: filler dilutes the load-bearing matrix
    /// roughly as `σ = σ_neat·(1 − φ)^(2/3)` (area-fraction rule).
    pub fn shear_strength(&self) -> Stress {
        Stress::from_megapascals(SHEAR_NEAT_MPA * (1.0 - self.loading).powf(2.0 / 3.0))
    }

    /// Thermal conductivity via the Lewis–Nielsen model with silver
    /// filler in epoxy.
    ///
    /// # Errors
    ///
    /// Propagates effective-medium model errors.
    pub fn thermal_conductivity(&self) -> Result<ThermalConductivity, TimError> {
        lewis_nielsen(
            aeropack_materials::Material::epoxy().thermal_conductivity,
            aeropack_materials::Material::silver().thermal_conductivity,
            self.loading,
            self.shape,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanopack_flake_formulation_matches_the_table() {
        // 47 vol% flakes: ~6 W/m·K thermal, ~10⁻⁴ Ω·cm electrical,
        // ≥ 14 MPa shear — the three numbers in the paper's results list.
        let a = ConductiveAdhesive::new(0.47, FillerShape::Flake).unwrap();
        let k = a.thermal_conductivity().unwrap().value();
        assert!((5.0..8.0).contains(&k), "k = {k}");
        let rho = a.electrical_resistivity_ohm_cm();
        assert!(
            (1.0e-5..1.0e-3).contains(&rho),
            "ρ = {rho:.2e} Ω·cm (paper: ~10⁻⁴)"
        );
        let shear = a.shear_strength().megapascals();
        assert!(
            (12.0..18.0).contains(&shear),
            "shear = {shear} MPa (paper: 14)"
        );
    }

    #[test]
    fn below_threshold_is_an_insulator() {
        let a = ConductiveAdhesive::new(0.10, FillerShape::Flake).unwrap();
        assert!(!a.is_electrically_conductive());
        assert!(a.electrical_resistivity_ohm_cm() > 1.0e10);
    }

    #[test]
    fn resistivity_monotone_above_threshold() {
        let rho = |phi: f64| {
            ConductiveAdhesive::new(phi, FillerShape::Flake)
                .unwrap()
                .electrical_resistivity_ohm_cm()
        };
        assert!(rho(0.25) > rho(0.35));
        assert!(rho(0.35) > rho(0.45));
    }

    #[test]
    fn flakes_percolate_before_spheres() {
        let flake = ConductiveAdhesive::new(0.22, FillerShape::Flake).unwrap();
        let sphere = ConductiveAdhesive::new(0.22, FillerShape::Sphere).unwrap();
        assert!(flake.is_electrically_conductive());
        assert!(!sphere.is_electrically_conductive());
    }

    #[test]
    fn shear_strength_falls_with_loading() {
        let lo = ConductiveAdhesive::new(0.2, FillerShape::Flake).unwrap();
        let hi = ConductiveAdhesive::new(0.45, FillerShape::Flake).unwrap();
        assert!(hi.shear_strength().value() < lo.shear_strength().value());
        // Neat resin at zero loading.
        let neat = ConductiveAdhesive::new(0.0, FillerShape::Flake).unwrap();
        assert!((neat.shear_strength().megapascals() - SHEAR_NEAT_MPA).abs() < 1e-9);
    }

    #[test]
    fn invalid_loadings_rejected() {
        assert!(ConductiveAdhesive::new(-0.1, FillerShape::Flake).is_err());
        assert!(ConductiveAdhesive::new(0.55, FillerShape::Flake).is_err());
    }
}
