//! Thermal interface materials — the NANOPACK half of the paper.
//!
//! "One of the bottlenecks of the thermal path is thermal interface
//! resistance": this crate models the materials NANOPACK developed and
//! the instrument it measured them with:
//!
//! * Effective-medium models ([`maxwell_garnett`], [`bruggeman`],
//!   [`lewis_nielsen`], [`percolation`], rigorous [`wiener_bounds`] /
//!   [`hashin_shtrikman_bounds`]) — how silver flakes, micro-spheres
//!   and percolating metal networks turn a 0.2 W/m·K epoxy into 6, 9.5
//!   and 20 W/m·K composites.
//! * [`TimJoint`] — bond-line-vs-pressure squeeze closure, contact
//!   resistance, and the total interface resistance against the
//!   "< 5 K·mm²/W at < 20 µm" target.
//! * [`HncSurface`] — the hierarchical nested channel surfaces that cut
//!   the achieved bond line by > 20 % on cm² pads.
//! * [`CntArray`] — carbon-nanotube array interfaces and their contact-
//!   dominated reality.
//! * [`D5470Tester`] — a virtual ASTM D5470 reference-bar instrument
//!   with realistic noise, reproducing the ±1 K·mm²/W / ±2 µm rating.
//!
//! # Example
//!
//! ```
//! use aeropack_tim::{lewis_nielsen, FillerShape};
//! use aeropack_materials::Material;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let k = lewis_nielsen(
//!     Material::epoxy().thermal_conductivity,
//!     Material::silver().thermal_conductivity,
//!     0.45,
//!     FillerShape::Flake,
//! )?;
//! assert!(k.value() > 3.0); // silver flakes transform the epoxy
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adhesive;
mod aging;
mod cnt;
mod effective_medium;
mod error;
mod hnc;
mod interface;
mod tester;

pub use adhesive::ConductiveAdhesive;
pub use aging::{TimAging, TimAgingClass};
pub use cnt::CntArray;
pub use effective_medium::{
    bruggeman, hashin_shtrikman_bounds, lewis_nielsen, loading_for_target, maxwell_garnett,
    percolation, wiener_bounds, FillerShape,
};
pub use error::TimError;
pub use hnc::HncSurface;
pub use interface::TimJoint;
pub use tester::{D5470Measurement, D5470Tester};
