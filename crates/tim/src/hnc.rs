//! Hierarchical nested channels (HNC) — the NANOPACK micro-machined
//! surface-modification technique that "reduces the final bond line
//! thickness by > 20 % for the majority of TIMs on cm² interfaces".
//!
//! Physics of the closure: during assembly the paste must squeeze out to
//! the nearest free edge. On a flat cm-scale interface that flow length
//! is the contact half-width; machining a channel grid shortens it to
//! half the channel pitch. In Hele–Shaw squeeze flow the residual film
//! thickness at a fixed press-time and pressure scales with a weak power
//! of the escape length, which we take as `BLT ∝ L^(1/3)` (the
//! constant-force Stefan solution exponent for a film squeezed over
//! length L).

use aeropack_units::Length;

use crate::error::TimError;

/// A micro-machined hierarchical channel grid on one joint surface.
///
/// # Examples
///
/// ```
/// use aeropack_tim::HncSurface;
/// use aeropack_units::Length;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hnc = HncSurface::new(
///     Length::from_millimeters(1.0),   // channel pitch
///     Length::from_micrometers(100.0), // channel width
///     Length::from_micrometers(60.0),  // channel depth
/// )?;
/// // On a 1 cm² pad (5 mm half-width) the bond line drops > 20 %.
/// let flat = Length::from_micrometers(40.0);
/// let reduced = hnc.reduced_bond_line(flat, Length::from_millimeters(5.0))?;
/// assert!(reduced.value() < 0.8 * flat.value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HncSurface {
    pitch: Length,
    width: Length,
    depth: Length,
}

impl HncSurface {
    /// Builds a channel grid description.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive dimensions or a width at or
    /// above the pitch.
    pub fn new(pitch: Length, width: Length, depth: Length) -> Result<Self, TimError> {
        if pitch.value() <= 0.0 || width.value() <= 0.0 || depth.value() <= 0.0 {
            return Err(TimError::invalid(
                "hnc",
                "pitch, width and depth must be positive",
                pitch.value().min(width.value()).min(depth.value()),
            ));
        }
        if width.value() >= pitch.value() {
            return Err(TimError::invalid(
                "width",
                "channel width must be smaller than the pitch",
                width.value(),
            ));
        }
        Ok(Self {
            pitch,
            width,
            depth,
        })
    }

    /// The NANOPACK demonstrator geometry: 1 mm pitch, 100 µm channels.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn nanopack_demo() -> Result<Self, TimError> {
        Self::new(
            Length::from_millimeters(1.0),
            Length::from_micrometers(100.0),
            Length::from_micrometers(60.0),
        )
    }

    /// Fraction of the surface cut away by channels (lost contact area).
    pub fn channel_coverage(&self) -> f64 {
        // A square grid of channels in both directions.
        let f = self.width.value() / self.pitch.value();
        f + f - f * f
    }

    /// The bond line achieved with this surface, given the flat-surface
    /// bond line and the contact half-width the paste would otherwise
    /// escape across: `BLT_hnc = BLT_flat · (p/2 / L)^(1/3)`, never
    /// larger than the flat value.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive inputs.
    pub fn reduced_bond_line(
        &self,
        flat_bond_line: Length,
        contact_half_width: Length,
    ) -> Result<Length, TimError> {
        if flat_bond_line.value() <= 0.0 {
            return Err(TimError::invalid(
                "flat_bond_line",
                "must be positive",
                flat_bond_line.value(),
            ));
        }
        if contact_half_width.value() <= 0.0 {
            return Err(TimError::invalid(
                "contact_half_width",
                "must be positive",
                contact_half_width.value(),
            ));
        }
        let escape_flat = contact_half_width.value();
        let escape_hnc = 0.5 * self.pitch.value();
        let ratio = (escape_hnc / escape_flat).powf(1.0 / 3.0).min(1.0);
        Ok(Length::new(flat_bond_line.value() * ratio))
    }

    /// Relative BLT reduction on a pad of the given half-width
    /// (0.22 = 22 % thinner bond line).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive half-width.
    pub fn reduction(&self, contact_half_width: Length) -> Result<f64, TimError> {
        let flat = Length::from_micrometers(100.0);
        let reduced = self.reduced_bond_line(flat, contact_half_width)?;
        Ok(1.0 - reduced.value() / flat.value())
    }

    /// Channel pitch.
    pub fn pitch(&self) -> Length {
        self.pitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanopack_claim_20_percent_on_cm2() {
        // The headline NANOPACK result: > 20 % BLT reduction on cm²
        // interfaces.
        let hnc = HncSurface::nanopack_demo().unwrap();
        let reduction = hnc.reduction(Length::from_millimeters(5.0)).unwrap();
        assert!(
            reduction > 0.20,
            "cm²-pad reduction = {:.0}%",
            reduction * 100.0
        );
        assert!(reduction < 0.70, "reduction should stay physical");
    }

    #[test]
    fn small_pads_gain_little() {
        // If the pad is already channel-pitch sized, channels cannot
        // shorten the escape path.
        let hnc = HncSurface::nanopack_demo().unwrap();
        let r_small = hnc.reduction(Length::from_micrometers(600.0)).unwrap();
        assert!(r_small < 0.10, "small pad reduction {r_small}");
    }

    #[test]
    fn larger_pads_gain_more() {
        let hnc = HncSurface::nanopack_demo().unwrap();
        let r1 = hnc.reduction(Length::from_millimeters(3.0)).unwrap();
        let r2 = hnc.reduction(Length::from_millimeters(10.0)).unwrap();
        assert!(r2 > r1);
    }

    #[test]
    fn coverage_is_modest() {
        // 100 µm channels at 1 mm pitch cost < 20 % of the contact area.
        let hnc = HncSurface::nanopack_demo().unwrap();
        let c = hnc.channel_coverage();
        assert!(c > 0.05 && c < 0.25, "coverage {c}");
    }

    #[test]
    fn never_thickens_the_bond_line() {
        let hnc = HncSurface::nanopack_demo().unwrap();
        let flat = Length::from_micrometers(50.0);
        // Even on a pad smaller than the pitch, the ratio clamps at 1.
        let b = hnc
            .reduced_bond_line(flat, Length::from_micrometers(100.0))
            .unwrap();
        assert!(b.value() <= flat.value() + 1e-18);
    }

    #[test]
    fn invalid_geometry() {
        assert!(HncSurface::new(
            Length::from_micrometers(100.0),
            Length::from_micrometers(100.0),
            Length::from_micrometers(50.0)
        )
        .is_err());
        assert!(HncSurface::new(
            Length::ZERO,
            Length::from_micrometers(10.0),
            Length::from_micrometers(50.0)
        )
        .is_err());
    }
}
