//! Effective-medium models for filled thermal interface materials —
//! the physics behind the NANOPACK adhesive results (6 and 9.5 W/m·K
//! silver-filled epoxies, 20 W/m·K metal–polymer composite).

use aeropack_units::ThermalConductivity;

use crate::error::TimError;

/// Filler particle geometry for the Lewis–Nielsen model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FillerShape {
    /// Near-spherical particles (micro silver spheres): shape factor
    /// A = 1.5, random-close-pack limit φₘ = 0.637.
    Sphere,
    /// Platelet/flake fillers (silver flakes): higher shape factor,
    /// lower packing limit.
    Flake,
    /// Short fibres / rods.
    Fiber,
}

impl FillerShape {
    /// Lewis–Nielsen generalised Einstein coefficient A.
    pub fn shape_factor(self) -> f64 {
        match self {
            Self::Sphere => 1.5,
            Self::Flake => 7.0,
            Self::Fiber => 4.9,
        }
    }

    /// Maximum packing fraction φₘ.
    pub fn max_packing(self) -> f64 {
        match self {
            Self::Sphere => 0.637,
            Self::Flake => 0.52,
            Self::Fiber => 0.52,
        }
    }
}

fn check_fraction(phi: f64) -> Result<(), TimError> {
    if !(0.0..1.0).contains(&phi) {
        return Err(TimError::invalid(
            "volume_fraction",
            "must lie in [0, 1)",
            phi,
        ));
    }
    Ok(())
}

fn check_conductivities(k_matrix: f64, k_filler: f64) -> Result<(), TimError> {
    if k_matrix <= 0.0 {
        return Err(TimError::invalid(
            "k_matrix",
            "must be strictly positive",
            k_matrix,
        ));
    }
    if k_filler <= 0.0 {
        return Err(TimError::invalid(
            "k_filler",
            "must be strictly positive",
            k_filler,
        ));
    }
    Ok(())
}

/// Maxwell–Garnett effective conductivity for a dilute suspension of
/// spheres. Accurate below ~25 % loading.
///
/// # Errors
///
/// Returns an error for non-positive conductivities or a fraction
/// outside `[0, 1)`.
pub fn maxwell_garnett(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
) -> Result<ThermalConductivity, TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    let km = k_matrix.value();
    let kf = k_filler.value();
    let beta = (kf - km) / (kf + 2.0 * km);
    Ok(ThermalConductivity::new(
        km * (1.0 + 2.0 * beta * volume_fraction) / (1.0 - beta * volume_fraction),
    ))
}

/// Bruggeman symmetric effective-medium conductivity (self-consistent),
/// valid through the percolation region for sphere-like constituents.
///
/// # Errors
///
/// Returns an error for invalid inputs.
pub fn bruggeman(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
) -> Result<ThermalConductivity, TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    let km = k_matrix.value();
    let kf = k_filler.value();
    let phi = volume_fraction;
    // Solve φ(kf−ke)/(kf+2ke) + (1−φ)(km−ke)/(km+2ke) = 0 by bisection
    // between the Wiener bounds.
    let (mut lo, mut hi) = wiener_bounds_raw(km, kf, phi);
    let f = |ke: f64| phi * (kf - ke) / (kf + 2.0 * ke) + (1.0 - phi) * (km - ke) / (km + 2.0 * ke);
    // The function is positive at the lower bound, negative at the upper.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(ThermalConductivity::new(0.5 * (lo + hi)))
}

/// Lewis–Nielsen model — the workhorse for highly filled adhesives,
/// capturing both particle shape and the divergence near maximum
/// packing.
///
/// # Errors
///
/// Returns an error for invalid inputs or a loading at/above the shape's
/// maximum packing fraction.
pub fn lewis_nielsen(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
    shape: FillerShape,
) -> Result<ThermalConductivity, TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    let phi_m = shape.max_packing();
    if volume_fraction >= phi_m {
        return Err(TimError::invalid(
            "volume_fraction",
            "must stay below the shape's maximum packing fraction",
            volume_fraction,
        ));
    }
    let km = k_matrix.value();
    let kf = k_filler.value();
    let a = shape.shape_factor();
    let ratio = kf / km;
    let b = (ratio - 1.0) / (ratio + a);
    let psi = 1.0 + volume_fraction * (1.0 - phi_m) / (phi_m * phi_m);
    let denom = 1.0 - b * psi * volume_fraction;
    if denom <= 0.0 {
        return Err(TimError::invalid(
            "volume_fraction",
            "Lewis-Nielsen diverges at this loading (beyond validity)",
            volume_fraction,
        ));
    }
    Ok(ThermalConductivity::new(
        km * (1.0 + a * b * volume_fraction) / denom,
    ))
}

/// Percolation power-law for composites with a connected metallic
/// network above the threshold (the NANOPACK "specific process"
/// metal–polymer composite): `k = k_m + (k_f − k_m)·((φ−φ_c)/(1−φ_c))^t`
/// for `φ > φ_c`, matrix-dominated below.
///
/// # Errors
///
/// Returns an error for invalid inputs.
pub fn percolation(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
    threshold: f64,
    exponent: f64,
) -> Result<ThermalConductivity, TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    if !(0.0..1.0).contains(&threshold) {
        return Err(TimError::invalid(
            "threshold",
            "must lie in [0, 1)",
            threshold,
        ));
    }
    if exponent <= 0.0 {
        return Err(TimError::invalid("exponent", "must be positive", exponent));
    }
    let km = k_matrix.value();
    let kf = k_filler.value();
    if volume_fraction <= threshold {
        // Below threshold: fall back to Maxwell-Garnett behaviour.
        return maxwell_garnett(k_matrix, k_filler, volume_fraction);
    }
    let x = (volume_fraction - threshold) / (1.0 - threshold);
    Ok(ThermalConductivity::new(km + (kf - km) * x.powf(exponent)))
}

fn wiener_bounds_raw(km: f64, kf: f64, phi: f64) -> (f64, f64) {
    let series = 1.0 / (phi / kf + (1.0 - phi) / km);
    let parallel = phi * kf + (1.0 - phi) * km;
    (series.min(parallel), series.max(parallel))
}

/// Wiener (series/parallel) bounds — the loosest rigorous bounds any
/// two-phase effective conductivity must respect.
///
/// # Errors
///
/// Returns an error for invalid inputs.
pub fn wiener_bounds(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
) -> Result<(ThermalConductivity, ThermalConductivity), TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    let (lo, hi) = wiener_bounds_raw(k_matrix.value(), k_filler.value(), volume_fraction);
    Ok((ThermalConductivity::new(lo), ThermalConductivity::new(hi)))
}

/// Hashin–Shtrikman bounds for statistically isotropic two-phase media —
/// tighter than Wiener.
///
/// # Errors
///
/// Returns an error for invalid inputs.
pub fn hashin_shtrikman_bounds(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    volume_fraction: f64,
) -> Result<(ThermalConductivity, ThermalConductivity), TimError> {
    check_fraction(volume_fraction)?;
    check_conductivities(k_matrix.value(), k_filler.value())?;
    let (k1, k2) = (k_matrix.value(), k_filler.value());
    let (phi1, phi2) = (1.0 - volume_fraction, volume_fraction);
    // Lower: matrix-continuous; upper: filler-continuous.
    let lower = k1 + phi2 / (1.0 / (k2 - k1) + phi1 / (3.0 * k1));
    let upper = k2 + phi1 / (1.0 / (k1 - k2) + phi2 / (3.0 * k2));
    Ok((
        ThermalConductivity::new(lower.min(upper)),
        ThermalConductivity::new(lower.max(upper)),
    ))
}

/// Finds the filler loading that hits a target conductivity with the
/// Lewis–Nielsen model, by bisection.
///
/// # Errors
///
/// Returns [`TimError::TargetUnreachable`] when even 99.5 % of the
/// packing limit stays below the target.
pub fn loading_for_target(
    k_matrix: ThermalConductivity,
    k_filler: ThermalConductivity,
    target: ThermalConductivity,
    shape: FillerShape,
) -> Result<f64, TimError> {
    check_conductivities(k_matrix.value(), k_filler.value())?;
    if target.value() <= k_matrix.value() {
        return Ok(0.0);
    }
    let phi_max = shape.max_packing() * 0.995;
    let k_at = |phi: f64| {
        lewis_nielsen(k_matrix, k_filler, phi, shape)
            .map(|k| k.value())
            .unwrap_or(f64::INFINITY)
    };
    if k_at(phi_max) < target.value() {
        return Err(TimError::TargetUnreachable {
            what: format!(
                "{} with {} filler in {} matrix ({:?})",
                target, k_filler, k_matrix, shape
            ),
        });
    }
    let (mut lo, mut hi) = (0.0, phi_max);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if k_at(mid) < target.value() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_materials::Material;

    fn silver_in_epoxy() -> (ThermalConductivity, ThermalConductivity) {
        (
            Material::epoxy().thermal_conductivity,
            Material::silver().thermal_conductivity,
        )
    }

    #[test]
    fn maxwell_garnett_dilute_limit() {
        // φ → 0 recovers the matrix; small φ gives ~3φ enhancement for
        // high-contrast fillers.
        let (km, kf) = silver_in_epoxy();
        let k0 = maxwell_garnett(km, kf, 0.0).unwrap();
        assert!((k0.value() - km.value()).abs() < 1e-12);
        let k05 = maxwell_garnett(km, kf, 0.05).unwrap();
        let enhancement = k05.value() / km.value();
        assert!((enhancement - 1.157).abs() < 0.01, "got {enhancement}");
    }

    #[test]
    fn all_models_respect_wiener_bounds() {
        let (km, kf) = silver_in_epoxy();
        for phi in [0.05, 0.15, 0.3, 0.45] {
            let (lo, hi) = wiener_bounds(km, kf, phi).unwrap();
            for k in [
                maxwell_garnett(km, kf, phi).unwrap(),
                bruggeman(km, kf, phi).unwrap(),
                lewis_nielsen(km, kf, phi, FillerShape::Sphere).unwrap(),
                percolation(km, kf, phi, 0.25, 3.0).unwrap(),
            ] {
                assert!(
                    k.value() >= lo.value() - 1e-9 && k.value() <= hi.value() + 1e-9,
                    "phi={phi}: k={k} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn hs_bounds_inside_wiener() {
        let (km, kf) = silver_in_epoxy();
        for phi in [0.1, 0.3, 0.5] {
            let (wl, wh) = wiener_bounds(km, kf, phi).unwrap();
            let (hl, hh) = hashin_shtrikman_bounds(km, kf, phi).unwrap();
            assert!(hl.value() >= wl.value() - 1e-9);
            assert!(hh.value() <= wh.value() + 1e-9);
            assert!(hl.value() <= hh.value());
        }
    }

    #[test]
    fn maxwell_garnett_matches_hs_lower() {
        // MG with matrix-continuous topology *is* the HS lower bound.
        let (km, kf) = silver_in_epoxy();
        for phi in [0.1, 0.25, 0.4] {
            let mg = maxwell_garnett(km, kf, phi).unwrap();
            let (hl, _) = hashin_shtrikman_bounds(km, kf, phi).unwrap();
            assert!(
                (mg.value() - hl.value()).abs() < 1e-9 * hl.value(),
                "phi={phi}"
            );
        }
    }

    #[test]
    fn nanopack_flake_adhesive_reaches_6() {
        // Silver flakes in mono-epoxy: 6 W/m·K at a plausible loading.
        let (km, kf) = silver_in_epoxy();
        let phi =
            loading_for_target(km, kf, ThermalConductivity::new(6.0), FillerShape::Flake).unwrap();
        assert!(phi > 0.30 && phi < 0.52, "flake loading for 6 W/mK = {phi}");
    }

    #[test]
    fn nanopack_sphere_adhesive_reaches_9_5() {
        // Micro silver spheres: 9.5 W/m·K at high but feasible loading.
        let (km, kf) = silver_in_epoxy();
        let phi =
            loading_for_target(km, kf, ThermalConductivity::new(9.5), FillerShape::Sphere).unwrap();
        assert!(
            phi > 0.50 && phi < 0.637,
            "sphere loading for 9.5 W/mK = {phi}"
        );
    }

    #[test]
    fn percolation_composite_reaches_20() {
        // The metal-polymer composite: above threshold the network
        // carries the heat; 20 W/m·K is reachable at moderate loading.
        let (km, kf) = silver_in_epoxy();
        let k = percolation(km, kf, 0.52, 0.25, 3.0).unwrap();
        assert!(k.value() > 20.0, "percolating composite k = {k}");
        // Below threshold it behaves like a dilute suspension.
        let k_below = percolation(km, kf, 0.2, 0.25, 3.0).unwrap();
        assert!(k_below.value() < 2.0);
    }

    #[test]
    fn monotone_in_loading() {
        let (km, kf) = silver_in_epoxy();
        let mut last = 0.0;
        for i in 0..10 {
            let phi = 0.05 * i as f64;
            let k = lewis_nielsen(km, kf, phi, FillerShape::Sphere)
                .unwrap()
                .value();
            assert!(k >= last, "k must grow with loading");
            last = k;
        }
    }

    #[test]
    fn unreachable_target_is_reported() {
        // Glass beads can't make a 20 W/mK paste.
        let km = Material::epoxy().thermal_conductivity;
        let kf = ThermalConductivity::new(1.1);
        let r = loading_for_target(km, kf, ThermalConductivity::new(20.0), FillerShape::Sphere);
        assert!(matches!(r, Err(TimError::TargetUnreachable { .. })));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (km, kf) = silver_in_epoxy();
        assert!(maxwell_garnett(km, kf, 1.2).is_err());
        assert!(maxwell_garnett(ThermalConductivity::ZERO, kf, 0.2).is_err());
        assert!(lewis_nielsen(km, kf, 0.70, FillerShape::Sphere).is_err());
        assert!(percolation(km, kf, 0.3, 1.5, 2.0).is_err());
    }
}
