//! Fluid-flow quantities: mass flow, velocity, pressure.

quantity!(
    /// A mass flow rate in kg/s.
    ///
    /// The ARINC 600 cooling specification in the paper is quoted in
    /// kg/h per kW of dissipation; [`MassFlowRate::from_kg_per_hour`]
    /// covers the conventional unit.
    ///
    /// ```
    /// use aeropack_units::MassFlowRate;
    /// // ARINC 600: 220 kg/h per kW, so a 300 W equipment gets 66 kg/h.
    /// let flow = MassFlowRate::from_kg_per_hour(220.0 * 0.3);
    /// assert!((flow.kg_per_hour() - 66.0).abs() < 1e-9);
    /// ```
    MassFlowRate,
    "kg/s"
);

impl MassFlowRate {
    /// Creates a flow rate from kg/h.
    #[inline]
    pub fn from_kg_per_hour(kg_per_h: f64) -> Self {
        Self::new(kg_per_h / 3600.0)
    }

    /// Returns the flow rate in kg/h.
    #[inline]
    pub fn kg_per_hour(self) -> f64 {
        self.value() * 3600.0
    }
}

quantity!(
    /// A flow velocity in m/s.
    Velocity,
    "m/s"
);

quantity!(
    /// A pressure in pascals.
    Pressure,
    "Pa"
);

impl Pressure {
    /// Creates a pressure from kilopascals.
    #[inline]
    pub fn from_kilopascals(kpa: f64) -> Self {
        Self::new(kpa * 1e3)
    }

    /// Creates a pressure from bar.
    #[inline]
    pub fn from_bar(bar: f64) -> Self {
        Self::new(bar * 1e5)
    }

    /// Returns the pressure in kilopascals.
    #[inline]
    pub fn kilopascals(self) -> f64 {
        self.value() * 1e-3
    }

    /// Returns the pressure in bar.
    #[inline]
    pub fn bar(self) -> f64 {
        self.value() * 1e-5
    }

    /// One standard atmosphere.
    #[inline]
    pub fn standard_atmosphere() -> Self {
        Self::new(101_325.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arinc_mass_flow() {
        let flow = MassFlowRate::from_kg_per_hour(220.0);
        assert!((flow.value() - 220.0 / 3600.0).abs() < 1e-12);
        assert!((flow.kg_per_hour() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_units() {
        let p = Pressure::from_bar(1.01325);
        assert!((p.value() - Pressure::standard_atmosphere().value()).abs() < 1e-6);
        assert!((p.kilopascals() - 101.325).abs() < 1e-9);
    }
}
