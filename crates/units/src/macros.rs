//! The `quantity!` macro generating newtype boilerplate.

/// Defines a `Copy` newtype quantity over `f64` with standard arithmetic.
///
/// Generated API per type: `new`, `value`, `ZERO`, `abs`, `min`, `max`,
/// `clamp`, `is_finite`, `Display` with the unit suffix, `Add`, `Sub`,
/// `Neg`, scalar `Mul`/`Div` (both orders for `Mul`), `Div<Self> -> f64`
/// (dimensionless ratio), the assign variants, and `Sum`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value expressed in the type's canonical unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the type's canonical unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the value is neither NaN nor infinite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl ::std::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl ::std::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl ::std::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl ::std::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl ::std::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl ::std::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two quantities of the same kind.
        impl ::std::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl ::std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl ::std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl ::std::ops::MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl ::std::ops::DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        impl ::std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> ::std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// Defines `Mul`/`Div` relations between quantity types,
/// e.g. `relation!(Power = ThermalConductance * TempDelta)` generates
/// `ThermalConductance * TempDelta -> Power`, the commuted product, and
/// the two quotients.
macro_rules! relation {
    ($out:ident = $a:ident * $b:ident) => {
        impl ::std::ops::Mul<$b> for $a {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $b) -> $out {
                $out::new(self.value() * rhs.value())
            }
        }

        impl ::std::ops::Mul<$a> for $b {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $a) -> $out {
                $out::new(self.value() * rhs.value())
            }
        }

        impl ::std::ops::Div<$a> for $out {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $a) -> $b {
                $b::new(self.value() / rhs.value())
            }
        }

        impl ::std::ops::Div<$b> for $out {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $b) -> $a {
                $a::new(self.value() / rhs.value())
            }
        }
    };
}
