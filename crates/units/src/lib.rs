//! Strongly-typed physical quantities for avionics packaging analysis.
//!
//! Every quantity used by the `aeropack` crates is a newtype over `f64`
//! with an explicit SI (or conventional-engineering) unit, so that a heat
//! flux in W/cm² can never be confused with one in W/m², and an absolute
//! temperature can never be added to another absolute temperature.
//!
//! The two temperature types deserve a note:
//!
//! * [`Celsius`] is an *absolute* temperature (a point on the scale).
//! * [`TempDelta`] is a temperature *difference* in kelvin.
//!
//! Their arithmetic mirrors affine-space rules: `Celsius - Celsius =
//! TempDelta`, `Celsius + TempDelta = Celsius`, and `Celsius + Celsius`
//! does not compile.
//!
//! # Examples
//!
//! ```
//! use aeropack_units::{Celsius, Power, ThermalResistance};
//!
//! let ambient = Celsius::new(55.0);
//! let junction_limit = Celsius::new(125.0);
//! let budget = junction_limit - ambient; // TempDelta of 70 K
//! let r = ThermalResistance::new(1.4);   // K/W
//! let q = Power::new(30.0);
//! assert!(r * q < budget);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod flow;
mod geometry;
mod mechanics;
mod rng;
mod temperature;
mod thermal;

pub use flow::{MassFlowRate, Pressure, Velocity};
pub use geometry::{Area, Length, Volume};
pub use mechanics::{AccelPsd, Acceleration, Density, Frequency, Mass, Stress};
pub use rng::SplitMix64;
pub use temperature::{Celsius, TempDelta, TempRate};
pub use thermal::{
    AreaResistance, HeatFlux, HeatTransferCoeff, Power, PowerDensity, SpecificHeat,
    ThermalConductance, ThermalConductivity, ThermalResistance,
};

/// Standard gravitational acceleration, m/s².
pub const STANDARD_GRAVITY: f64 = 9.806_65;

/// Absolute zero expressed in degrees Celsius.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;
