//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds fully offline, so instead of an external `rand`
//! dependency the few places that need reproducible noise (the virtual
//! D5470 tester, property-style tests) share this SplitMix64 generator.
//! SplitMix64 passes BigCrush, needs only 64 bits of state, and every
//! seed gives an independent, well-mixed stream.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// ```
/// use aeropack_units::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; every seed is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform sample in the half-open interval `[lo, hi)`.
    ///
    /// The half-open contract is **guaranteed**, not approximate: the
    /// affine map `lo + (hi − lo)·u` can round up to `hi` when the
    /// interval is wide or straddles a precision boundary (e.g.
    /// `[1, 1 + ε)`), so any such sample is clamped to the largest
    /// representable value below `hi`. `lo` itself is always a possible
    /// return value; `hi` never is.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` (including `lo == hi`: an empty interval
    /// has no samples) or when either bound is NaN or infinite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "invalid range [{lo}, {hi}): bounds must be finite"
        );
        assert!(lo < hi, "invalid range [{lo}, {hi}): lo must be < hi");
        let v = lo + (hi - lo) * self.next_f64();
        if v >= hi {
            next_down(hi).max(lo)
        } else {
            v
        }
    }

    /// A standard normal sample via the Box–Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The largest float strictly below a finite `x`.
fn next_down(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    f64::from_bits(if x > 0.0 {
        x.to_bits() - 1
    } else if x < 0.0 {
        x.to_bits() + 1
    } else {
        (-f64::MIN_POSITIVE).to_bits()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the published SplitMix64.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_centred() {
        let mut rng = SplitMix64::new(123);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = rng.range_f64(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn range_is_half_open_even_on_tiny_intervals() {
        // The only representable value in [1, 1+ε) is 1.0 itself. The
        // unclamped affine map rounds some samples up to 1+ε — the
        // half-open guarantee requires them all to be exactly 1.0.
        let hi = 1.0 + f64::EPSILON;
        let mut rng = SplitMix64::new(17);
        for _ in 0..10_000 {
            assert_eq!(rng.range_f64(1.0, hi), 1.0);
        }
        // Wide interval: samples stay strictly below hi.
        let mut rng = SplitMix64::new(18);
        for _ in 0..10_000 {
            assert!(rng.range_f64(0.0, 1e300) < 1e300);
        }
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn range_rejects_empty_interval() {
        SplitMix64::new(1).range_f64(2.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn range_rejects_inverted_interval() {
        SplitMix64::new(1).range_f64(5.0, -5.0);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn range_rejects_nan_bound() {
        SplitMix64::new(1).range_f64(f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn range_rejects_infinite_bound() {
        SplitMix64::new(1).range_f64(0.0, f64::INFINITY);
    }
}
