//! Structural-dynamics quantities: frequency, acceleration, PSD, stress.

use crate::STANDARD_GRAVITY;

quantity!(
    /// A frequency in hertz.
    Frequency,
    "Hz"
);

impl Frequency {
    /// Angular frequency ω = 2πf in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.value()
    }

    /// Creates a frequency from an angular frequency in rad/s.
    #[inline]
    pub fn from_angular(omega: f64) -> Self {
        Self::new(omega / (2.0 * std::f64::consts::PI))
    }
}

quantity!(
    /// An acceleration in m/s².
    ///
    /// Test specifications are written in g; use [`Acceleration::from_g`].
    ///
    /// ```
    /// use aeropack_units::Acceleration;
    /// let accel = Acceleration::from_g(9.0); // the paper's 9 g test
    /// assert!((accel.g() - 9.0).abs() < 1e-12);
    /// ```
    Acceleration,
    "m/s²"
);

impl Acceleration {
    /// Creates an acceleration from a multiple of standard gravity.
    #[inline]
    pub fn from_g(g: f64) -> Self {
        Self::new(g * STANDARD_GRAVITY)
    }

    /// Returns the acceleration as a multiple of standard gravity.
    #[inline]
    pub fn g(self) -> f64 {
        self.value() / STANDARD_GRAVITY
    }
}

quantity!(
    /// Acceleration power spectral density in g²/Hz.
    ///
    /// DO-160 random-vibration curves are specified in this unit, so it is
    /// kept in g²/Hz rather than (m/s²)²/Hz.
    AccelPsd,
    "g²/Hz"
);

quantity!(
    /// A mechanical stress in pascals.
    Stress,
    "Pa"
);

impl Stress {
    /// Creates a stress from megapascals.
    #[inline]
    pub fn from_megapascals(mpa: f64) -> Self {
        Self::new(mpa * 1e6)
    }

    /// Returns the stress in megapascals.
    #[inline]
    pub fn megapascals(self) -> f64 {
        self.value() * 1e-6
    }
}

quantity!(
    /// A mass in kilograms.
    Mass,
    "kg"
);

impl Mass {
    /// Creates a mass from grams.
    #[inline]
    pub fn from_grams(g: f64) -> Self {
        Self::new(g * 1e-3)
    }

    /// Returns the mass in grams.
    #[inline]
    pub fn grams(self) -> f64 {
        self.value() * 1e3
    }
}

quantity!(
    /// A mass density in kg/m³.
    Density,
    "kg/m³"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angular_frequency_roundtrip() {
        let f = Frequency::new(500.0);
        let back = Frequency::from_angular(f.angular());
        assert!((back.value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn g_conversion() {
        let a = Acceleration::from_g(9.0);
        assert!((a.value() - 88.25985).abs() < 1e-4);
        assert!((a.g() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn stress_megapascals() {
        // The NANOPACK adhesive shear strength of 14 MPa.
        let s = Stress::from_megapascals(14.0);
        assert!((s.value() - 1.4e7).abs() < 1e-3);
    }
}
