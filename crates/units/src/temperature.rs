//! Absolute temperatures and temperature differences.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Neg, Sub, SubAssign};

use crate::ABSOLUTE_ZERO_CELSIUS;

/// An absolute temperature, stored in degrees Celsius.
///
/// `Celsius` is a *point* on the temperature scale, not an amount of
/// heating: two `Celsius` values cannot be added, only subtracted (which
/// yields a [`TempDelta`]).
///
/// # Examples
///
/// ```
/// use aeropack_units::{Celsius, TempDelta};
///
/// let junction = Celsius::new(101.5);
/// let ambient = Celsius::new(55.0);
/// let rise: TempDelta = junction - ambient;
/// assert!((rise.kelvin() - 46.5).abs() < 1e-12);
/// assert_eq!(ambient + rise, junction);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates an absolute temperature from a value in degrees Celsius.
    #[inline]
    pub const fn new(deg_c: f64) -> Self {
        Self(deg_c)
    }

    /// Creates an absolute temperature from a value in kelvin.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Self(kelvin + ABSOLUTE_ZERO_CELSIUS)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the temperature in kelvin.
    #[inline]
    pub fn kelvin(self) -> f64 {
        self.0 - ABSOLUTE_ZERO_CELSIUS
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns `true` when the value is neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns `true` if the temperature is physically meaningful
    /// (finite and at or above absolute zero).
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= ABSOLUTE_ZERO_CELSIUS
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} °C", prec, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

quantity!(
    /// A temperature difference in kelvin.
    ///
    /// Produced by subtracting two [`Celsius`] values; adding it back to a
    /// `Celsius` yields another absolute temperature.
    TempDelta,
    "K"
);

impl TempDelta {
    /// Returns the difference in kelvin (alias of [`TempDelta::value`]).
    #[inline]
    pub const fn kelvin(self) -> f64 {
        self.value()
    }
}

quantity!(
    /// A rate of temperature change in kelvin per second.
    ///
    /// Used for thermal-shock ramp specifications such as the paper's
    /// −45 °C/+55 °C shock at 5 °C/min.
    TempRate,
    "K/s"
);

impl TempRate {
    /// Creates a rate from a value in kelvin (or °C) per minute.
    #[inline]
    pub fn per_minute(kelvin_per_minute: f64) -> Self {
        Self::new(kelvin_per_minute / 60.0)
    }

    /// Returns the rate in kelvin per minute.
    #[inline]
    pub fn kelvin_per_minute(self) -> f64 {
        self.value() * 60.0
    }
}

impl Sub for Celsius {
    type Output = TempDelta;
    #[inline]
    fn sub(self, rhs: Self) -> TempDelta {
        TempDelta::new(self.0 - rhs.0)
    }
}

impl Add<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 + rhs.value())
    }
}

impl Sub<TempDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: TempDelta) -> Celsius {
        Celsius(self.0 - rhs.value())
    }
}

impl AddAssign<TempDelta> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.value();
    }
}

impl SubAssign<TempDelta> for Celsius {
    #[inline]
    fn sub_assign(&mut self, rhs: TempDelta) {
        self.0 -= rhs.value();
    }
}

/// Division of a temperature difference by a ramp rate gives the ramp
/// duration in seconds.
impl Div<TempRate> for TempDelta {
    type Output = f64;
    #[inline]
    fn div(self, rhs: TempRate) -> f64 {
        self.value() / rhs.value()
    }
}

impl Neg for Celsius {
    type Output = Celsius;
    #[inline]
    fn neg(self) -> Celsius {
        Celsius(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_roundtrip() {
        let t = Celsius::new(25.0);
        assert!((t.kelvin() - 298.15).abs() < 1e-12);
        let back = Celsius::from_kelvin(t.kelvin());
        assert!((back.value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn affine_arithmetic() {
        let hot = Celsius::new(125.0);
        let cold = Celsius::new(-45.0);
        let delta = hot - cold;
        assert!((delta.kelvin() - 170.0).abs() < 1e-12);
        assert_eq!(cold + delta, hot);
        assert_eq!(hot - delta, cold);
    }

    #[test]
    fn ramp_rate_duration() {
        // −45 °C → +55 °C at 5 °C/min takes 20 minutes.
        let shock = Celsius::new(55.0) - Celsius::new(-45.0);
        let rate = TempRate::per_minute(5.0);
        let seconds = shock / rate;
        assert!((seconds - 1200.0).abs() < 1e-9);
        assert!((rate.kelvin_per_minute() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn physicality() {
        assert!(Celsius::new(-100.0).is_physical());
        assert!(!Celsius::new(-300.0).is_physical());
        assert!(!Celsius::new(f64::NAN).is_physical());
    }
}
