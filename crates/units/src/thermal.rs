//! Thermal quantities: power, flux, conductivity, resistances.

use crate::geometry::{Area, Length, Volume};
use crate::temperature::TempDelta;

quantity!(
    /// Dissipated or transported heat power in watts.
    ///
    /// ```
    /// use aeropack_units::Power;
    /// let module: Power = [Power::new(10.0), Power::new(20.0)].iter().sum();
    /// assert_eq!(module, Power::new(30.0));
    /// ```
    Power,
    "W"
);

quantity!(
    /// Heat flux in W/m².
    ///
    /// The paper quotes hot spots in W/cm²; use
    /// [`HeatFlux::from_watts_per_square_centimeter`] for those.
    HeatFlux,
    "W/m²"
);

impl HeatFlux {
    /// Creates a flux from a value in W/cm² (the paper's customary unit).
    #[inline]
    pub fn from_watts_per_square_centimeter(w_per_cm2: f64) -> Self {
        Self::new(w_per_cm2 * 1e4)
    }

    /// Returns the flux in W/cm².
    #[inline]
    pub fn watts_per_square_centimeter(self) -> f64 {
        self.value() * 1e-4
    }
}

quantity!(
    /// Volumetric power density in W/m³ (Level-1 equipment sources).
    PowerDensity,
    "W/m³"
);

quantity!(
    /// Thermal conductivity in W/(m·K).
    ThermalConductivity,
    "W/(m·K)"
);

quantity!(
    /// Convective/radiative film coefficient in W/(m²·K).
    HeatTransferCoeff,
    "W/(m²·K)"
);

quantity!(
    /// Absolute thermal resistance in K/W.
    ThermalResistance,
    "K/W"
);

impl ThermalResistance {
    /// The reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero.
    #[inline]
    pub fn to_conductance(self) -> ThermalConductance {
        assert!(
            self.value() != 0.0,
            "zero thermal resistance has no finite conductance"
        );
        ThermalConductance::new(1.0 / self.value())
    }

    /// Series combination of two resistances.
    #[inline]
    pub fn in_series(self, other: Self) -> Self {
        self + other
    }

    /// Parallel combination of two resistances.
    #[inline]
    pub fn in_parallel(self, other: Self) -> Self {
        let (a, b) = (self.value(), other.value());
        Self::new(a * b / (a + b))
    }
}

quantity!(
    /// Thermal conductance in W/K.
    ThermalConductance,
    "W/K"
);

impl ThermalConductance {
    /// The reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is zero.
    #[inline]
    pub fn to_resistance(self) -> ThermalResistance {
        assert!(
            self.value() != 0.0,
            "zero conductance has no finite resistance"
        );
        ThermalResistance::new(1.0 / self.value())
    }
}

quantity!(
    /// Area-specific interface resistance in K·m²/W.
    ///
    /// The TIM literature (and the NANOPACK targets in the paper) quote
    /// this in K·mm²/W; use the dedicated constructors.
    ///
    /// ```
    /// use aeropack_units::AreaResistance;
    /// let target = AreaResistance::from_kelvin_mm2_per_watt(5.0);
    /// assert!((target.kelvin_mm2_per_watt() - 5.0).abs() < 1e-12);
    /// ```
    AreaResistance,
    "K·m²/W"
);

impl AreaResistance {
    /// Creates an area resistance from a value in K·mm²/W.
    #[inline]
    pub fn from_kelvin_mm2_per_watt(k_mm2_per_w: f64) -> Self {
        Self::new(k_mm2_per_w * 1e-6)
    }

    /// Returns the area resistance in K·mm²/W.
    #[inline]
    pub fn kelvin_mm2_per_watt(self) -> f64 {
        self.value() * 1e6
    }

    /// Converts to an absolute resistance over a given contact area.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not strictly positive.
    #[inline]
    pub fn over_area(self, area: Area) -> ThermalResistance {
        assert!(area.value() > 0.0, "contact area must be positive");
        ThermalResistance::new(self.value() / area.value())
    }
}

quantity!(
    /// Specific heat capacity in J/(kg·K).
    SpecificHeat,
    "J/(kg·K)"
);

// Dimensional relations.
relation!(Power = HeatFlux * Area);
relation!(Power = PowerDensity * Volume);
relation!(TempDelta = ThermalResistance * Power);
relation!(Power = ThermalConductance * TempDelta);

/// Conductivity × length⁻¹ × area relations are provided as methods since
/// the intermediate (W/K per unit length) has no standalone meaning here.
impl ThermalConductivity {
    /// Conductance of a prismatic bar: `k·A/L`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive.
    #[inline]
    pub fn bar_conductance(self, area: Area, length: Length) -> ThermalConductance {
        assert!(length.value() > 0.0, "bar length must be positive");
        ThermalConductance::new(self.value() * area.value() / length.value())
    }

    /// Area-specific resistance of a slab of a given thickness: `t/k`.
    #[inline]
    pub fn slab_area_resistance(self, thickness: Length) -> AreaResistance {
        AreaResistance::new(thickness.value() / self.value())
    }
}

impl HeatTransferCoeff {
    /// Film conductance over a wetted area: `h·A`.
    #[inline]
    pub fn film_conductance(self, area: Area) -> ThermalConductance {
        ThermalConductance::new(self.value() * area.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_paper_units() {
        let hot_spot = HeatFlux::from_watts_per_square_centimeter(100.0);
        assert!((hot_spot.value() - 1e6).abs() < 1e-6);
        let q = hot_spot * Area::from_square_centimeters(1.0);
        assert!((q.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn resistance_conductance_reciprocity() {
        let r = ThermalResistance::new(2.5);
        let g = r.to_conductance();
        assert!((g.value() - 0.4).abs() < 1e-12);
        assert!((g.to_resistance().value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn series_parallel() {
        let a = ThermalResistance::new(2.0);
        let b = ThermalResistance::new(2.0);
        assert!((a.in_series(b).value() - 4.0).abs() < 1e-12);
        assert!((a.in_parallel(b).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ohms_law_relations() {
        let r = ThermalResistance::new(1.4);
        let q = Power::new(50.0);
        let dt: TempDelta = r * q;
        assert!((dt.kelvin() - 70.0).abs() < 1e-12);
        let back: Power = dt / r;
        assert!((back.value() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn bar_conductance() {
        // Aluminium-ish bar: k = 180 W/mK, 10 cm² cross-section, 0.5 m long.
        let k = ThermalConductivity::new(180.0);
        let g = k.bar_conductance(Area::from_square_centimeters(10.0), Length::new(0.5));
        assert!((g.value() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn nanopack_target_area_resistance() {
        // < 5 K·mm²/W over 1 cm² is < 0.05 K/W.
        let r = AreaResistance::from_kelvin_mm2_per_watt(5.0)
            .over_area(Area::from_square_centimeters(1.0));
        assert!((r.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero thermal resistance")]
    fn zero_resistance_panics() {
        let _ = ThermalResistance::ZERO.to_conductance();
    }
}
