//! Lengths, areas and volumes.

quantity!(
    /// A length in metres.
    ///
    /// Convenience constructors exist for the millimetre and micrometre
    /// scales common in packaging (bond-line thicknesses are tens of µm).
    ///
    /// ```
    /// use aeropack_units::Length;
    /// let blt = Length::from_micrometers(20.0);
    /// assert!((blt.millimeters() - 0.02).abs() < 1e-12);
    /// ```
    Length,
    "m"
);

impl Length {
    /// Creates a length from millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Returns the length in millimetres.
    #[inline]
    pub fn millimeters(self) -> f64 {
        self.value() * 1e3
    }

    /// Returns the length in micrometres.
    #[inline]
    pub fn micrometers(self) -> f64 {
        self.value() * 1e6
    }
}

quantity!(
    /// An area in square metres.
    Area,
    "m²"
);

impl Area {
    /// Creates an area from square centimetres.
    #[inline]
    pub fn from_square_centimeters(cm2: f64) -> Self {
        Self::new(cm2 * 1e-4)
    }

    /// Creates an area from square millimetres.
    #[inline]
    pub fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Returns the area in square centimetres.
    #[inline]
    pub fn square_centimeters(self) -> f64 {
        self.value() * 1e4
    }

    /// Returns the area in square millimetres.
    #[inline]
    pub fn square_millimeters(self) -> f64 {
        self.value() * 1e6
    }
}

quantity!(
    /// A volume in cubic metres.
    Volume,
    "m³"
);

impl Volume {
    /// Creates a volume from litres.
    #[inline]
    pub fn from_liters(liters: f64) -> Self {
        Self::new(liters * 1e-3)
    }

    /// Returns the volume in litres.
    #[inline]
    pub fn liters(self) -> f64 {
        self.value() * 1e3
    }
}

// Length × Length = Area is deliberately *not* auto-derived by
// `relation!` because the commuted impl would be a duplicate; provide the
// single product plus the quotient by hand.
impl std::ops::Mul<Length> for Length {
    type Output = Area;
    #[inline]
    fn mul(self, rhs: Length) -> Area {
        Area::new(self.value() * rhs.value())
    }
}

relation!(Volume = Area * Length);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_unit_conversions() {
        let l = Length::from_millimeters(250.0);
        assert!((l.value() - 0.25).abs() < 1e-12);
        assert!((l.micrometers() - 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn area_products() {
        let a = Length::from_millimeters(100.0) * Length::from_millimeters(200.0);
        assert!((a.square_centimeters() - 200.0).abs() < 1e-9);
        let v = a * Length::from_millimeters(2.0);
        assert!((v.liters() - 0.04).abs() < 1e-9);
        // Quotient recovers the thickness.
        let t: Length = v / a;
        assert!((t.millimeters() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.2}", Length::new(0.25)), "0.25 m");
        assert_eq!(format!("{:.1}", Area::new(1.5)), "1.5 m²");
    }
}
