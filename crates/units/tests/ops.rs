//! Property tests of the macro-generated quantity arithmetic: every
//! newtype must behave like a plain `f64` vector space plus its unit.

use aeropack_units::{
    Area, Celsius, Frequency, Length, Power, TempDelta, ThermalConductance, ThermalResistance,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_roundtrip(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let p = Power::new(a);
        let q = Power::new(b);
        let back = (p + q) - q;
        prop_assert!((back.value() - a).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn scalar_multiplication_commutes_and_distributes(
        a in -1e3..1e3f64,
        b in -1e3..1e3f64,
        s in -50.0..50.0f64,
    ) {
        let p = Length::new(a);
        let q = Length::new(b);
        prop_assert_eq!((p * s).value(), (s * p).value());
        let lhs = (p + q) * s;
        let rhs = p * s + q * s;
        prop_assert!((lhs.value() - rhs.value()).abs() <= 1e-9 * lhs.value().abs().max(1.0));
    }

    #[test]
    fn same_kind_ratio_is_dimensionless_identity(a in 0.1..1e6f64, s in 0.1..100.0f64) {
        let p = Frequency::new(a);
        let q = p * s;
        prop_assert!((q / p - s).abs() < 1e-12 * s);
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(-100.0..100.0f64, 1..20)) {
        let total: Power = values.iter().map(|&v| Power::new(v)).sum();
        let fold: f64 = values.iter().sum();
        prop_assert!((total.value() - fold).abs() < 1e-9);
    }

    #[test]
    fn clamp_stays_in_bounds(v in -1e4..1e4f64, lo in -100.0..0.0f64, hi in 0.0..100.0f64) {
        let c = TempDelta::new(v).clamp(TempDelta::new(lo), TempDelta::new(hi));
        prop_assert!(c.value() >= lo && c.value() <= hi);
    }

    #[test]
    fn ohms_law_inverse(r in 0.01..100.0f64, q in 0.1..500.0f64) {
        let res = ThermalResistance::new(r);
        let power = Power::new(q);
        let dt = res * power;
        let back: Power = dt / res;
        prop_assert!((back.value() - q).abs() < 1e-9 * q);
        // Conductance reciprocal closes the loop.
        let g: ThermalConductance = res.to_conductance();
        let q2 = g * dt;
        prop_assert!((q2.value() - q).abs() < 1e-9 * q);
    }

    #[test]
    fn area_products_and_ratios(a in 0.01..10.0f64, b in 0.01..10.0f64) {
        let area: Area = Length::new(a) * Length::new(b);
        prop_assert!((area.value() - a * b).abs() < 1e-12 * (a * b).max(1.0));
        // Dimensionless ratio of two areas recovers the factor.
        let unit_strip: Area = Length::new(a) * Length::new(1.0);
        prop_assert!((area / unit_strip - b).abs() < 1e-12 * b.max(1.0));
    }

    #[test]
    fn celsius_affine_consistency(t in -100.0..200.0f64, d in -50.0..50.0f64) {
        let base = Celsius::new(t);
        let delta = TempDelta::new(d);
        let moved = base + delta;
        prop_assert!(((moved - base).kelvin() - d).abs() < 1e-9);
        // Floating-point round-trip within one ulp-scale tolerance.
        prop_assert!(((moved - delta) - base).kelvin().abs() < 1e-10);
        // Kelvin and Celsius differences agree.
        prop_assert!(((moved.kelvin() - base.kelvin()) - d).abs() < 1e-9);
    }

    #[test]
    fn display_always_carries_the_unit(v in -1e3..1e3f64) {
        let p = Power::new(v).to_string();
        let l = Length::new(v).to_string();
        let c = Celsius::new(v).to_string();
        let r = format!("{:.2}", ThermalResistance::new(v));
        prop_assert!(p.ends_with(" W"), "power: {p}");
        prop_assert!(l.ends_with(" m"), "length: {l}");
        prop_assert!(c.ends_with(" °C"), "celsius: {c}");
        prop_assert!(r.contains("K/W"), "resistance: {r}");
    }
}
