//! Property-style tests of the macro-generated quantity arithmetic:
//! every newtype must behave like a plain `f64` vector space plus its
//! unit. Inputs are sampled with the in-repo [`SplitMix64`] generator so
//! the suite is deterministic and fully offline.

use aeropack_units::{
    Area, Celsius, Frequency, Length, Power, SplitMix64, TempDelta, ThermalConductance,
    ThermalResistance,
};

const CASES: u64 = 64;

#[test]
fn add_sub_roundtrip() {
    let mut rng = SplitMix64::new(0x0b51);
    for _ in 0..CASES {
        let a = rng.range_f64(-1e6, 1e6);
        let b = rng.range_f64(-1e6, 1e6);
        let p = Power::new(a);
        let q = Power::new(b);
        let back = (p + q) - q;
        assert!((back.value() - a).abs() <= 1e-9 * a.abs().max(1.0));
    }
}

#[test]
fn scalar_multiplication_commutes_and_distributes() {
    let mut rng = SplitMix64::new(0x0b52);
    for _ in 0..CASES {
        let a = rng.range_f64(-1e3, 1e3);
        let b = rng.range_f64(-1e3, 1e3);
        let s = rng.range_f64(-50.0, 50.0);
        let p = Length::new(a);
        let q = Length::new(b);
        assert_eq!((p * s).value(), (s * p).value());
        let lhs = (p + q) * s;
        let rhs = p * s + q * s;
        assert!((lhs.value() - rhs.value()).abs() <= 1e-9 * lhs.value().abs().max(1.0));
    }
}

#[test]
fn same_kind_ratio_is_dimensionless_identity() {
    let mut rng = SplitMix64::new(0x0b53);
    for _ in 0..CASES {
        let a = rng.range_f64(0.1, 1e6);
        let s = rng.range_f64(0.1, 100.0);
        let p = Frequency::new(a);
        let q = p * s;
        assert!((q / p - s).abs() < 1e-12 * s);
    }
}

#[test]
fn sum_matches_fold() {
    let mut rng = SplitMix64::new(0x0b54);
    for _ in 0..CASES {
        let len = 1 + (rng.next_u64() % 19) as usize;
        let values: Vec<f64> = (0..len).map(|_| rng.range_f64(-100.0, 100.0)).collect();
        let total: Power = values.iter().map(|&v| Power::new(v)).sum();
        let fold: f64 = values.iter().sum();
        assert!((total.value() - fold).abs() < 1e-9);
    }
}

#[test]
fn clamp_stays_in_bounds() {
    let mut rng = SplitMix64::new(0x0b55);
    for _ in 0..CASES {
        let v = rng.range_f64(-1e4, 1e4);
        let lo = rng.range_f64(-100.0, 0.0);
        let hi = rng.range_f64(0.0, 100.0);
        let c = TempDelta::new(v).clamp(TempDelta::new(lo), TempDelta::new(hi));
        assert!(c.value() >= lo && c.value() <= hi);
    }
}

#[test]
fn ohms_law_inverse() {
    let mut rng = SplitMix64::new(0x0b56);
    for _ in 0..CASES {
        let r = rng.range_f64(0.01, 100.0);
        let q = rng.range_f64(0.1, 500.0);
        let res = ThermalResistance::new(r);
        let power = Power::new(q);
        let dt = res * power;
        let back: Power = dt / res;
        assert!((back.value() - q).abs() < 1e-9 * q);
        // Conductance reciprocal closes the loop.
        let g: ThermalConductance = res.to_conductance();
        let q2 = g * dt;
        assert!((q2.value() - q).abs() < 1e-9 * q);
    }
}

#[test]
fn area_products_and_ratios() {
    let mut rng = SplitMix64::new(0x0b57);
    for _ in 0..CASES {
        let a = rng.range_f64(0.01, 10.0);
        let b = rng.range_f64(0.01, 10.0);
        let area: Area = Length::new(a) * Length::new(b);
        assert!((area.value() - a * b).abs() < 1e-12 * (a * b).max(1.0));
        // Dimensionless ratio of two areas recovers the factor.
        let unit_strip: Area = Length::new(a) * Length::new(1.0);
        assert!((area / unit_strip - b).abs() < 1e-12 * b.max(1.0));
    }
}

#[test]
fn celsius_affine_consistency() {
    let mut rng = SplitMix64::new(0x0b58);
    for _ in 0..CASES {
        let t = rng.range_f64(-100.0, 200.0);
        let d = rng.range_f64(-50.0, 50.0);
        let base = Celsius::new(t);
        let delta = TempDelta::new(d);
        let moved = base + delta;
        assert!(((moved - base).kelvin() - d).abs() < 1e-9);
        // Floating-point round-trip within one ulp-scale tolerance.
        assert!(((moved - delta) - base).kelvin().abs() < 1e-10);
        // Kelvin and Celsius differences agree.
        assert!(((moved.kelvin() - base.kelvin()) - d).abs() < 1e-9);
    }
}

#[test]
fn display_always_carries_the_unit() {
    let mut rng = SplitMix64::new(0x0b59);
    for _ in 0..CASES {
        let v = rng.range_f64(-1e3, 1e3);
        let p = Power::new(v).to_string();
        let l = Length::new(v).to_string();
        let c = Celsius::new(v).to_string();
        let r = format!("{:.2}", ThermalResistance::new(v));
        assert!(p.ends_with(" W"), "power: {p}");
        assert!(l.ends_with(" m"), "length: {l}");
        assert!(c.ends_with(" °C"), "celsius: {c}");
        assert!(r.contains("K/W"), "resistance: {r}");
    }
}
