//! Analytic view factors for the rectangular geometries of equipment
//! bays: directly opposed parallel rectangles, perpendicular rectangles
//! sharing an edge, and the six-surface interior enclosure of a
//! rectangular box assembled from the two.
//!
//! Both closed forms are the standard results (Incropera & DeWitt,
//! Table 13.2); the box enclosure built from them satisfies reciprocity
//! `Aᵢ·Fᵢⱼ = Aⱼ·Fⱼᵢ` exactly (by formula symmetry) and the summation
//! rule `Σⱼ Fᵢⱼ = 1` to floating-point accuracy, which the radiation
//! unit tests assert.

use crate::MissionError;

/// View factor between two directly opposed, aligned `a × b` rectangles
/// separated by a gap `c` — both plate faces of a card cage, or a board
/// facing its neighbour.
///
/// # Panics
///
/// Does not panic for positive inputs; non-positive inputs return 0.
pub fn parallel_rectangles(a: f64, b: f64, c: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 || c <= 0.0 {
        return 0.0;
    }
    let x = a / c;
    let y = b / c;
    let x2 = x * x;
    let y2 = y * y;
    let ln_term = (((1.0 + x2) * (1.0 + y2)) / (1.0 + x2 + y2)).sqrt().ln();
    let sx = (1.0 + y2).sqrt();
    let sy = (1.0 + x2).sqrt();
    let sum =
        ln_term + x * sx * (x / sx).atan() + y * sy * (y / sy).atan() - x * x.atan() - y * y.atan();
    2.0 / (std::f64::consts::PI * x * y) * sum
}

/// View factor `F₁→₂` between two perpendicular rectangles sharing an
/// edge of length `l`: surface 1 extends `w` from the common edge
/// (area `l·w`), surface 2 extends `h` (area `l·h`) — a board and the
/// chassis wall it butts against.
pub fn perpendicular_rectangles(l: f64, w: f64, h: f64) -> f64 {
    if l <= 0.0 || w <= 0.0 || h <= 0.0 {
        return 0.0;
    }
    let ww = w / l;
    let hh = h / l;
    let w2 = ww * ww;
    let h2 = hh * hh;
    let s = (h2 + w2).sqrt();
    let ln_arg = ((1.0 + w2) * (1.0 + h2) / (1.0 + w2 + h2))
        * ((w2 * (1.0 + w2 + h2)) / ((1.0 + w2) * (w2 + h2))).powf(w2)
        * ((h2 * (1.0 + h2 + w2)) / ((1.0 + h2) * (h2 + w2))).powf(h2);
    (ww * (1.0 / ww).atan() + hh * (1.0 / hh).atan() - s * (1.0 / s).atan() + 0.25 * ln_arg.ln())
        / (std::f64::consts::PI * ww)
}

/// A dense view-factor matrix over `n` surfaces with their areas — the
/// geometric input to the [Gebhart radiosity
/// network](crate::radiosity::RadiationNetwork).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewFactors {
    areas: Vec<f64>,
    /// Row-major `n × n` factors, `f[i·n + j] = Fᵢ→ⱼ`.
    factors: Vec<f64>,
}

impl ViewFactors {
    /// Builds a view-factor matrix from explicit areas and row-major
    /// factors — the escape hatch for geometries without a closed form
    /// (two-surface idealisations, measured factors).
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, a non-square matrix,
    /// non-positive areas, negative factors, or a row summing to more
    /// than 1 (beyond round-off).
    pub fn from_parts(areas: Vec<f64>, factors: Vec<f64>) -> Result<Self, MissionError> {
        let n = areas.len();
        if n == 0 {
            return Err(MissionError::invalid("view factors need ≥ 1 surface"));
        }
        if factors.len() != n * n {
            return Err(MissionError::invalid(format!(
                "factor matrix must be {n}×{n}, got {} entries",
                factors.len()
            )));
        }
        if areas.iter().any(|&a| a.is_nan() || a <= 0.0) {
            return Err(MissionError::invalid("surface areas must be positive"));
        }
        if factors.iter().any(|&f| !(0.0..=1.0).contains(&f)) {
            return Err(MissionError::invalid("view factors must lie in [0, 1]"));
        }
        for i in 0..n {
            let row: f64 = factors[i * n..(i + 1) * n].iter().sum();
            if row > 1.0 + 1e-9 {
                return Err(MissionError::invalid(format!(
                    "row {i} of the view-factor matrix sums to {row} > 1"
                )));
            }
        }
        Ok(Self { areas, factors })
    }

    /// The six-surface interior enclosure of an `lx × ly × lz` box,
    /// surfaces ordered like [`aeropack_thermal::Face::ALL`]
    /// (XMin, XMax, YMin, YMax, ZMin, ZMax). Opposite faces use the
    /// parallel-rectangle closed form, adjacent faces the
    /// perpendicular-rectangle one; the resulting rows sum to 1.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive box dimensions.
    pub fn box_enclosure(lx: f64, ly: f64, lz: f64) -> Result<Self, MissionError> {
        if lx <= 0.0 || ly <= 0.0 || lz <= 0.0 {
            return Err(MissionError::invalid("box dimensions must be positive"));
        }
        let l = [lx, ly, lz];
        // Face i has normal axis i/2 and spans the other two axes.
        let normal = [0usize, 0, 1, 1, 2, 2];
        let span = |axis: usize| -> (usize, usize) {
            match axis {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            }
        };
        let mut areas = [0.0; 6];
        for (i, area) in areas.iter_mut().enumerate() {
            let (u, v) = span(normal[i]);
            *area = l[u] * l[v];
        }
        let mut f = vec![0.0; 36];
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let (a1, a2) = (normal[i], normal[j]);
                f[i * 6 + j] = if a1 == a2 {
                    // Opposite faces: parallel rectangles spanning the
                    // other two axes, separated by the box length along
                    // the shared normal.
                    let (u, v) = span(a1);
                    parallel_rectangles(l[u], l[v], l[a1])
                } else {
                    // Adjacent faces share the edge along the third
                    // axis; face i extends l[a2] from it, face j
                    // extends l[a1].
                    let a3 = 3 - a1 - a2;
                    perpendicular_rectangles(l[a3], l[a2], l[a1])
                };
            }
        }
        Ok(Self {
            areas: areas.to_vec(),
            factors: f,
        })
    }

    /// Number of surfaces.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the matrix is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Surface areas, m².
    pub fn areas(&self) -> &[f64] {
        &self.areas
    }

    /// The factor `Fᵢ→ⱼ`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.factors[i * self.areas.len() + j]
    }

    /// Sum of row `i` — 1 for a closed enclosure.
    pub fn row_sum(&self, i: usize) -> f64 {
        let n = self.areas.len();
        self.factors[i * n..(i + 1) * n].iter().sum()
    }

    /// The largest deviation of any row sum from 1 — how far this
    /// matrix is from a closed enclosure.
    pub fn closure_error(&self) -> f64 {
        (0..self.areas.len())
            .map(|i| (self.row_sum(i) - 1.0).abs())
            .fold(0.0, f64::max)
    }

    /// The largest relative reciprocity defect
    /// `|Aᵢ·Fᵢⱼ − Aⱼ·Fⱼᵢ| / max(Aᵢ·Fᵢⱼ, Aⱼ·Fⱼᵢ)` over all pairs with
    /// non-zero exchange.
    pub fn reciprocity_error(&self) -> f64 {
        let n = self.areas.len();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let ij = self.areas[i] * self.get(i, j);
                let ji = self.areas[j] * self.get(j, i);
                let scale = ij.max(ji);
                if scale > 0.0 {
                    worst = worst.max((ij - ji).abs() / scale);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_square_plates_match_tabulated_value() {
        // Unit squares at unit distance: F ≈ 0.199825 (standard chart
        // value X = Y = 1).
        let f = parallel_rectangles(1.0, 1.0, 1.0);
        assert!((f - 0.19982).abs() < 1e-4, "got {f}");
        // Plates far apart see almost nothing of each other; plates
        // nearly touching see almost only each other.
        assert!(parallel_rectangles(1.0, 1.0, 100.0) < 1e-3);
        assert!(parallel_rectangles(1.0, 1.0, 1e-3) > 0.99);
    }

    #[test]
    fn perpendicular_square_plates_match_tabulated_value() {
        // Two unit squares at right angles sharing an edge: F ≈ 0.20004.
        let f = perpendicular_rectangles(1.0, 1.0, 1.0);
        assert!((f - 0.20004).abs() < 1e-4, "got {f}");
    }

    #[test]
    fn perpendicular_reciprocity_holds_for_unequal_plates() {
        // A1·F12 = A2·F21 with A1 = l·w, A2 = l·h.
        let (l, w, h) = (2.0, 0.7, 1.3);
        let f12 = perpendicular_rectangles(l, w, h);
        let f21 = perpendicular_rectangles(l, h, w);
        let lhs = l * w * f12;
        let rhs = l * h * f21;
        assert!((lhs - rhs).abs() < 1e-12 * lhs.max(rhs), "{lhs} vs {rhs}");
    }

    #[test]
    fn cube_enclosure_rows_sum_to_one() {
        let vf = ViewFactors::box_enclosure(1.0, 1.0, 1.0).unwrap();
        assert!(vf.closure_error() < 1e-10, "closure {}", vf.closure_error());
        assert!(vf.reciprocity_error() < 1e-12);
        // Cube symmetry: opposite face ≈ 0.19982, each adjacent ≈ 0.20004.
        assert!((vf.get(0, 1) - 0.19982).abs() < 1e-4);
        assert!((vf.get(0, 2) - 0.20004).abs() < 1e-4);
    }

    #[test]
    fn elongated_box_enclosure_still_closes() {
        let vf = ViewFactors::box_enclosure(0.3, 0.2, 0.05).unwrap();
        assert!(vf.closure_error() < 1e-10, "closure {}", vf.closure_error());
        assert!(vf.reciprocity_error() < 1e-12);
        // The two large faces (ZMin/ZMax) of a flat box mostly see each
        // other.
        assert!(vf.get(4, 5) > 0.5);
    }

    #[test]
    fn from_parts_validates() {
        assert!(ViewFactors::from_parts(vec![], vec![]).is_err());
        assert!(ViewFactors::from_parts(vec![1.0], vec![0.5, 0.5]).is_err());
        assert!(ViewFactors::from_parts(vec![1.0, -1.0], vec![0.0; 4]).is_err());
        assert!(ViewFactors::from_parts(vec![1.0, 1.0], vec![0.0, 0.9, 0.9, 0.0]).is_ok());
        assert!(ViewFactors::from_parts(vec![1.0, 1.0], vec![0.4, 0.9, 0.9, 0.0]).is_err());
    }
}
