//! Environment models: what the air and the sky look like from the
//! equipment bay as the mission unfolds.
//!
//! * **Altitude**: ambient temperature and pressure follow the ISA
//!   profile from `aeropack-materials`; convective film coefficients
//!   derate with the falling air density (DO-160 §4 is certified
//!   against exactly this).
//! * **Sun**: solar flux versus latitude and time of day for ground and
//!   flight missions, and a sun/eclipse orbit cycle for space
//!   missions.

use aeropack_materials::isa_atmosphere;
use aeropack_units::{Celsius, HeatTransferCoeff};

use crate::MissionError;

/// The solar constant at 1 AU, W/m².
pub const SOLAR_CONSTANT: f64 = 1361.0;

/// Effective deep-space sink temperature, °C.
pub const DEEP_SPACE_C: f64 = -270.0;

/// The ambient state a bay sees at one altitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtmosphereState {
    /// Standard ambient temperature.
    pub ambient: Celsius,
    /// Pressure relative to sea level, `p/p₀ ∈ (0, 1]`.
    pub pressure_ratio: f64,
}

/// The ISA ambient state at a geopotential altitude.
///
/// # Errors
///
/// Returns an error outside the ISA range (−500 m … 20 km).
pub fn atmosphere_at(altitude_m: f64) -> Result<AtmosphereState, MissionError> {
    let point = isa_atmosphere(altitude_m)?;
    let sea = isa_atmosphere(0.0)?;
    Ok(AtmosphereState {
        ambient: point.temperature,
        pressure_ratio: point.pressure.value() / sea.pressure.value(),
    })
}

/// Derates a sea-level film coefficient to altitude: convective
/// coefficients scale roughly with `(p/p₀)^0.5` as the air thins (the
/// classic √density correction for natural convection; forced-air
/// systems with constant mass flow derate less, which makes this a
/// conservative bay-level default).
///
/// # Errors
///
/// Returns an error outside the ISA range.
pub fn altitude_derated_h(
    h_sea_level: HeatTransferCoeff,
    altitude_m: f64,
) -> Result<HeatTransferCoeff, MissionError> {
    let state = atmosphere_at(altitude_m)?;
    Ok(HeatTransferCoeff::new(
        h_sea_level.value() * state.pressure_ratio.sqrt(),
    ))
}

/// Solar flux on a horizontal surface, W/m², for a latitude (degrees,
/// +north), solar declination (degrees, ±23.44 over the year) and local
/// solar time in hours (12 = solar noon). Zero when the sun is below
/// the horizon; atmospheric attenuation is not modelled (conservative
/// for thermal sizing).
pub fn solar_flux(latitude_deg: f64, declination_deg: f64, hour: f64) -> f64 {
    let phi = latitude_deg.to_radians();
    let delta = declination_deg.to_radians();
    let hour_angle = ((hour - 12.0) * 15.0).to_radians();
    let sin_elevation = phi.sin() * delta.sin() + phi.cos() * delta.cos() * hour_angle.cos();
    SOLAR_CONSTANT * sin_elevation.max(0.0)
}

/// A circular-orbit thermal environment: period, eclipse fraction and
/// the three flux components a nadir-facing radiator absorbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Orbit {
    /// Orbital period, s.
    pub period_s: f64,
    /// Fraction of the period spent in the Earth's shadow, `[0, 1)`.
    pub eclipse_fraction: f64,
    /// Direct solar flux while sunlit, W/m².
    pub solar_w_m2: f64,
    /// Albedo (Earth-reflected) flux while sunlit, W/m².
    pub albedo_w_m2: f64,
    /// Earth infrared flux, W/m² — present through eclipse too.
    pub earth_ir_w_m2: f64,
}

impl Orbit {
    /// A representative 90-minute low-Earth orbit: ~36 % eclipse, full
    /// solar constant, 30 % albedo, 240 W/m² Earth IR — the CubeSat
    /// hot/cold cycling case.
    pub fn leo_90min() -> Self {
        Self {
            period_s: 5_400.0,
            eclipse_fraction: 0.36,
            solar_w_m2: SOLAR_CONSTANT,
            albedo_w_m2: 0.3 * SOLAR_CONSTANT,
            earth_ir_w_m2: 240.0,
        }
    }

    /// Absorbed environmental flux at an orbit phase `t` seconds after
    /// sunrise (periodic): solar + albedo while sunlit, Earth IR
    /// always.
    pub fn flux_at(&self, t_s: f64) -> f64 {
        let phase = (t_s / self.period_s).rem_euclid(1.0);
        if phase < 1.0 - self.eclipse_fraction {
            self.solar_w_m2 + self.albedo_w_m2 + self.earth_ir_w_m2
        } else {
            self.earth_ir_w_m2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atmosphere_matches_isa_anchors() {
        let sea = atmosphere_at(0.0).unwrap();
        assert!((sea.ambient.value() - 15.0).abs() < 1e-9);
        assert!((sea.pressure_ratio - 1.0).abs() < 1e-12);
        let cruise = atmosphere_at(11_000.0).unwrap();
        assert!((cruise.ambient.value() + 56.5).abs() < 0.1);
        assert!(cruise.pressure_ratio < 0.25);
        assert!(atmosphere_at(30_000.0).is_err());
    }

    #[test]
    fn film_coefficient_derates_with_altitude() {
        let h0 = HeatTransferCoeff::new(40.0);
        let h_cruise = altitude_derated_h(h0, 11_000.0).unwrap();
        // √(0.223) ≈ 0.47 of the sea-level value.
        assert!(h_cruise.value() < 20.0 && h_cruise.value() > 15.0);
        // Monotone in altitude.
        let h_mid = altitude_derated_h(h0, 5_000.0).unwrap();
        assert!(h_cruise.value() < h_mid.value() && h_mid.value() < h0.value());
    }

    #[test]
    fn solar_flux_tracks_the_sun() {
        // Equator, equinox, noon: the full constant.
        assert!((solar_flux(0.0, 0.0, 12.0) - SOLAR_CONSTANT).abs() < 1e-9);
        // Midnight: dark.
        assert_eq!(solar_flux(0.0, 0.0, 0.0), 0.0);
        // 45° latitude sees less than the equator at noon.
        assert!(solar_flux(45.0, 0.0, 12.0) < SOLAR_CONSTANT);
        // Summer declination helps the north.
        assert!(solar_flux(45.0, 23.44, 12.0) > solar_flux(45.0, 0.0, 12.0));
    }

    #[test]
    fn orbit_cycle_shadows_and_repeats() {
        let orbit = Orbit::leo_90min();
        let sunlit = orbit.flux_at(0.0);
        assert!(
            (sunlit - (orbit.solar_w_m2 + orbit.albedo_w_m2 + orbit.earth_ir_w_m2)).abs() < 1e-9
        );
        // Deep in eclipse only Earth IR remains.
        let dark = orbit.flux_at(0.99 * orbit.period_s);
        assert!((dark - orbit.earth_ir_w_m2).abs() < 1e-9);
        // Periodic.
        assert_eq!(
            orbit.flux_at(10.0),
            orbit.flux_at(10.0 + 3.0 * orbit.period_s)
        );
    }
}
