//! The adaptive implicit transient driver: θ-scheme stepping of the
//! finite-volume model through a [`MissionProfile`], built for the
//! 10⁴–10⁶-step trajectories a flight or orbit mission needs.
//!
//! # Formulation
//!
//! The semi-discrete problem is `C·dT/dt + A·T = b(t)` with `C` the
//! diagonal capacity matrix (J/K) and `A` the steady conduction
//! operator. One θ-step of length `dt` solves for the *increment*
//! `δ = T^{n+1} − T^n`:
//!
//! ```text
//! (C/dt + θ·A)·δ = θ·b^{n+1} + (1−θ)·b^n − A·T^n
//! ```
//!
//! θ = 1 is backward Euler (first order, L-stable), θ = ½ the
//! trapezoidal rule (second order, A-stable). The increment form keeps
//! the PCG start vector at zero — already within `O(dt)` of the answer
//! — which is the warm start the workspace caches were built for.
//!
//! # Step control and factor reuse
//!
//! The error estimate compares the implicit increment against an
//! explicit-Euler predictor; the weighted-RMS of the difference drives
//! a standard accept/reject controller. Crucially the controller
//! *quantises* the step size: a new `dt` is adopted only when the
//! suggestion clears a growth/shrink trigger, so long streaks of
//! identical `dt` (and therefore an unchanged θ-system) let the
//! workspace reuse its IC(0) factors / multigrid hierarchy across
//! thousands of solves. Boundary conditions are reapplied only when the
//! sampled profile state actually changes bits, and the radiation
//! linearisation is lagged behind a drift threshold for the same
//! reason.

use aeropack_obs::counter;
use aeropack_solver::{
    solve_sparse_into, CsrMatrix, Fingerprint, PcgWorkspace, SolverConfig, SolverStats,
};
use aeropack_thermal::{radiation_coefficient, Face, FaceBc, FvField, FvModel};
use aeropack_units::{Celsius, HeatTransferCoeff};

use crate::checkpoint::Checkpoint;
use crate::profile::{BoundaryState, MissionProfile};
use crate::MissionError;

/// The implicit time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// θ = 1: first order, L-stable — the robust default for stiff
    /// start-up transients.
    BackwardEuler,
    /// θ = ½: second order, A-stable — the accuracy choice for smooth
    /// mission profiles.
    Trapezoidal,
}

impl Scheme {
    /// The θ weight of the scheme.
    pub fn theta(self) -> f64 {
        match self {
            Scheme::BackwardEuler => 1.0,
            Scheme::Trapezoidal => 0.5,
        }
    }
}

/// Tuning for the embedded-error adaptive step controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Initial step length, s.
    pub dt_init: f64,
    /// Smallest step the controller may take, s. At this floor a step
    /// is accepted even over tolerance (counted in
    /// [`MissionStats::forced`]).
    pub dt_min: f64,
    /// Largest step the controller may take, s.
    pub dt_max: f64,
    /// Relative tolerance on the per-cell temperature increment.
    pub rel_tol: f64,
    /// Absolute tolerance, K.
    pub abs_tol: f64,
    /// Safety factor on the step-size suggestion.
    pub safety: f64,
    /// Largest single-step growth factor.
    pub max_growth: f64,
    /// Smallest single-step shrink factor.
    pub min_shrink: f64,
    /// Adopt a larger step only when the suggestion exceeds this
    /// multiple of the current step — the quantisation that preserves
    /// θ-system (and preconditioner-factor) reuse.
    pub growth_trigger: f64,
    /// Adopt a smaller step (without a rejection) only below this
    /// multiple of the current step.
    pub shrink_trigger: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            dt_init: 1.0,
            dt_min: 1e-3,
            dt_max: 60.0,
            rel_tol: 1e-4,
            abs_tol: 1e-3,
            safety: 0.9,
            max_growth: 2.0,
            min_shrink: 0.2,
            growth_trigger: 1.4,
            shrink_trigger: 0.75,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), MissionError> {
        let pos = [
            self.dt_init,
            self.dt_min,
            self.dt_max,
            self.rel_tol,
            self.abs_tol,
            self.safety,
        ];
        if pos.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(MissionError::invalid(
                "adaptive config values must be positive and finite",
            ));
        }
        if self.dt_min > self.dt_max || self.dt_init < self.dt_min || self.dt_init > self.dt_max {
            return Err(MissionError::invalid(
                "adaptive config needs dt_min ≤ dt_init ≤ dt_max",
            ));
        }
        if self.max_growth.is_nan()
            || self.max_growth <= 1.0
            || self.min_shrink.is_nan()
            || self.min_shrink <= 0.0
            || self.min_shrink >= 1.0
        {
            return Err(MissionError::invalid(
                "adaptive config needs max_growth > 1 and 0 < min_shrink < 1",
            ));
        }
        if self.growth_trigger.is_nan()
            || self.growth_trigger < 1.0
            || self.shrink_trigger.is_nan()
            || self.shrink_trigger > 1.0
        {
            return Err(MissionError::invalid(
                "adaptive config needs growth_trigger ≥ 1 ≥ shrink_trigger",
            ));
        }
        Ok(())
    }
}

/// How the step length is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepControl {
    /// A constant step — the reference mode for convergence studies.
    Fixed {
        /// Step length, s.
        dt: f64,
    },
    /// Embedded-error adaptive stepping.
    Adaptive(AdaptiveConfig),
}

/// A face radiating to the profile's sink temperature through a lagged
/// linearised coefficient, and absorbing the profile's environmental
/// flux.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiatingFace {
    /// Which exterior face radiates.
    pub face: Face,
    /// Surface emissivity `ε ∈ (0, 1]` for the outgoing linearised
    /// exchange.
    pub emissivity: f64,
    /// Surface absorptivity `α ∈ [0, 1]` applied to the profile's
    /// incident `flux_w_m2`.
    pub absorptivity: f64,
}

/// Configuration of a [`MissionDriver`].
#[derive(Debug, Clone)]
pub struct MissionConfig {
    scheme: Scheme,
    control: StepControl,
    convective_faces: Vec<Face>,
    radiating: Option<RadiatingFace>,
    relinearize_dk: f64,
    max_steps: usize,
}

impl MissionConfig {
    /// Starts a configuration for `scheme` with adaptive stepping at
    /// the default tolerances, no convective faces and no radiation.
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            control: StepControl::Adaptive(AdaptiveConfig::default()),
            convective_faces: Vec::new(),
            radiating: None,
            relinearize_dk: 0.5,
            max_steps: 2_000_000,
        }
    }

    /// Sets the step-control mode.
    pub fn control(mut self, control: StepControl) -> Self {
        self.control = control;
        self
    }

    /// Adds a face driven by the profile's convective state
    /// (`h`, `ambient`).
    pub fn convective_face(mut self, face: Face) -> Self {
        self.convective_faces.push(face);
        self
    }

    /// Sets the radiating face.
    pub fn radiating_face(mut self, rad: RadiatingFace) -> Self {
        self.radiating = Some(rad);
        self
    }

    /// Temperature drift (surface or sink), K, beyond which the
    /// radiation linearisation is refreshed. Larger values trade
    /// accuracy for longer matrix-reuse streaks.
    pub fn relinearize_dk(mut self, dk: f64) -> Self {
        self.relinearize_dk = dk;
        self
    }

    /// Caps the total number of accepted steps [`MissionDriver::run_to_end`]
    /// may take.
    pub fn max_steps(mut self, max: usize) -> Self {
        self.max_steps = max;
        self
    }

    fn validate(&self) -> Result<(), MissionError> {
        match &self.control {
            StepControl::Fixed { dt } => {
                if !(dt.is_finite() && *dt > 0.0) {
                    return Err(MissionError::invalid(
                        "fixed dt must be positive and finite",
                    ));
                }
            }
            StepControl::Adaptive(cfg) => cfg.validate()?,
        }
        if let Some(rad) = &self.radiating {
            if !(rad.emissivity > 0.0 && rad.emissivity <= 1.0) {
                return Err(MissionError::invalid("emissivity must lie in (0, 1]"));
            }
            if !(0.0..=1.0).contains(&rad.absorptivity) {
                return Err(MissionError::invalid("absorptivity must lie in [0, 1]"));
            }
            if self.convective_faces.contains(&rad.face) {
                return Err(MissionError::invalid(
                    "a face cannot be both convective and radiating",
                ));
            }
        }
        if self.relinearize_dk.is_nan() || self.relinearize_dk <= 0.0 {
            return Err(MissionError::invalid("relinearize_dk must be positive"));
        }
        if self.max_steps == 0 {
            return Err(MissionError::invalid("max_steps must be positive"));
        }
        Ok(())
    }
}

/// Counters accumulated over a driver's life.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissionStats {
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected attempts (over tolerance, retried at a smaller step).
    pub rejected: usize,
    /// Steps accepted *over* tolerance because `dt` hit the floor.
    pub forced: usize,
    /// Linear solves performed (accepted + rejected attempts).
    pub solves: usize,
    /// Total PCG iterations across all solves.
    pub solver_iterations: usize,
    /// θ-system numeric rebuilds (operator values or `dt` changed).
    pub matrix_rebuilds: usize,
    /// Steps that reused the θ-system bit-unchanged.
    pub matrix_reuses: usize,
    /// Solves whose preconditioner factors / multigrid hierarchy were
    /// reused from the workspace snapshot — the warm-solve evidence.
    pub factor_reuses: usize,
    /// Radiation relinearisations.
    pub relinearizations: usize,
    /// Smallest accepted step, s (0 before the first step).
    pub min_dt: f64,
    /// Largest accepted step, s.
    pub max_dt: f64,
}

/// What one accepted step did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Mission time after the step, s.
    pub time_s: f64,
    /// The accepted step length, s.
    pub dt_s: f64,
    /// Weighted-RMS error estimate of the accepted step (0 in fixed
    /// mode).
    pub error: f64,
    /// Rejected attempts before this acceptance.
    pub rejections: usize,
}

/// Lagged radiation linearisation state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RadLinState {
    /// Surface temperature at the last linearisation, °C.
    pub lin_surface_c: f64,
    /// Sink temperature at the last linearisation, °C.
    pub lin_sink_c: f64,
    /// The linearised coefficient `εσ(Ts²+T∞²)(Ts+T∞)`, W/(m²·K).
    pub h_r: f64,
}

/// Bit-exact key of the boundary state actually applied to the model —
/// reassembly happens only when this changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AppliedKey {
    ambient: u64,
    h: u64,
    sink: u64,
    h_r: u64,
}

impl AppliedKey {
    fn none() -> Self {
        Self {
            ambient: u64::MAX,
            h: u64::MAX,
            sink: u64::MAX,
            h_r: u64::MAX,
        }
    }
}

/// Per-cell source shaping injected on top of the profile: called with
/// the attempt's target time and the composed right-hand side (W per
/// cell) to add manufactured or scripted heat.
pub type SourceHook = Box<dyn Fn(f64, &mut [f64]) + Send + Sync>;

/// The adaptive θ-scheme transient driver.
///
/// See the [module docs](self) for the formulation; the crate docs for
/// a worked example.
pub struct MissionDriver {
    model: FvModel,
    profile: MissionProfile,
    config: MissionConfig,
    theta: f64,
    t_end: f64,

    // Trajectory state.
    time_s: f64,
    dt: f64,
    step_index: u64,
    temps: Vec<f64>,
    rad_state: Option<RadLinState>,

    // Static model data.
    cap: Vec<f64>,
    base_sources: Vec<f64>,
    rad_cells: Vec<usize>,
    rad_cell_area: f64,

    // Assembled systems.
    a: CsrMatrix,
    b_bc: Vec<f64>,
    b_now: Vec<f64>,
    m: Option<CsrMatrix>,
    m_dt_bits: u64,
    applied: AppliedKey,

    // Scratch and solver state.
    at: Vec<f64>,
    rhs: Vec<f64>,
    delta: Vec<f64>,
    b_next: Vec<f64>,
    workspace: PcgWorkspace,
    solver_config: SolverConfig,

    source_hook: Option<SourceHook>,
    stats: MissionStats,
    dt_history: Vec<f64>,
}

impl std::fmt::Debug for MissionDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MissionDriver")
            .field("time_s", &self.time_s)
            .field("t_end", &self.t_end)
            .field("dt", &self.dt)
            .field("step_index", &self.step_index)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MissionDriver {
    /// Creates a driver from a uniform initial temperature.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or a model the
    /// solver rejects.
    pub fn new(
        model: FvModel,
        profile: MissionProfile,
        config: MissionConfig,
        initial: Celsius,
    ) -> Result<Self, MissionError> {
        let n = model.grid().cell_count();
        let temps = vec![initial.value(); n];
        Self::init(model, profile, config, temps, 0.0, None, 0, None)
    }

    /// Creates a driver from an explicit initial field (a steady-state
    /// solve, a prior mission's end state, …).
    ///
    /// # Errors
    ///
    /// Returns an error when the field does not match the model's grid
    /// or the configuration is invalid.
    pub fn with_initial_field(
        model: FvModel,
        profile: MissionProfile,
        config: MissionConfig,
        field: &FvField,
    ) -> Result<Self, MissionError> {
        if field.cell_count() != model.grid().cell_count() {
            return Err(MissionError::invalid(
                "initial field does not match the grid",
            ));
        }
        let temps = field.temperatures().to_vec();
        Self::init(model, profile, config, temps, 0.0, None, 0, None)
    }

    /// Recreates a driver mid-mission from a [`Checkpoint`], bit-exactly:
    /// continuing from a restored driver reproduces the original
    /// trajectory's remaining steps.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint does not match the model's
    /// grid or lies outside the profile.
    pub fn restore(
        model: FvModel,
        profile: MissionProfile,
        config: MissionConfig,
        checkpoint: &Checkpoint,
    ) -> Result<Self, MissionError> {
        if checkpoint.temperatures.len() != model.grid().cell_count() {
            return Err(MissionError::invalid(
                "checkpoint field does not match the grid",
            ));
        }
        if checkpoint.time_s.is_nan()
            || checkpoint.time_s < 0.0
            || checkpoint.time_s > profile.total_duration()
        {
            return Err(MissionError::invalid("checkpoint time outside the profile"));
        }
        let rad = checkpoint.radiation.map(|[s, sink, h_r]| RadLinState {
            lin_surface_c: s,
            lin_sink_c: sink,
            h_r,
        });
        Self::init(
            model,
            profile,
            config,
            checkpoint.temperatures.clone(),
            checkpoint.time_s,
            Some(checkpoint.dt_s),
            checkpoint.step,
            rad,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn init(
        mut model: FvModel,
        profile: MissionProfile,
        config: MissionConfig,
        temps: Vec<f64>,
        time_s: f64,
        dt_override: Option<f64>,
        step_index: u64,
        rad_override: Option<RadLinState>,
    ) -> Result<Self, MissionError> {
        config.validate()?;
        let theta = config.scheme.theta();
        let t_end = profile.total_duration();
        let n = temps.len();

        let cap = model.capacities();
        if cap.iter().any(|&c| c.is_nan() || c <= 0.0) {
            return Err(MissionError::invalid(
                "cell heat capacities must be positive",
            ));
        }
        // Snapshot the source layout, then zero the model's own sources
        // so every assembly returns a pure boundary-condition `b`; the
        // driver re-adds `power_scale(t) · base_sources` itself.
        let base_sources = model.sources().to_vec();
        model.scale_sources(0.0);

        let (rad_cells, rad_cell_area) = match &config.radiating {
            Some(rad) => face_cells(&model, rad.face),
            None => (Vec::new(), 0.0),
        };

        let dt = match (&config.control, dt_override) {
            (_, Some(dt)) => dt,
            (StepControl::Fixed { dt }, None) => *dt,
            (StepControl::Adaptive(cfg), None) => cfg.dt_init,
        };
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MissionError::invalid("step length must be positive"));
        }

        let state0 = profile.sample(time_s);
        let rad_state = match &config.radiating {
            Some(rad) => Some(match rad_override {
                Some(r) => r,
                None => {
                    let surface = mean_over(&temps, &rad_cells);
                    linearize(rad.emissivity, surface, state0.sink.value())?
                }
            }),
            None => None,
        };

        let mut solver_config = model
            .solver_config()
            .clone()
            .context("mission transient")
            .grid_dims(model.grid().shape())
            .record_history(false);
        // Driver policy: the stock Jacobi preconditioner has no setup
        // to amortise, but a mission is exactly the repeated-solve
        // shape the factor caches serve — upgrade to geometric
        // multigrid (the grid shape is always declared here) unless
        // the model was explicitly configured otherwise.
        if solver_config.get_preconditioner() == aeropack_solver::Precond::Jacobi
            && !solver_config.get_mixed_precision()
        {
            solver_config = solver_config.preconditioner(aeropack_solver::Precond::Multigrid);
        }

        let mut driver = Self {
            model,
            profile,
            config,
            theta,
            t_end,
            time_s,
            dt,
            step_index,
            temps,
            rad_state,
            cap,
            base_sources,
            rad_cells,
            rad_cell_area,
            a: CsrMatrix::from_row_fn(1, 1, |_, out| out.push((0, 1.0))),
            b_bc: Vec::new(),
            b_now: vec![0.0; n],
            m: None,
            m_dt_bits: 0,
            applied: AppliedKey::none(),
            at: vec![0.0; n],
            rhs: vec![0.0; n],
            delta: vec![0.0; n],
            b_next: vec![0.0; n],
            workspace: PcgWorkspace::new(),
            solver_config,
            source_hook: None,
            stats: MissionStats::default(),
            dt_history: Vec::new(),
        };
        driver.apply_bcs(&state0);
        driver.compose_rhs_into_b_now(time_s, &state0);
        Ok(driver)
    }

    /// Injects a per-step source shaping hook (manufactured solutions,
    /// scripted loads). Replaces any previous hook and recomposes the
    /// current right-hand side.
    pub fn set_source_hook(&mut self, hook: SourceHook) {
        self.source_hook = Some(hook);
        let state = self.profile.sample(self.time_s);
        self.compose_rhs_into_b_now(self.time_s, &state);
    }

    /// Mission time, s.
    pub fn time(&self) -> f64 {
        self.time_s
    }

    /// Whether the mission has reached the end of its profile.
    pub fn finished(&self) -> bool {
        self.time_s >= self.t_end
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MissionStats {
        &self.stats
    }

    /// The underlying model (sources zeroed; boundary conditions track
    /// the profile).
    pub fn model(&self) -> &FvModel {
        &self.model
    }

    /// The accepted step lengths so far, s — from driver creation, so a
    /// restored driver records only its own continuation.
    pub fn dt_history(&self) -> &[f64] {
        &self.dt_history
    }

    /// The current temperature field.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed driver (lengths match by
    /// construction).
    pub fn field(&self) -> Result<FvField, MissionError> {
        Ok(self.model.field_from_temperatures(self.temps.clone())?)
    }

    /// Raw per-cell temperatures, °C, grid order.
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Total thermal energy relative to 0 °C: `Σ capᵢ·Tᵢ`, J — the
    /// quantity the conservation tests track.
    pub fn thermal_energy(&self) -> f64 {
        self.cap.iter().zip(&self.temps).map(|(c, t)| c * t).sum()
    }

    /// Captures the full trajectory state needed to resume bit-exactly.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            step: self.step_index,
            time_s: self.time_s,
            dt_s: self.dt,
            temperatures: self.temps.clone(),
            radiation: self
                .rad_state
                .map(|r| [r.lin_surface_c, r.lin_sink_c, r.h_r]),
        }
    }

    /// A 64-bit fingerprint of the trajectory so far: every accepted
    /// step length plus the current field, bit-exact.
    pub fn trajectory_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("mission.trajectory");
        fp.write_u64(self.step_index);
        fp.write_f64(self.time_s);
        fp.write_f64s(&self.dt_history);
        fp.write_f64s(&self.temps);
        fp.finish()
    }

    /// Runs until the end of the profile (or `max_steps`).
    ///
    /// # Errors
    ///
    /// Returns an error when a linear solve fails or the step budget is
    /// exhausted before the profile ends.
    pub fn run_to_end(&mut self) -> Result<(), MissionError> {
        let mut steps = 0usize;
        while !self.finished() {
            if steps >= self.config.max_steps {
                return Err(MissionError::invalid(format!(
                    "mission exceeded max_steps = {} at t = {:.3} s of {:.3} s",
                    self.config.max_steps, self.time_s, self.t_end
                )));
            }
            self.step()?;
            steps += 1;
        }
        Ok(())
    }

    /// Advances one accepted step (retrying rejected attempts
    /// internally).
    ///
    /// # Errors
    ///
    /// Returns an error when the mission is already finished or a
    /// linear solve fails.
    pub fn step(&mut self) -> Result<StepOutcome, MissionError> {
        if self.finished() {
            return Err(MissionError::invalid("mission profile already finished"));
        }
        let mut rejections = 0usize;
        loop {
            let remaining = self.t_end - self.time_s;
            let clamped = remaining <= self.dt;
            let dt_att = if clamped { remaining } else { self.dt };
            let t_next = if clamped {
                self.t_end
            } else {
                self.time_s + dt_att
            };
            let state = self.profile.sample(t_next);
            self.apply_bcs(&state);
            self.compose_rhs(t_next, &state);
            self.ensure_theta_system(dt_att);

            // rhs = θ·b_next + (1−θ)·b_now − A·T.
            let threads = self.solver_config.get_threads();
            self.a.spmv_into(&self.temps, &mut self.at, threads);
            let theta = self.theta;
            for i in 0..self.rhs.len() {
                self.rhs[i] = theta * self.b_next[i] + (1.0 - theta) * self.b_now[i] - self.at[i];
            }

            self.delta.fill(0.0);
            let m = self
                .m
                .as_ref()
                .expect("θ-system built by ensure_theta_system");
            let stats = solve_sparse_into(
                &mut self.workspace,
                m,
                &self.rhs,
                &mut self.delta,
                &self.solver_config,
            )
            .map_err(MissionError::from)?;
            self.record_solve(&stats);

            let (accepted, err, at_floor) = self.judge(dt_att);
            if accepted {
                for (t, d) in self.temps.iter_mut().zip(&self.delta) {
                    *t += d;
                }
                self.time_s = t_next;
                self.step_index += 1;
                self.stats.accepted += 1;
                if at_floor {
                    self.stats.forced += 1;
                    counter!("mission.steps.forced");
                }
                if self.stats.min_dt == 0.0 || dt_att < self.stats.min_dt {
                    self.stats.min_dt = dt_att;
                }
                if dt_att > self.stats.max_dt {
                    self.stats.max_dt = dt_att;
                }
                self.dt_history.push(dt_att);
                counter!("mission.steps.accepted");
                std::mem::swap(&mut self.b_now, &mut self.b_next);
                if !clamped {
                    self.adapt_dt(err);
                }
                self.maybe_relinearize(&state);
                return Ok(StepOutcome {
                    time_s: self.time_s,
                    dt_s: dt_att,
                    error: err,
                    rejections,
                });
            }

            rejections += 1;
            self.stats.rejected += 1;
            counter!("mission.steps.rejected");
            self.shrink_dt(err);
        }
    }

    /// Accept/reject the solved increment: compares against the
    /// explicit-Euler predictor `δ̂ᵢ = dt·(b_nowᵢ − (A·T)ᵢ)/capᵢ` in a
    /// weighted-RMS norm. Returns `(accepted, err, at_floor)`.
    fn judge(&self, dt_att: f64) -> (bool, f64, bool) {
        let cfg = match &self.config.control {
            StepControl::Fixed { .. } => return (true, 0.0, false),
            StepControl::Adaptive(cfg) => cfg,
        };
        let n = self.delta.len();
        let mut sum = 0.0;
        for i in 0..n {
            let pred = dt_att * (self.b_now[i] - self.at[i]) / self.cap[i];
            let scale = cfg.abs_tol + cfg.rel_tol * (self.temps[i] + self.delta[i]).abs();
            let e = (self.delta[i] - pred) / scale;
            sum += e * e;
        }
        let err = (sum / n as f64).sqrt();
        let at_floor = dt_att <= cfg.dt_min * (1.0 + 1e-12);
        (err <= 1.0 || at_floor, err, at_floor)
    }

    /// Post-acceptance controller: suggest `dt·safety·err^(−1/2)`, but
    /// only adopt it past the growth/shrink triggers so factor-reuse
    /// streaks survive.
    fn adapt_dt(&mut self, err: f64) {
        let cfg = match &self.config.control {
            StepControl::Fixed { .. } => return,
            StepControl::Adaptive(cfg) => *cfg,
        };
        let factor = if err > 0.0 {
            (cfg.safety / err.sqrt()).clamp(cfg.min_shrink, cfg.max_growth)
        } else {
            cfg.max_growth
        };
        let suggestion = (self.dt * factor).clamp(cfg.dt_min, cfg.dt_max);
        if suggestion >= self.dt * cfg.growth_trigger || suggestion <= self.dt * cfg.shrink_trigger
        {
            self.dt = suggestion;
        }
    }

    /// Post-rejection controller: always shrink.
    fn shrink_dt(&mut self, err: f64) {
        let cfg = match &self.config.control {
            StepControl::Fixed { .. } => return,
            StepControl::Adaptive(cfg) => *cfg,
        };
        let factor = if err > 0.0 {
            (cfg.safety / err.sqrt()).clamp(cfg.min_shrink, 0.9)
        } else {
            cfg.min_shrink
        };
        self.dt = (self.dt * factor).max(cfg.dt_min);
    }

    /// Applies the sampled boundary state to the model and reassembles
    /// the operator — but only when the applied bits actually change.
    fn apply_bcs(&mut self, state: &BoundaryState) {
        let h_r_bits = self.rad_state.map_or(u64::MAX - 1, |r| r.h_r.to_bits());
        let key = AppliedKey {
            ambient: state.ambient.value().to_bits(),
            h: state.h.value().to_bits(),
            sink: state.sink.value().to_bits(),
            h_r: h_r_bits,
        };
        if key == self.applied {
            self.stats.matrix_reuses += 1;
            counter!("mission.matrix.reuses");
            return;
        }
        for &face in &self.config.convective_faces {
            self.model.set_face_bc(
                face,
                FaceBc::Convection {
                    h: state.h,
                    ambient: state.ambient,
                },
            );
        }
        if let (Some(rad), Some(lin)) = (&self.config.radiating, &self.rad_state) {
            self.model.set_face_bc(
                rad.face,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(lin.h_r),
                    ambient: state.sink,
                },
            );
        }
        let (a_new, b_bc) = self.model.assemble_operator();
        let a_changed = self.b_bc.is_empty() || a_new.values() != self.a.values();
        self.a = a_new;
        self.b_bc = b_bc;
        if a_changed {
            // Operator values moved: the θ-system must be rebuilt (the
            // workspace will refactor on the value change).
            self.m = None;
        } else {
            self.stats.matrix_reuses += 1;
            counter!("mission.matrix.reuses");
        }
        self.applied = key;
    }

    /// Composes the full right-hand side at `t` into `b_next`:
    /// boundary terms + scaled dissipation + absorbed environmental
    /// flux + hook.
    fn compose_rhs(&mut self, t: f64, state: &BoundaryState) {
        self.b_next.copy_from_slice(&self.b_bc);
        if state.power_scale != 0.0 {
            for (b, s) in self.b_next.iter_mut().zip(&self.base_sources) {
                *b += state.power_scale * s;
            }
        }
        if let Some(rad) = &self.config.radiating {
            let q = rad.absorptivity * state.flux_w_m2 * self.rad_cell_area;
            if q != 0.0 {
                for &c in &self.rad_cells {
                    self.b_next[c] += q;
                }
            }
        }
        if let Some(hook) = &self.source_hook {
            hook(t, &mut self.b_next);
        }
    }

    /// Same composition, into `b_now` (used at construction/restore).
    fn compose_rhs_into_b_now(&mut self, t: f64, state: &BoundaryState) {
        self.compose_rhs(t, state);
        self.b_now.copy_from_slice(&self.b_next);
    }

    /// Builds (or keeps) the θ-system `M = C/dt + θ·A`.
    fn ensure_theta_system(&mut self, dt: f64) {
        let dt_bits = dt.to_bits();
        if self.m.is_some() && self.m_dt_bits == dt_bits {
            return;
        }
        let pattern = self.a.pattern();
        let row_offsets = self.a.row_offsets();
        let col_indices = self.a.col_indices();
        let values = self.a.values();
        let cap = &self.cap;
        let theta = self.theta;
        let threads = self.solver_config.get_threads();
        let m = CsrMatrix::from_pattern_row_fn(&pattern, threads, |row, out| {
            for idx in row_offsets[row]..row_offsets[row + 1] {
                let col = col_indices[idx];
                let mut v = theta * values[idx];
                if col == row {
                    v += cap[row] / dt;
                }
                out.push((col, v));
            }
        });
        self.m = Some(m);
        self.m_dt_bits = dt_bits;
        self.stats.matrix_rebuilds += 1;
        counter!("mission.matrix.rebuilds");
    }

    /// Refreshes the lagged radiation linearisation when the surface or
    /// sink temperature has drifted past the threshold. On a refresh
    /// the boundary conditions and `b_now` are immediately recomposed,
    /// keeping the invariant that the post-step state is fully
    /// determined by `(T, t, dt, rad_state)` — which is exactly what a
    /// [`Checkpoint`] captures, making restore bit-exact.
    fn maybe_relinearize(&mut self, state: &BoundaryState) {
        let Some(rad) = &self.config.radiating else {
            return;
        };
        let Some(lin) = &self.rad_state else {
            return;
        };
        let surface = mean_over(&self.temps, &self.rad_cells);
        let sink = state.sink.value();
        let dk = self.config.relinearize_dk;
        if (surface - lin.lin_surface_c).abs() > dk || (sink - lin.lin_sink_c).abs() > dk {
            if let Ok(new_lin) = linearize(rad.emissivity, surface, sink) {
                self.rad_state = Some(new_lin);
                self.stats.relinearizations += 1;
                counter!("mission.relinearizations");
                let state = *state;
                self.apply_bcs(&state);
                self.compose_rhs_into_b_now(self.time_s, &state);
            }
        }
    }

    fn record_solve(&mut self, stats: &SolverStats) {
        self.stats.solves += 1;
        self.stats.solver_iterations += stats.iterations;
        let factor_reused = stats.factorization.as_ref().is_some_and(|f| f.reused)
            || stats.spectral.as_ref().is_some_and(|s| s.reused);
        if factor_reused {
            self.stats.factor_reuses += 1;
        }
        counter!("solver.transient.solves");
        counter!("solver.transient.steps");
        counter!("solver.transient.iterations", stats.iterations);
    }
}

/// Cell indices on an exterior face and the per-cell face area.
fn face_cells(model: &FvModel, face: Face) -> (Vec<usize>, f64) {
    let (nx, ny, nz) = model.grid().shape();
    let (dx, dy, dz) = model.grid().spacing();
    let mut cells = Vec::new();
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let area = match face {
        Face::XMin | Face::XMax => dy * dz,
        Face::YMin | Face::YMax => dx * dz,
        Face::ZMin | Face::ZMax => dx * dy,
    };
    match face {
        Face::XMin | Face::XMax => {
            let i = if face == Face::XMin { 0 } else { nx - 1 };
            for k in 0..nz {
                for j in 0..ny {
                    cells.push(idx(i, j, k));
                }
            }
        }
        Face::YMin | Face::YMax => {
            let j = if face == Face::YMin { 0 } else { ny - 1 };
            for k in 0..nz {
                for i in 0..nx {
                    cells.push(idx(i, j, k));
                }
            }
        }
        Face::ZMin | Face::ZMax => {
            let k = if face == Face::ZMin { 0 } else { nz - 1 };
            for j in 0..ny {
                for i in 0..nx {
                    cells.push(idx(i, j, k));
                }
            }
        }
    }
    (cells, area)
}

fn mean_over(values: &[f64], cells: &[usize]) -> f64 {
    if cells.is_empty() {
        return 0.0;
    }
    cells.iter().map(|&c| values[c]).sum::<f64>() / cells.len() as f64
}

fn linearize(emissivity: f64, surface_c: f64, sink_c: f64) -> Result<RadLinState, MissionError> {
    let h = radiation_coefficient(emissivity, Celsius::new(surface_c), Celsius::new(sink_c))?;
    Ok(RadLinState {
        lin_surface_c: surface_c,
        lin_sink_c: sink_c,
        h_r: h.value(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MissionPhase;
    use aeropack_materials::Material;
    use aeropack_thermal::FvGrid;
    use aeropack_units::Power;

    fn plate_model() -> FvModel {
        let grid = FvGrid::new((0.1, 0.1, 0.01), (6, 6, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(10.0), (1, 1, 0), (5, 5, 1))
            .unwrap();
        model
    }

    fn constant_profile(duration_s: f64, h: f64, ambient: f64) -> MissionProfile {
        let state = BoundaryState {
            ambient: Celsius::new(ambient),
            h: HeatTransferCoeff::new(h),
            sink: Celsius::new(ambient),
            flux_w_m2: 0.0,
            power_scale: 1.0,
        };
        MissionProfile::new(vec![MissionPhase::constant("hold", duration_s, state)]).unwrap()
    }

    #[test]
    fn fixed_step_marches_to_the_end() {
        let config = MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Fixed { dt: 5.0 })
            .convective_face(Face::ZMax);
        let mut driver = MissionDriver::new(
            plate_model(),
            constant_profile(100.0, 25.0, 20.0),
            config,
            Celsius::new(20.0),
        )
        .unwrap();
        driver.run_to_end().unwrap();
        assert!((driver.time() - 100.0).abs() < 1e-9);
        assert_eq!(driver.stats().accepted, 20);
        assert_eq!(driver.stats().rejected, 0);
        // Dissipation heats the plate above ambient.
        assert!(driver.field().unwrap().max_temperature() > Celsius::new(20.0));
    }

    #[test]
    fn adaptive_grows_the_step_on_a_smooth_decay() {
        let config = MissionConfig::new(Scheme::Trapezoidal)
            .control(StepControl::Adaptive(AdaptiveConfig {
                dt_init: 0.5,
                dt_max: 30.0,
                ..AdaptiveConfig::default()
            }))
            .convective_face(Face::ZMax);
        let mut driver = MissionDriver::new(
            plate_model(),
            constant_profile(600.0, 25.0, 20.0),
            config,
            Celsius::new(60.0),
        )
        .unwrap();
        driver.run_to_end().unwrap();
        let stats = *driver.stats();
        assert!(stats.accepted > 0);
        // The controller must have grown dt well past the initial 0.5 s.
        assert!(stats.max_dt > 2.0, "max_dt = {}", stats.max_dt);
        // Long constant-dt streaks mean most steps reuse the θ-system.
        assert!(
            stats.matrix_reuses > stats.matrix_rebuilds,
            "reuses {} ≤ rebuilds {}",
            stats.matrix_reuses,
            stats.matrix_rebuilds
        );
        // Warm solves must have reused preconditioner state.
        assert!(stats.factor_reuses > 0, "no factor reuse: {stats:?}");
    }

    #[test]
    fn approaches_the_analytic_lumped_equilibrium() {
        // With high conductivity and long duration, the plate approaches
        // the lumped equilibrium T = T_amb + P/(h·A).
        let grid = FvGrid::new((0.1, 0.1, 0.01), (4, 4, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(5.0), (0, 0, 0), (4, 4, 1))
            .unwrap();
        let h = 50.0;
        let config = MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Adaptive(AdaptiveConfig {
                dt_max: 120.0,
                ..AdaptiveConfig::default()
            }))
            .convective_face(Face::ZMax);
        let mut driver = MissionDriver::new(
            model,
            constant_profile(20_000.0, h, 20.0),
            config,
            Celsius::new(20.0),
        )
        .unwrap();
        driver.run_to_end().unwrap();
        let expected = 20.0 + 5.0 / (h * 0.01);
        let got = driver.field().unwrap().mean_temperature().value();
        assert!(
            (got - expected).abs() < 0.5,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn radiating_face_cools_toward_deep_space() {
        let state = BoundaryState {
            ambient: Celsius::new(-270.0),
            h: HeatTransferCoeff::new(0.0),
            sink: Celsius::new(-270.0),
            flux_w_m2: 0.0,
            power_scale: 0.0,
        };
        let profile =
            MissionProfile::new(vec![MissionPhase::constant("eclipse", 2_000.0, state)]).unwrap();
        let grid = FvGrid::new((0.2, 0.2, 0.01), (4, 4, 1)).unwrap();
        let model = FvModel::new(grid, &Material::aluminum_6061());
        let config = MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Adaptive(AdaptiveConfig::default()))
            .radiating_face(RadiatingFace {
                face: Face::ZMax,
                emissivity: 0.85,
                absorptivity: 0.3,
            });
        let mut driver = MissionDriver::new(model, profile, config, Celsius::new(40.0)).unwrap();
        driver.run_to_end().unwrap();
        let end = driver.field().unwrap().mean_temperature().value();
        assert!(end < 30.0, "radiation barely cooled: {end}");
        assert!(driver.stats().relinearizations > 0);
    }

    #[test]
    fn solar_flux_heats_the_radiating_face() {
        let dark = BoundaryState {
            ambient: Celsius::new(-270.0),
            h: HeatTransferCoeff::new(0.0),
            sink: Celsius::new(-270.0),
            flux_w_m2: 0.0,
            power_scale: 0.0,
        };
        let sunlit = BoundaryState {
            flux_w_m2: 1361.0,
            ..dark
        };
        let profile =
            MissionProfile::new(vec![MissionPhase::constant("sun", 500.0, sunlit)]).unwrap();
        let profile_dark =
            MissionProfile::new(vec![MissionPhase::constant("dark", 500.0, dark)]).unwrap();
        let grid = FvGrid::new((0.2, 0.2, 0.01), (4, 4, 1)).unwrap();
        let config = MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Fixed { dt: 10.0 })
            .radiating_face(RadiatingFace {
                face: Face::ZMax,
                emissivity: 0.85,
                absorptivity: 0.9,
            });
        let model = FvModel::new(grid, &Material::aluminum_6061());
        let mut lit =
            MissionDriver::new(model.clone(), profile, config.clone(), Celsius::new(0.0)).unwrap();
        let mut shade = MissionDriver::new(model, profile_dark, config, Celsius::new(0.0)).unwrap();
        lit.run_to_end().unwrap();
        shade.run_to_end().unwrap();
        let t_lit = lit.field().unwrap().mean_temperature().value();
        let t_shade = shade.field().unwrap().mean_temperature().value();
        assert!(t_lit > t_shade + 1.0, "sun {t_lit} vs shade {t_shade}");
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        let config = MissionConfig::new(Scheme::Trapezoidal)
            .control(StepControl::Adaptive(AdaptiveConfig {
                dt_init: 0.5,
                ..AdaptiveConfig::default()
            }))
            .convective_face(Face::ZMax);
        let profile = constant_profile(300.0, 30.0, 15.0);

        // Reference run straight through.
        let mut reference = MissionDriver::new(
            plate_model(),
            profile.clone(),
            config.clone(),
            Celsius::new(50.0),
        )
        .unwrap();
        // Run halfway, checkpoint, keep going.
        let mut first = MissionDriver::new(
            plate_model(),
            profile.clone(),
            config.clone(),
            Celsius::new(50.0),
        )
        .unwrap();
        while first.time() < 150.0 {
            first.step().unwrap();
        }
        let checkpoint = first.checkpoint();
        first.run_to_end().unwrap();

        let mut resumed =
            MissionDriver::restore(plate_model(), profile, config, &checkpoint).unwrap();
        resumed.run_to_end().unwrap();
        reference.run_to_end().unwrap();

        // The resumed driver reproduces the original continuation
        // bit-for-bit, and both match the uninterrupted reference.
        assert_eq!(first.temperatures(), resumed.temperatures());
        assert_eq!(first.temperatures(), reference.temperatures());
        let tail = &first.dt_history()[first.dt_history().len() - resumed.dt_history().len()..];
        assert_eq!(tail, resumed.dt_history());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Fixed { dt: 0.0 })
            .validate()
            .is_err());
        assert!(MissionConfig::new(Scheme::BackwardEuler)
            .control(StepControl::Adaptive(AdaptiveConfig {
                dt_min: 10.0,
                dt_max: 1.0,
                ..AdaptiveConfig::default()
            }))
            .validate()
            .is_err());
        assert!(MissionConfig::new(Scheme::BackwardEuler)
            .convective_face(Face::ZMax)
            .radiating_face(RadiatingFace {
                face: Face::ZMax,
                emissivity: 0.9,
                absorptivity: 0.5,
            })
            .validate()
            .is_err());
        assert!(MissionConfig::new(Scheme::BackwardEuler)
            .radiating_face(RadiatingFace {
                face: Face::ZMin,
                emissivity: 1.5,
                absorptivity: 0.5,
            })
            .validate()
            .is_err());
    }
}
