//! Bit-exact trajectory checkpoints in two interchangeable encodings:
//! a compact little-endian binary format for checkpoint files along a
//! long mission, and a JSON format (f64 bits hex-encoded, so no
//! precision is lost to decimal round-tripping) for golden snapshots
//! and the serve wire.
//!
//! A checkpoint captures everything [`MissionDriver::restore`] needs to
//! continue a trajectory bit-for-bit: step index, mission time, the
//! controller's current step length, the temperature field, and the
//! lagged radiation linearisation.
//!
//! [`MissionDriver::restore`]: crate::transient::MissionDriver::restore

use aeropack_obs::report::{parse, JsonValue};
use aeropack_solver::Fingerprint;

use crate::MissionError;

/// Magic bytes opening the binary encoding (version in the last byte).
const MAGIC: &[u8; 8] = b"APCKPT\x00\x01";
/// Format tag of the JSON encoding.
const JSON_FORMAT: &str = "aeropack.mission.checkpoint.v1";

/// A resumable snapshot of a mission trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Accepted steps taken before this snapshot.
    pub step: u64,
    /// Mission time, s.
    pub time_s: f64,
    /// The controller's current step length, s.
    pub dt_s: f64,
    /// Per-cell temperatures, °C, grid order.
    pub temperatures: Vec<f64>,
    /// Lagged radiation linearisation
    /// `[surface °C, sink °C, h_r W/(m²·K)]`, if a radiating face is
    /// configured.
    pub radiation: Option<[f64; 3]>,
}

impl Checkpoint {
    /// A 64-bit content hash — two checkpoints hash equal iff every
    /// field is bit-identical.
    pub fn hash(&self) -> u64 {
        let mut fp = Fingerprint::new("mission.checkpoint");
        fp.write_u64(self.step);
        fp.write_f64(self.time_s);
        fp.write_f64(self.dt_s);
        fp.write_f64s(&self.temperatures);
        match &self.radiation {
            Some(rad) => {
                fp.write_bool(true);
                fp.write_f64s(rad);
            }
            None => fp.write_bool(false),
        }
        fp.finish()
    }

    /// Encodes to the compact binary format (little-endian, ~8 bytes
    /// per cell).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * (4 + self.temperatures.len() + 3));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.time_s.to_bits().to_le_bytes());
        out.extend_from_slice(&self.dt_s.to_bits().to_le_bytes());
        match &self.radiation {
            Some(rad) => {
                out.push(1);
                for v in rad {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.temperatures.len() as u64).to_le_bytes());
        for t in &self.temperatures {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`MissionError::Checkpoint`] for a bad magic, truncated
    /// payload, or trailing bytes.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, MissionError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let magic = cursor.take(8)?;
        if magic != MAGIC {
            return Err(MissionError::Checkpoint(
                "bad magic: not an aeropack mission checkpoint".into(),
            ));
        }
        let step = cursor.u64()?;
        let time_s = cursor.f64()?;
        let dt_s = cursor.f64()?;
        let radiation = match cursor.u8()? {
            0 => None,
            1 => Some([cursor.f64()?, cursor.f64()?, cursor.f64()?]),
            other => {
                return Err(MissionError::Checkpoint(format!(
                    "bad radiation flag {other}"
                )))
            }
        };
        let n = cursor.u64()? as usize;
        if n > bytes.len() / 8 {
            return Err(MissionError::Checkpoint(format!(
                "cell count {n} exceeds the payload"
            )));
        }
        let mut temperatures = Vec::with_capacity(n);
        for _ in 0..n {
            temperatures.push(cursor.f64()?);
        }
        if cursor.pos != bytes.len() {
            return Err(MissionError::Checkpoint(format!(
                "{} trailing bytes",
                bytes.len() - cursor.pos
            )));
        }
        Ok(Self {
            step,
            time_s,
            dt_s,
            temperatures,
            radiation,
        })
    }

    /// Encodes to the JSON format. Floats are hex-encoded IEEE-754
    /// bits; a human-readable `time_s` field rides along for
    /// inspection but is ignored on decode.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 20 * self.temperatures.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{JSON_FORMAT}\",\n"));
        out.push_str(&format!("  \"step\": {},\n", self.step));
        out.push_str(&format!("  \"time_s\": {},\n", self.time_s));
        out.push_str(&format!("  \"time\": \"{}\",\n", hex_bits(self.time_s)));
        out.push_str(&format!("  \"dt\": \"{}\",\n", hex_bits(self.dt_s)));
        match &self.radiation {
            Some(rad) => {
                out.push_str("  \"radiation\": [");
                for (i, v) in rad.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\"", hex_bits(*v)));
                }
                out.push_str("],\n");
            }
            None => out.push_str("  \"radiation\": null,\n"),
        }
        out.push_str("  \"temperatures\": [");
        for (i, t) in self.temperatures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", hex_bits(*t)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Decodes the JSON format.
    ///
    /// # Errors
    ///
    /// Returns [`MissionError::Checkpoint`] for malformed JSON, a wrong
    /// format tag, or bad hex floats.
    pub fn from_json(text: &str) -> Result<Self, MissionError> {
        let doc =
            parse(text).map_err(|e| MissionError::Checkpoint(format!("malformed JSON: {e}")))?;
        let format = doc.get("format").and_then(JsonValue::as_str).unwrap_or("");
        if format != JSON_FORMAT {
            return Err(MissionError::Checkpoint(format!(
                "unknown format tag {format:?}"
            )));
        }
        let step =
            doc.get("step")
                .and_then(JsonValue::as_number)
                .ok_or_else(|| MissionError::Checkpoint("missing step".into()))? as u64;
        let time_s = hex_field(&doc, "time")?;
        let dt_s = hex_field(&doc, "dt")?;
        let radiation = match doc.get("radiation") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::Array(items)) if items.len() == 3 => {
                let mut rad = [0.0; 3];
                for (slot, item) in rad.iter_mut().zip(items) {
                    *slot = hex_value(item, "radiation")?;
                }
                Some(rad)
            }
            Some(_) => {
                return Err(MissionError::Checkpoint(
                    "radiation must be null or a 3-element array".into(),
                ))
            }
        };
        let temperatures = match doc.get("temperatures") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|item| hex_value(item, "temperatures"))
                .collect::<Result<Vec<f64>, MissionError>>()?,
            _ => {
                return Err(MissionError::Checkpoint(
                    "missing temperatures array".into(),
                ))
            }
        };
        Ok(Self {
            step,
            time_s,
            dt_s,
            temperatures,
            radiation,
        })
    }
}

/// 16-hex-digit IEEE-754 bit encoding — lossless, unlike decimal.
fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex(s: &str, field: &str) -> Result<f64, MissionError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| MissionError::Checkpoint(format!("bad hex float {s:?} in {field}")))
}

fn hex_field(doc: &JsonValue, field: &str) -> Result<f64, MissionError> {
    doc.get(field)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| MissionError::Checkpoint(format!("missing field {field}")))
        .and_then(|s| parse_hex(s, field))
}

fn hex_value(item: &JsonValue, field: &str) -> Result<f64, MissionError> {
    item.as_str()
        .ok_or_else(|| MissionError::Checkpoint(format!("non-string entry in {field}")))
        .and_then(|s| parse_hex(s, field))
}

/// A bounds-checked byte reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MissionError> {
        if self.pos + n > self.bytes.len() {
            return Err(MissionError::Checkpoint("truncated checkpoint".into()));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, MissionError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, MissionError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, MissionError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward_checkpoint() -> Checkpoint {
        Checkpoint {
            step: 12_345,
            time_s: 1.0 / 3.0,
            dt_s: 0.1 + 0.2, // deliberately not exactly 0.3
            temperatures: vec![21.000000000000004, -56.5, 1e-308, -0.0, 88.125],
            radiation: Some([40.0 + 1e-13, -270.0, 4.567891234e-6]),
        }
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let cp = awkward_checkpoint();
        let decoded = Checkpoint::from_binary(&cp.to_binary()).unwrap();
        assert_eq!(cp, decoded);
        assert_eq!(cp.hash(), decoded.hash());
        // Bit-exact, not just approximately equal.
        for (a, b) in cp.temperatures.iter().zip(&decoded.temperatures) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let cp = awkward_checkpoint();
        let decoded = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, decoded);
        assert_eq!(cp.hash(), decoded.hash());

        let mut no_rad = cp;
        no_rad.radiation = None;
        let decoded = Checkpoint::from_json(&no_rad.to_json()).unwrap();
        assert_eq!(no_rad, decoded);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let cp = awkward_checkpoint();
        let bin = cp.to_binary();
        assert!(Checkpoint::from_binary(&bin[..bin.len() - 1]).is_err());
        assert!(Checkpoint::from_binary(b"NOTMAGIC").is_err());
        let mut extra = bin.clone();
        extra.push(0);
        assert!(Checkpoint::from_binary(&extra).is_err());

        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("not json").is_err());
        let wrong_tag = cp.to_json().replace("checkpoint.v1", "checkpoint.v9");
        assert!(Checkpoint::from_json(&wrong_tag).is_err());
        let bad_hex = cp
            .to_json()
            .replace(&format!("{:016x}", cp.dt_s.to_bits()), "zzzz");
        assert!(Checkpoint::from_json(&bad_hex).is_err());
    }

    #[test]
    fn hash_is_sensitive_to_every_field() {
        let cp = awkward_checkpoint();
        let base = cp.hash();
        let mut v = cp.clone();
        v.step += 1;
        assert_ne!(base, v.hash());
        let mut v = cp.clone();
        v.temperatures[2] = 1.0000000001e-308;
        assert_ne!(base, v.hash());
        let mut v = cp.clone();
        v.radiation = None;
        assert_ne!(base, v.hash());
        let mut v = cp;
        v.dt_s = f64::from_bits(v.dt_s.to_bits() + 1);
        assert_ne!(base, v.hash());
    }
}
