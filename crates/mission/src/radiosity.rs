//! Gebhart-factor radiosity exchange between grey diffuse surfaces.
//!
//! Given a view-factor matrix `F` and surface emissivities `ε`, the
//! Gebhart factors `B` solve
//!
//! ```text
//! Bᵢⱼ = εⱼ·Fᵢⱼ + Σₖ (1 − εₖ)·Fᵢₖ·Bₖⱼ   ⇔   (I − F·diag(1−ε))·B = F·diag(ε)
//! ```
//!
//! `Bᵢⱼ` is the fraction of the radiation *emitted* by surface `i` that
//! is *absorbed* by surface `j`, after any number of reflections. The
//! net heat lost by surface `i` is then
//! `Qᵢ = Σⱼ σ·εᵢ·Aᵢ·Bᵢⱼ·(Tᵢ⁴ − Tⱼ⁴)` — a form that conserves energy
//! pairwise and linearises into symmetric exchange conductances
//! `Gᵢⱼ = σ·εᵢ·Aᵢ·Bᵢⱼ·(Tᵢ² + Tⱼ²)(Tᵢ + Tⱼ)`, which is how the mission
//! driver couples radiation into the flow-network and FV solvers each
//! step.

use aeropack_thermal::{Network, NodeId, STEFAN_BOLTZMANN};
use aeropack_units::{Celsius, ThermalConductance};

use crate::viewfactor::ViewFactors;
use crate::MissionError;

/// Offset between the Celsius and Kelvin scales.
const KELVIN_OFFSET: f64 = 273.15;

/// A solved Gebhart radiosity network over `n` grey diffuse surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiationNetwork {
    areas: Vec<f64>,
    emissivities: Vec<f64>,
    /// Row-major Gebhart factors `B[i·n + j]`.
    gebhart: Vec<f64>,
}

impl RadiationNetwork {
    /// Solves the Gebhart factors for the given geometry and
    /// emissivities (one per surface, in `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns an error for a length mismatch, emissivities outside
    /// `(0, 1]`, or a singular reflection system (only possible for a
    /// non-physical view-factor matrix).
    pub fn new(view_factors: &ViewFactors, emissivities: &[f64]) -> Result<Self, MissionError> {
        let n = view_factors.len();
        if emissivities.len() != n {
            return Err(MissionError::invalid(format!(
                "expected {n} emissivities, got {}",
                emissivities.len()
            )));
        }
        if emissivities.iter().any(|&e| !(e > 0.0 && e <= 1.0)) {
            return Err(MissionError::invalid("emissivities must lie in (0, 1]"));
        }
        // Assemble M = I − F·diag(1−ε) and R = F·diag(ε), then solve
        // M·B = R by Gaussian elimination with partial pivoting — the
        // surface count is tiny (6 for a box enclosure), so a dense
        // solve is the right tool.
        let mut m = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let f = view_factors.get(i, j);
                m[i * n + j] = if i == j { 1.0 } else { 0.0 } - f * (1.0 - emissivities[j]);
                b[i * n + j] = f * emissivities[j];
            }
        }
        solve_dense(&mut m, &mut b, n)?;
        Ok(Self {
            areas: view_factors.areas().to_vec(),
            emissivities: emissivities.to_vec(),
            gebhart: b,
        })
    }

    /// Number of surfaces.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the network is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// The Gebhart factor `Bᵢⱼ`: the fraction of energy emitted by `i`
    /// that is absorbed by `j` after all reflections.
    pub fn gebhart(&self, i: usize, j: usize) -> f64 {
        self.gebhart[i * self.areas.len() + j]
    }

    /// Net radiative heat *lost* by each surface, W, at the given
    /// surface temperatures. Rows of the Gebhart matrix sum to 1 for a
    /// closed enclosure, so the returned powers sum to ~0.
    pub fn heat_flows(&self, temperatures: &[Celsius]) -> Result<Vec<f64>, MissionError> {
        let n = self.areas.len();
        if temperatures.len() != n {
            return Err(MissionError::invalid(format!(
                "expected {n} surface temperatures, got {}",
                temperatures.len()
            )));
        }
        let t4: Vec<f64> = temperatures
            .iter()
            .map(|t| (t.value() + KELVIN_OFFSET).powi(4))
            .collect();
        let mut q = vec![0.0; n];
        for i in 0..n {
            let scale = STEFAN_BOLTZMANN * self.emissivities[i] * self.areas[i];
            for j in 0..n {
                if i != j {
                    q[i] += scale * self.gebhart(i, j) * (t4[i] - t4[j]);
                }
            }
        }
        Ok(q)
    }

    /// The linearised exchange conductance between surfaces `i` and
    /// `j`, W/K, about the given temperatures:
    /// `Gᵢⱼ = σ·εᵢ·Aᵢ·Bᵢⱼ·(Tᵢ² + Tⱼ²)(Tᵢ + Tⱼ)`. Symmetric in `i, j`
    /// because the Gebhart matrix satisfies `εᵢ·Aᵢ·Bᵢⱼ = εⱼ·Aⱼ·Bⱼᵢ`.
    pub fn exchange_conductance(&self, i: usize, j: usize, ti: Celsius, tj: Celsius) -> f64 {
        let tik = ti.value() + KELVIN_OFFSET;
        let tjk = tj.value() + KELVIN_OFFSET;
        STEFAN_BOLTZMANN
            * self.emissivities[i]
            * self.areas[i]
            * self.gebhart(i, j)
            * (tik * tik + tjk * tjk)
            * (tik + tjk)
    }

    /// Couples the network into a resistive [`Network`] as linearised
    /// exchange conductances about the given node temperatures — the
    /// per-step radiation update of a flow-network mission model.
    /// `nodes[i]` is the network node standing for surface `i`. The
    /// caller re-invokes this (on a rebuilt network, or iteratively)
    /// as temperatures move; see the crate tests for the fixed-point
    /// pattern.
    ///
    /// # Errors
    ///
    /// Returns an error for a length mismatch or an invalid node.
    pub fn couple_into_network(
        &self,
        network: &mut Network,
        nodes: &[NodeId],
        temperatures: &[Celsius],
    ) -> Result<(), MissionError> {
        let n = self.areas.len();
        if nodes.len() != n || temperatures.len() != n {
            return Err(MissionError::invalid(format!(
                "expected {n} nodes and temperatures, got {} and {}",
                nodes.len(),
                temperatures.len()
            )));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let g = self.exchange_conductance(i, j, temperatures[i], temperatures[j]);
                if g > 0.0 {
                    network
                        .connect_conductance(nodes[i], nodes[j], ThermalConductance::new(g))
                        .map_err(MissionError::Thermal)?;
                }
            }
        }
        Ok(())
    }
}

/// Solves `M·X = B` in place (X overwrites B) for a dense row-major
/// `n × n` system by Gaussian elimination with partial pivoting.
fn solve_dense(m: &mut [f64], b: &mut [f64], n: usize) -> Result<(), MissionError> {
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&r, &s| m[r * n + col].abs().total_cmp(&m[s * n + col].abs()))
            .expect("non-empty pivot range");
        if m[pivot * n + col].abs() < 1e-14 {
            return Err(MissionError::invalid(
                "singular radiosity reflection system",
            ));
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
                b.swap(col * n + k, pivot * n + k);
            }
        }
        let inv = 1.0 / m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            for k in 0..n {
                b[row * n + k] -= factor * b[col * n + k];
            }
        }
    }
    // Back substitution, all right-hand sides at once.
    for col in (0..n).rev() {
        let inv = 1.0 / m[col * n + col];
        for k in 0..n {
            let mut sum = b[col * n + k];
            for j in (col + 1)..n {
                sum -= m[col * n + j] * b[j * n + k];
            }
            b[col * n + k] = sum * inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-surface enclosure of equal-area plates that only see each
    /// other (F₁₂ = F₂₁ = 1).
    fn facing_plates(area: f64) -> ViewFactors {
        ViewFactors::from_parts(vec![area, area], vec![0.0, 1.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn two_surface_exchange_matches_closed_form() {
        // Parallel-plate formula: Q = σ·A·(T₁⁴ − T₂⁴)/(1/ε₁ + 1/ε₂ − 1).
        let area = 0.25;
        let (e1, e2) = (0.8, 0.35);
        let net = RadiationNetwork::new(&facing_plates(area), &[e1, e2]).unwrap();
        let (t1, t2) = (Celsius::new(120.0), Celsius::new(-40.0));
        let q = net.heat_flows(&[t1, t2]).unwrap();
        let t1k4 = (t1.value() + KELVIN_OFFSET).powi(4);
        let t2k4 = (t2.value() + KELVIN_OFFSET).powi(4);
        let exact = STEFAN_BOLTZMANN * area * (t1k4 - t2k4) / (1.0 / e1 + 1.0 / e2 - 1.0);
        assert!(
            (q[0] - exact).abs() < 1e-10 * exact,
            "Gebhart {} vs closed form {exact}",
            q[0]
        );
        // Pairwise conservation: what 1 loses, 2 gains.
        assert!((q[0] + q[1]).abs() < 1e-10 * exact);
    }

    #[test]
    fn gebhart_rows_sum_to_one_in_a_closed_enclosure() {
        let vf = ViewFactors::box_enclosure(0.4, 0.3, 0.2).unwrap();
        let eps = [0.9, 0.85, 0.8, 0.75, 0.6, 0.5];
        let net = RadiationNetwork::new(&vf, &eps).unwrap();
        for i in 0..6 {
            let row: f64 = (0..6).map(|j| net.gebhart(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-9, "row {i} sums to {row}");
        }
        // Gebhart reciprocity ε·A·B symmetry.
        for i in 0..6 {
            for j in 0..6 {
                let ij = eps[i] * vf.areas()[i] * net.gebhart(i, j);
                let ji = eps[j] * vf.areas()[j] * net.gebhart(j, i);
                assert!((ij - ji).abs() < 1e-12, "({i},{j}): {ij} vs {ji}");
            }
        }
        // Isothermal enclosure exchanges nothing.
        let q = net.heat_flows(&[Celsius::new(50.0); 6]).unwrap();
        assert!(q.iter().all(|&qi| qi.abs() < 1e-12));
    }

    #[test]
    fn linearised_conductance_is_symmetric_and_tangent() {
        let net = RadiationNetwork::new(&facing_plates(0.1), &[0.9, 0.7]).unwrap();
        let (t1, t2) = (Celsius::new(80.0), Celsius::new(20.0));
        let g12 = net.exchange_conductance(0, 1, t1, t2);
        let g21 = net.exchange_conductance(1, 0, t2, t1);
        assert!((g12 - g21).abs() < 1e-12 * g12);
        // G·(T₁ − T₂) reproduces the exact quartic exchange (the
        // linearisation is exact at its expansion point because
        // (T₁²+T₂²)(T₁+T₂)(T₁−T₂) = T₁⁴ − T₂⁴).
        let q = net.heat_flows(&[t1, t2]).unwrap();
        let linear = g12 * (t1.value() - t2.value());
        assert!((linear - q[0]).abs() < 1e-10 * q[0].abs());
    }

    #[test]
    fn couples_into_a_resistive_network() {
        // Two plates, one held hot, one floating with convective loss:
        // adding the radiation edge must pull the floating plate up.
        let net = RadiationNetwork::new(&facing_plates(0.2), &[0.9, 0.9]).unwrap();
        let build = |radiation: Option<&RadiationNetwork>| -> f64 {
            let mut thermal = Network::new();
            let hot = thermal.add_fixed("hot-plate", Celsius::new(150.0));
            let cold = thermal.add_floating("cold-plate");
            let ambient = thermal.add_fixed("ambient", Celsius::new(20.0));
            thermal
                .connect_conductance(cold, ambient, ThermalConductance::new(0.8))
                .unwrap();
            if let Some(r) = radiation {
                // Linearise about the previous iterate; one pass is
                // enough to see the coupling, the fixed-point loop in
                // the mission driver refines it.
                r.couple_into_network(
                    &mut thermal,
                    &[hot, cold],
                    &[Celsius::new(150.0), Celsius::new(25.0)],
                )
                .unwrap();
            }
            let solution = thermal.solve().unwrap();
            solution.temperature(cold).unwrap().value()
        };
        let without = build(None);
        let with = build(Some(&net));
        assert!((without - 20.0).abs() < 1e-9);
        assert!(
            with > without + 10.0,
            "radiation must heat the plate: {with}"
        );
    }
}
