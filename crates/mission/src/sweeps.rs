//! Deterministic parallel mission sweeps: one model, many profiles —
//! the trade-study shape of mission analysis (cruise-altitude ablation,
//! orbit beta-angle sweep, what-if duty cycles).

use std::time::Instant;

use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_thermal::FvModel;
use aeropack_units::Celsius;

use crate::profile::MissionProfile;
use crate::transient::{MissionConfig, MissionDriver};
use crate::MissionError;

/// What one mission run produced, compact enough to tabulate across a
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionSummary {
    /// Coldest cell at end of mission, °C.
    pub final_min_c: f64,
    /// Hottest cell at end of mission, °C.
    pub final_max_c: f64,
    /// Mean temperature at end of mission, °C.
    pub final_mean_c: f64,
    /// Hottest cell seen at any accepted step, °C.
    pub peak_c: f64,
    /// Accepted steps.
    pub steps: usize,
    /// Rejected attempts.
    pub rejected: usize,
    /// Solves that reused preconditioner factors.
    pub factor_reuses: usize,
    /// Bit-exact trajectory fingerprint (step sequence + final field).
    pub trajectory_hash: u64,
}

/// Runs `model` through every profile in parallel, deterministically:
/// the result vector order and every summary (including the bit-exact
/// trajectory hashes) are identical for any worker-thread count of
/// `sweep`.
///
/// Each scenario clones the model, so the sweep also shares the primed
/// symbolic pattern across workers. A profile whose mission fails
/// reports its error in place without aborting the others.
pub fn sweep_missions(
    model: &FvModel,
    profiles: &[MissionProfile],
    config: &MissionConfig,
    initial: Celsius,
    sweep: &Sweep,
) -> (Vec<Result<MissionSummary, MissionError>>, SweepStats) {
    sweep.map_stats(profiles, |profile| {
        let started = Instant::now();
        let result = run_one(model, profile, config, initial);
        let stats = match &result {
            Ok((summary, cache_hits, cache_misses)) => ScenarioStats {
                iterations: summary.steps + summary.rejected,
                solve_time: started.elapsed(),
                cache_hits: *cache_hits,
                cache_misses: *cache_misses,
                converged: true,
            },
            Err(_) => ScenarioStats {
                solve_time: started.elapsed(),
                ..ScenarioStats::default()
            },
        };
        (result.map(|(summary, _, _)| summary), stats)
    })
}

fn run_one(
    model: &FvModel,
    profile: &MissionProfile,
    config: &MissionConfig,
    initial: Celsius,
) -> Result<(MissionSummary, usize, usize), MissionError> {
    let mut driver = MissionDriver::new(model.clone(), profile.clone(), config.clone(), initial)?;
    let mut peak = initial.value();
    while !driver.finished() {
        driver.step()?;
        let max = driver
            .temperatures()
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        peak = peak.max(max);
    }
    let field = driver.field()?;
    let stats = *driver.stats();
    let (cache_hits, cache_misses) = driver.model().pattern_cache_stats();
    Ok((
        MissionSummary {
            final_min_c: field.min_temperature().value(),
            final_max_c: field.max_temperature().value(),
            final_mean_c: field.mean_temperature().value(),
            peak_c: peak,
            steps: stats.accepted,
            rejected: stats.rejected,
            factor_reuses: stats.factor_reuses,
            trajectory_hash: driver.trajectory_fingerprint(),
        },
        cache_hits,
        cache_misses,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{Scheme, StepControl};
    use aeropack_materials::Material;
    use aeropack_thermal::{Face, FvGrid};
    use aeropack_units::{HeatTransferCoeff, Power};

    fn setup() -> (FvModel, Vec<MissionProfile>, MissionConfig) {
        let grid = FvGrid::new((0.1, 0.1, 0.01), (5, 5, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(8.0), (1, 1, 0), (4, 4, 1))
            .unwrap();
        let profiles: Vec<MissionProfile> = [3_000.0, 6_000.0, 9_000.0, 12_000.0]
            .iter()
            .map(|&alt| {
                MissionProfile::climb_cruise_descent(
                    alt,
                    (60.0, 240.0, 60.0),
                    HeatTransferCoeff::new(35.0),
                )
                .unwrap()
            })
            .collect();
        let config = MissionConfig::new(Scheme::Trapezoidal)
            .control(StepControl::Fixed { dt: 5.0 })
            .convective_face(Face::ZMax);
        (model, profiles, config)
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let (model, profiles, config) = setup();
        let initial = Celsius::new(15.0);
        let (serial, _) = sweep_missions(&model, &profiles, &config, initial, &Sweep::serial());
        for threads in [2, 4] {
            let sweep = Sweep::new(threads).with_grain(1);
            let (parallel, stats) = sweep_missions(&model, &profiles, &config, initial, &sweep);
            assert_eq!(stats.scenarios, profiles.len());
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a, b, "threads={threads} diverged");
            }
        }
    }

    #[test]
    fn higher_cruise_means_colder_ambient_means_cooler_plate() {
        let (model, profiles, config) = setup();
        let (results, _) = sweep_missions(
            &model,
            &profiles,
            &config,
            Celsius::new(15.0),
            &Sweep::serial(),
        );
        let means: Vec<f64> = results
            .iter()
            .map(|r| r.as_ref().unwrap().final_mean_c)
            .collect();
        // Distinct profiles must produce distinct trajectories.
        let hashes: Vec<u64> = results
            .iter()
            .map(|r| r.as_ref().unwrap().trajectory_hash)
            .collect();
        assert!(hashes.windows(2).all(|w| w[0] != w[1]));
        assert!(means.iter().all(|m| m.is_finite()));
    }
}
