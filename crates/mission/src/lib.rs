//! Mission-profile transient analysis: the layer that turns the
//! steady-state equipment models into flight- and orbit-long
//! simulations.
//!
//! The paper's equipment-bay problem is fundamentally transient —
//! avionics fly climb–cruise–descent profiles where ambient
//! temperature, dissipation and radiative sinks all change with flight
//! phase, and orbital payloads cycle between sun and eclipse every 90
//! minutes. This crate provides the three pieces that workload needs:
//!
//! * **Radiation exchange** ([`viewfactor`], [`radiosity`]): analytic
//!   view factors for the box/plate geometries of equipment bays, and a
//!   Gebhart-factor radiosity network that is linearised each step and
//!   coupled into both the resistive flow-network solver and the
//!   finite-volume solver.
//! * **Environment models** ([`environment`], [`profile`]): ambient
//!   temperature/pressure versus altitude (ISA) and flight phase,
//!   solar/albedo flux versus orbit position or latitude/time-of-day,
//!   all expressed as a [`MissionProfile`] — piecewise phases with
//!   time-interpolated boundary conditions.
//! * **An adaptive transient driver** ([`transient`], [`checkpoint`]):
//!   θ-scheme implicit stepping (backward Euler or trapezoidal) with
//!   embedded-error step control over 10⁴–10⁶ steps, warm-started PCG
//!   solves that reuse the cached Multigrid/IC(0) factors whenever the
//!   system matrix is unchanged, and bit-exact checkpointed
//!   trajectories in a compact binary/JSON snapshot format.
//!
//! Mission sweeps run deterministically in parallel through
//! [`sweep_missions`], and `aeropack-serve` exposes the driver behind a
//! `Transient` analysis request.
//!
//! # Examples
//!
//! ```
//! use aeropack_materials::Material;
//! use aeropack_mission::{
//!     AdaptiveConfig, MissionConfig, MissionDriver, MissionProfile, Scheme, StepControl,
//! };
//! use aeropack_thermal::{Face, FvGrid, FvModel};
//! use aeropack_units::{Celsius, HeatTransferCoeff, Power};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A dissipating aluminium plate flying a short climb-cruise-descent.
//! let grid = FvGrid::new((0.1, 0.1, 0.004), (8, 8, 2))?;
//! let mut model = FvModel::new(grid, &Material::aluminum_6061());
//! model.add_power_box(Power::new(15.0), (2, 2, 0), (6, 6, 1))?;
//! let profile = MissionProfile::climb_cruise_descent(
//!     9_000.0,                      // cruise altitude, m
//!     (300.0, 1_200.0, 300.0),      // climb / cruise / descent, s
//!     HeatTransferCoeff::new(30.0), // sea-level film coefficient
//! )?;
//! let config = MissionConfig::new(Scheme::Trapezoidal)
//!     .control(StepControl::Adaptive(AdaptiveConfig::default()))
//!     .convective_face(Face::ZMax);
//! let mut driver = MissionDriver::new(model, profile, config, Celsius::new(15.0))?;
//! driver.run_to_end()?;
//! assert!(driver.stats().accepted > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod checkpoint;
pub mod environment;
pub mod profile;
pub mod radiosity;
pub mod transient;
pub mod viewfactor;

mod sweeps;

pub use checkpoint::Checkpoint;
pub use environment::{altitude_derated_h, atmosphere_at, solar_flux, AtmosphereState, Orbit};
pub use profile::{BoundaryState, MissionPhase, MissionProfile};
pub use radiosity::RadiationNetwork;
pub use sweeps::{sweep_missions, MissionSummary};
pub use transient::{
    AdaptiveConfig, MissionConfig, MissionDriver, MissionStats, RadiatingFace, Scheme, StepControl,
};
pub use viewfactor::{parallel_rectangles, perpendicular_rectangles, ViewFactors};

/// Why a mission-level operation failed.
#[derive(Debug)]
pub enum MissionError {
    /// A geometric, profile or configuration input was out of range.
    Invalid(String),
    /// The underlying thermal model or linear solver failed.
    Thermal(aeropack_thermal::ThermalError),
    /// The environment model rejected an input (altitude out of the ISA
    /// range, …).
    Material(aeropack_materials::MaterialError),
    /// A checkpoint could not be decoded.
    Checkpoint(String),
}

impl MissionError {
    pub(crate) fn invalid(msg: impl Into<String>) -> Self {
        Self::Invalid(msg.into())
    }
}

impl fmt::Display for MissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(msg) => write!(f, "invalid mission input: {msg}"),
            Self::Thermal(e) => write!(f, "thermal model failed: {e}"),
            Self::Material(e) => write!(f, "environment model failed: {e}"),
            Self::Checkpoint(msg) => write!(f, "checkpoint decode failed: {msg}"),
        }
    }
}

impl std::error::Error for MissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::Material(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aeropack_thermal::ThermalError> for MissionError {
    fn from(e: aeropack_thermal::ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<aeropack_materials::MaterialError> for MissionError {
    fn from(e: aeropack_materials::MaterialError) -> Self {
        Self::Material(e)
    }
}

impl From<aeropack_solver::SolverError> for MissionError {
    fn from(e: aeropack_solver::SolverError) -> Self {
        Self::Thermal(e.into())
    }
}
