//! Mission profiles: piecewise phases with time-interpolated boundary
//! conditions — the `MissionProfile` a transient driver integrates
//! against.
//!
//! A profile is a sequence of named [`MissionPhase`]s. Each phase
//! linearly interpolates a [`BoundaryState`] (convective ambient and
//! film coefficient, radiative sink, absorbed environmental flux,
//! dissipation scale) from its start to its end; sampling is exact at
//! phase boundaries and piecewise linear inside, which keeps the
//! profile a pure deterministic function of time — the property the
//! checkpoint/restore and thread-count determinism guarantees build
//! on.

use aeropack_solver::Fingerprint;
use aeropack_units::{Celsius, HeatTransferCoeff};

use crate::environment::{altitude_derated_h, atmosphere_at, Orbit, DEEP_SPACE_C};
use crate::MissionError;

/// The boundary-condition state of the bay at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryState {
    /// Convective ambient temperature.
    pub ambient: Celsius,
    /// Convective film coefficient on the cooled faces.
    pub h: HeatTransferCoeff,
    /// Radiative sink temperature seen by the radiating face.
    pub sink: Celsius,
    /// Absorbed environmental flux (solar + albedo + planetary IR) on
    /// the radiating face, W/m².
    pub flux_w_m2: f64,
    /// Multiplier on the model's internal dissipation.
    pub power_scale: f64,
}

impl BoundaryState {
    /// A benign sea-level state: 15 °C still air, no radiation drive,
    /// nominal dissipation.
    pub fn sea_level() -> Self {
        Self {
            ambient: Celsius::new(15.0),
            h: HeatTransferCoeff::new(10.0),
            sink: Celsius::new(15.0),
            flux_w_m2: 0.0,
            power_scale: 1.0,
        }
    }

    /// Linear interpolation between two states, `f ∈ [0, 1]`.
    pub fn lerp(a: &Self, b: &Self, f: f64) -> Self {
        let mix = |x: f64, y: f64| x + (y - x) * f;
        Self {
            ambient: Celsius::new(mix(a.ambient.value(), b.ambient.value())),
            h: HeatTransferCoeff::new(mix(a.h.value(), b.h.value())),
            sink: Celsius::new(mix(a.sink.value(), b.sink.value())),
            flux_w_m2: mix(a.flux_w_m2, b.flux_w_m2),
            power_scale: mix(a.power_scale, b.power_scale),
        }
    }

    fn write_fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.ambient.value());
        fp.write_f64(self.h.value());
        fp.write_f64(self.sink.value());
        fp.write_f64(self.flux_w_m2);
        fp.write_f64(self.power_scale);
    }
}

/// One named phase of a mission, interpolating linearly from `start`
/// to `end` over `duration_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionPhase {
    /// Phase name ("climb", "eclipse", …) for reports.
    pub name: String,
    /// Phase duration, s (strictly positive).
    pub duration_s: f64,
    /// State at the start of the phase.
    pub start: BoundaryState,
    /// State at the end of the phase.
    pub end: BoundaryState,
}

impl MissionPhase {
    /// A phase holding one constant state.
    pub fn constant(name: impl Into<String>, duration_s: f64, state: BoundaryState) -> Self {
        Self {
            name: name.into(),
            duration_s,
            start: state,
            end: state,
        }
    }

    /// A phase ramping linearly between two states.
    pub fn ramp(
        name: impl Into<String>,
        duration_s: f64,
        start: BoundaryState,
        end: BoundaryState,
    ) -> Self {
        Self {
            name: name.into(),
            duration_s,
            start,
            end,
        }
    }
}

/// A piecewise mission profile — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionProfile {
    phases: Vec<MissionPhase>,
    total_s: f64,
}

impl MissionProfile {
    /// Builds a profile from explicit phases.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty phase list, a non-finite or
    /// non-positive duration, or non-finite state values.
    pub fn new(phases: Vec<MissionPhase>) -> Result<Self, MissionError> {
        if phases.is_empty() {
            return Err(MissionError::invalid("a mission needs at least one phase"));
        }
        let mut total = 0.0;
        for phase in &phases {
            if !(phase.duration_s > 0.0 && phase.duration_s.is_finite()) {
                return Err(MissionError::invalid(format!(
                    "phase '{}' must have a positive finite duration",
                    phase.name
                )));
            }
            for state in [&phase.start, &phase.end] {
                let values = [
                    state.ambient.value(),
                    state.h.value(),
                    state.sink.value(),
                    state.flux_w_m2,
                    state.power_scale,
                ];
                if values.iter().any(|v| !v.is_finite()) || state.h.value() < 0.0 {
                    return Err(MissionError::invalid(format!(
                        "phase '{}' has a non-finite or negative state",
                        phase.name
                    )));
                }
            }
            total += phase.duration_s;
        }
        Ok(Self {
            phases,
            total_s: total,
        })
    }

    /// The phases.
    pub fn phases(&self) -> &[MissionPhase] {
        &self.phases
    }

    /// Total mission duration, s.
    pub fn total_duration(&self) -> f64 {
        self.total_s
    }

    /// The boundary state at time `t` seconds (clamped to the mission
    /// span; exact at phase boundaries, linear inside a phase).
    pub fn sample(&self, t_s: f64) -> BoundaryState {
        let mut start = 0.0;
        for phase in &self.phases {
            let end = start + phase.duration_s;
            if t_s <= end || std::ptr::eq(phase, self.phases.last().expect("non-empty")) {
                let f = ((t_s - start) / phase.duration_s).clamp(0.0, 1.0);
                return BoundaryState::lerp(&phase.start, &phase.end, f);
            }
            start = end;
        }
        unreachable!("profile has at least one phase");
    }

    /// The name of the phase active at time `t` (clamped).
    pub fn phase_name_at(&self, t_s: f64) -> &str {
        let mut start = 0.0;
        for phase in &self.phases {
            let end = start + phase.duration_s;
            if t_s <= end {
                return &phase.name;
            }
            start = end;
        }
        &self.phases.last().expect("non-empty").name
    }

    /// Canonical content fingerprint of the profile (names, durations
    /// and end-point states) — the cache/coalescing key material used
    /// by `aeropack-serve`.
    ///
    /// # Panics
    ///
    /// Panics if any stored value is NaN (profiles reject non-finite
    /// values at construction).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("mission.profile");
        fp.write_usize(self.phases.len());
        for phase in &self.phases {
            fp.write_str(&phase.name);
            fp.write_f64(phase.duration_s);
            phase.start.write_fingerprint(&mut fp);
            phase.end.write_fingerprint(&mut fp);
        }
        fp.finish()
    }

    /// A climb–cruise–descent flight to `cruise_altitude_m`, with the
    /// ambient following the ISA profile and the film coefficient
    /// derating with altitude from its sea-level value. Climb and
    /// descent are subdivided so the piecewise-linear ambient matches
    /// ISA exactly at the segment knots (the ISA is itself non-linear
    /// above the tropopause).
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive durations or an altitude
    /// outside the ISA range.
    pub fn climb_cruise_descent(
        cruise_altitude_m: f64,
        (climb_s, cruise_s, descent_s): (f64, f64, f64),
        h_sea_level: HeatTransferCoeff,
    ) -> Result<Self, MissionError> {
        const SEGMENTS: usize = 6;
        let state_at = |altitude: f64| -> Result<BoundaryState, MissionError> {
            let atm = atmosphere_at(altitude)?;
            Ok(BoundaryState {
                ambient: atm.ambient,
                h: altitude_derated_h(h_sea_level, altitude)?,
                sink: atm.ambient,
                flux_w_m2: 0.0,
                power_scale: 1.0,
            })
        };
        let mut phases = Vec::new();
        for seg in 0..SEGMENTS {
            let a0 = cruise_altitude_m * seg as f64 / SEGMENTS as f64;
            let a1 = cruise_altitude_m * (seg + 1) as f64 / SEGMENTS as f64;
            phases.push(MissionPhase::ramp(
                format!("climb-{seg}"),
                climb_s / SEGMENTS as f64,
                state_at(a0)?,
                state_at(a1)?,
            ));
        }
        phases.push(MissionPhase::constant(
            "cruise",
            cruise_s,
            state_at(cruise_altitude_m)?,
        ));
        for seg in 0..SEGMENTS {
            let a0 = cruise_altitude_m * (SEGMENTS - seg) as f64 / SEGMENTS as f64;
            let a1 = cruise_altitude_m * (SEGMENTS - seg - 1) as f64 / SEGMENTS as f64;
            phases.push(MissionPhase::ramp(
                format!("descent-{seg}"),
                descent_s / SEGMENTS as f64,
                state_at(a0)?,
                state_at(a1)?,
            ));
        }
        Self::new(phases)
    }

    /// `cycles` sun/eclipse cycles of an [`Orbit`]: vacuum (no
    /// convection), deep-space radiative sink, and the orbit's absorbed
    /// flux with short penumbra ramps (1 % of the period) at the
    /// terminator crossings.
    ///
    /// # Errors
    ///
    /// Returns an error for zero cycles or a degenerate orbit.
    pub fn orbit_cycle(orbit: &Orbit, cycles: usize) -> Result<Self, MissionError> {
        if cycles == 0 {
            return Err(MissionError::invalid("need at least one orbit cycle"));
        }
        if orbit.period_s.is_nan()
            || orbit.period_s <= 0.0
            || !(0.0..1.0).contains(&orbit.eclipse_fraction)
        {
            return Err(MissionError::invalid(
                "orbit needs a positive period and eclipse fraction in [0, 1)",
            ));
        }
        let vacuum = |flux: f64| BoundaryState {
            ambient: Celsius::new(DEEP_SPACE_C),
            h: HeatTransferCoeff::new(0.0),
            sink: Celsius::new(DEEP_SPACE_C),
            flux_w_m2: flux,
            power_scale: 1.0,
        };
        let sunlit_flux = orbit.solar_w_m2 + orbit.albedo_w_m2 + orbit.earth_ir_w_m2;
        let dark_flux = orbit.earth_ir_w_m2;
        let penumbra = 0.01 * orbit.period_s;
        let sunlit = (1.0 - orbit.eclipse_fraction) * orbit.period_s - penumbra;
        let eclipse = orbit.eclipse_fraction * orbit.period_s - penumbra;
        if sunlit <= 0.0 || eclipse <= 0.0 {
            return Err(MissionError::invalid(
                "orbit eclipse fraction leaves no room for penumbra ramps",
            ));
        }
        let mut phases = Vec::new();
        for cycle in 0..cycles {
            phases.push(MissionPhase::constant(
                format!("sunlit-{cycle}"),
                sunlit,
                vacuum(sunlit_flux),
            ));
            phases.push(MissionPhase::ramp(
                format!("penumbra-in-{cycle}"),
                penumbra,
                vacuum(sunlit_flux),
                vacuum(dark_flux),
            ));
            phases.push(MissionPhase::constant(
                format!("eclipse-{cycle}"),
                eclipse,
                vacuum(dark_flux),
            ));
            phases.push(MissionPhase::ramp(
                format!("penumbra-out-{cycle}"),
                penumbra,
                vacuum(dark_flux),
                vacuum(sunlit_flux),
            ));
        }
        Self::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_exact_at_knots_and_linear_inside() {
        let a = BoundaryState::sea_level();
        let mut b = a;
        b.ambient = Celsius::new(-40.0);
        b.flux_w_m2 = 800.0;
        let profile = MissionProfile::new(vec![
            MissionPhase::ramp("up", 100.0, a, b),
            MissionPhase::constant("hold", 50.0, b),
        ])
        .unwrap();
        assert_eq!(profile.total_duration(), 150.0);
        assert_eq!(profile.sample(0.0).ambient, a.ambient);
        assert_eq!(profile.sample(100.0).ambient, b.ambient);
        let mid = profile.sample(50.0);
        assert!((mid.ambient.value() - (15.0 - 40.0) / 2.0).abs() < 1e-12);
        assert!((mid.flux_w_m2 - 400.0).abs() < 1e-12);
        // Clamped outside the span.
        assert_eq!(profile.sample(-5.0).ambient, a.ambient);
        assert_eq!(profile.sample(1e6).ambient, b.ambient);
        assert_eq!(profile.phase_name_at(20.0), "up");
        assert_eq!(profile.phase_name_at(120.0), "hold");
    }

    #[test]
    fn climb_cruise_descent_tracks_isa() {
        let profile = MissionProfile::climb_cruise_descent(
            10_000.0,
            (600.0, 1_800.0, 600.0),
            HeatTransferCoeff::new(40.0),
        )
        .unwrap();
        assert_eq!(profile.total_duration(), 3_000.0);
        // Start and end at sea level, cruise cold and thin.
        assert!((profile.sample(0.0).ambient.value() - 15.0).abs() < 1e-9);
        assert!((profile.sample(3_000.0).ambient.value() - 15.0).abs() < 1e-9);
        let cruise = profile.sample(1_500.0);
        assert!(cruise.ambient.value() < -45.0);
        assert!(cruise.h.value() < 25.0);
        // Symmetric profile: descent mirrors climb.
        let up = profile.sample(300.0);
        let down = profile.sample(2_700.0);
        assert!((up.ambient.value() - down.ambient.value()).abs() < 1e-9);
    }

    #[test]
    fn orbit_cycles_alternate_sun_and_shadow() {
        let orbit = Orbit::leo_90min();
        let profile = MissionProfile::orbit_cycle(&orbit, 2).unwrap();
        assert!((profile.total_duration() - 2.0 * orbit.period_s).abs() < 1e-9);
        let lit = profile.sample(0.5 * (1.0 - orbit.eclipse_fraction) * orbit.period_s);
        assert!(lit.flux_w_m2 > 1_500.0);
        assert_eq!(lit.h.value(), 0.0);
        let dark = profile.sample(0.99 * orbit.period_s);
        assert!((dark.flux_w_m2 - orbit.earth_ir_w_m2).abs() < 1e-9);
        // Fingerprints are stable content hashes.
        let again = MissionProfile::orbit_cycle(&orbit, 2).unwrap();
        assert_eq!(profile.fingerprint(), again.fingerprint());
        let three = MissionProfile::orbit_cycle(&orbit, 3).unwrap();
        assert_ne!(profile.fingerprint(), three.fingerprint());
    }

    #[test]
    fn degenerate_profiles_are_rejected() {
        assert!(MissionProfile::new(vec![]).is_err());
        let s = BoundaryState::sea_level();
        assert!(MissionProfile::new(vec![MissionPhase::constant("z", 0.0, s)]).is_err());
        let mut bad = s;
        bad.flux_w_m2 = f64::NAN;
        assert!(MissionProfile::new(vec![MissionPhase::ramp("n", 1.0, s, bad)]).is_err());
        assert!(MissionProfile::orbit_cycle(&Orbit::leo_90min(), 0).is_err());
    }
}
