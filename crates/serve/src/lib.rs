//! `aeropack-serve`: the batched co-design analysis service.
//!
//! The workspace's physics crates answer one question at a time; a
//! co-design loop asks thousands (power sweeps, configuration grids,
//! what-if batches). This crate turns the workspace into a *service*:
//! a persistent worker pool behind a bounded job queue, fronted by the
//! unified [`AnalysisRequest`]/[`AnalysisResponse`] vocabulary, with
//!
//! - **admission control** — the queue is bounded; a full queue
//!   rejects at submission ([`Error::QueueFull`]) instead of building
//!   unbounded backlog,
//! - **deadline & priority scheduling** — three priority classes with
//!   strict FIFO inside each (no priority inversion), and per-request
//!   deadlines enforced before a job ever occupies a solver,
//! - **request coalescing** — same-model steady solves queued together
//!   collapse into one assembly + multi-RHS PCG call, bit-identical to
//!   running them one by one,
//! - **a content-addressed result cache** — requests are canonically
//!   fingerprinted ([`Workload::fingerprint`]); repeats are answered
//!   without touching a solver, with LRU eviction,
//! - **observability** — `serve.*` counters and a `serve.latency_ms`
//!   histogram through `aeropack-obs`,
//! - **multi-process sharding** — a daemon connection whose first line
//!   is [`SHARD_HELLO`] upgrades to a binary frame protocol hosting one
//!   shard of a domain-decomposed solve ([`sharded_solve_remote`],
//!   bit-identical to the single-process solve), and [`shard_batch`]
//!   fans request batches across daemon processes deterministically.
//!
//! Two front doors share all of it: the in-process [`Client`] (what
//! the experiments use) and a line-delimited JSON TCP daemon
//! ([`serve`] + [`SocketClient`]) speaking the [`wire`] codec.
//!
//! ```no_run
//! use aeropack_serve::{AnalysisRequest, Client, SebSpec, SeatKind, ServeConfig};
//!
//! let client = Client::start(ServeConfig::new().workers(2));
//! let spec = SebSpec {
//!     seat: SeatKind::Aluminum,
//!     lhp: true,
//!     tilt_deg: 0.0,
//!     ambient_c: 25.0,
//! };
//! let answer = client.call(AnalysisRequest::SebCapability {
//!     spec,
//!     dt_limit_k: 25.0,
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod queue;
mod request;
mod service;
mod shard;
mod transport;
pub mod wire;
mod workload;

pub use error::Error;
pub use queue::Priority;
pub use request::{
    AnalysisRequest, AnalysisResponse, BoardSpec, CoolingModeSpec, FemPlateSpec, MaterialKind,
    MissionSpec, OptimizeSpec, PlateSpec, SchemeKind, SeatKind, SebSpec, TransientSpec,
};
pub use service::{Client, ServeConfig, Service, ServiceStats, ServiceTiming, Ticket};
pub use shard::{run_worker, shard_batch, sharded_solve_remote, RemoteShard, SHARD_HELLO};
pub use transport::{serve, Daemon, SocketClient};
pub use workload::{
    run_all, BoardAnalysis, FemAnalysis, FemQuery, FvAnalysis, SebAnalysis, SebQuery, Workload,
    Workspace,
};
