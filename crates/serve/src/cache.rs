//! Content-addressed result cache with LRU eviction.
//!
//! Keys are the canonical request fingerprints from
//! [`crate::Workload::fingerprint`]: two requests that describe the
//! same physics hash to the same key regardless of how they were
//! constructed, so a repeat submission is answered without touching a
//! solver. Only successful responses are cached — errors are often
//! transient (queue pressure, deadlines) and must re-run.
//!
//! Recency is tracked with a monotone tick instead of a linked list:
//! every hit stamps the entry, eviction removes the minimum stamp.
//! That is O(capacity) on insert-when-full, which is irrelevant at
//! the cache sizes a co-design service uses, and keeps the structure
//! a plain `HashMap` under one mutex.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::request::AnalysisResponse;

struct Entry {
    response: AnalysisResponse,
    last_used: u64,
}

struct CacheState {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Fingerprint-keyed LRU cache of successful analysis responses.
pub(crate) struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    /// Looks up a cached response, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<AnalysisResponse> {
        if self.capacity == 0 {
            return None;
        }
        let mut s = self.state.lock().expect("cache lock poisoned");
        s.tick += 1;
        let tick = s.tick;
        s.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            e.response.clone()
        })
    }

    /// Stores a response; returns `true` if an entry was evicted to
    /// make room (for the `serve.cache.evictions` counter).
    pub fn insert(&self, key: u64, response: AnalysisResponse) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut s = self.state.lock().expect("cache lock poisoned");
        s.tick += 1;
        let tick = s.tick;
        let mut evicted = false;
        if !s.map.contains_key(&key) && s.map.len() >= self.capacity {
            if let Some(&oldest) = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                s.map.remove(&oldest);
                evicted = true;
            }
        }
        s.map.insert(
            key,
            Entry {
                response,
                last_used: tick,
            },
        );
        evicted
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::ResultCache;
    use crate::request::AnalysisResponse;

    fn resp(watts: f64) -> AnalysisResponse {
        AnalysisResponse::Capability { watts }
    }

    #[test]
    fn hit_returns_the_stored_response() {
        let c = ResultCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, resp(40.0));
        assert_eq!(c.get(1), Some(resp(40.0)));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert(1, resp(1.0));
        c.insert(2, resp(2.0));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1).is_some());
        assert!(c.insert(3, resp(3.0)));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert(1, resp(1.0));
        c.insert(2, resp(2.0));
        assert!(!c.insert(1, resp(10.0)));
        assert_eq!(c.get(1), Some(resp(10.0)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        assert!(!c.insert(1, resp(1.0)));
        assert!(c.get(1).is_none());
    }
}
