//! The unified request/response vocabulary of the analysis service.
//!
//! Every workload the workspace can run — SEB capability and operating
//! points, finite-volume steady fields (plain or power-scaled), FEM
//! static/modal/harmonic analyses, and whole power sweeps — is
//! expressible as one [`AnalysisRequest`] value, and every result
//! comes back as one [`AnalysisResponse`]. Requests are built from
//! compact *specs* (plain numbers and tags, no model handles), which
//! makes them cheap to hash ([`AnalysisRequest::fingerprint`]), cheap
//! to serialise (see [`wire`](crate::wire)) and safe to coalesce: two
//! requests with equal specs denote bit-identical models.

use aeropack_solver::Fingerprint;

/// Seat structure material for the SEB model (the paper's Fig 10
/// compares an aluminium and a carbon-composite seat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeatKind {
    /// Aluminium honeycomb seat structure.
    Aluminum,
    /// Carbon-composite seat structure.
    CarbonComposite,
}

impl SeatKind {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Aluminum => "aluminum",
            Self::CarbonComposite => "carbon_composite",
        }
    }

    /// Parses a wire tag.
    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "aluminum" => Some(Self::Aluminum),
            "carbon_composite" => Some(Self::CarbonComposite),
            _ => None,
        }
    }
}

/// Plate material for FV/FEM plate specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaterialKind {
    /// Aluminium 6061.
    Aluminum,
    /// Copper.
    Copper,
    /// FR-4 laminate.
    Fr4,
}

impl MaterialKind {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Aluminum => "aluminum",
            Self::Copper => "copper",
            Self::Fr4 => "fr4",
        }
    }

    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "aluminum" => Some(Self::Aluminum),
            "copper" => Some(Self::Copper),
            "fr4" => Some(Self::Fr4),
            _ => None,
        }
    }

    /// The material table entry this tag denotes.
    pub fn material(self) -> aeropack_materials::Material {
        match self {
            Self::Aluminum => aeropack_materials::Material::aluminum_6061(),
            Self::Copper => aeropack_materials::Material::copper(),
            Self::Fr4 => aeropack_materials::Material::fr4(),
        }
    }
}

/// Cooling mode for board-level (Level 2) requests — the wire-safe
/// mirror of `aeropack_core::CoolingMode`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingModeSpec {
    /// Radiation + free convection.
    FreeConvection,
    /// Direct forced air at a multiple of the ARINC 600 allocation.
    ForcedAir {
        /// Flow multiplier (1.0 = standard).
        flow_multiplier: f64,
    },
    /// Conduction into wedge-locked rails at a fixed temperature.
    ConductionCooled {
        /// Rail temperature, °C.
        rail_c: f64,
    },
    /// Air flow through an internal finned exchanger.
    AirFlowThrough {
        /// Flow multiplier (1.0 = standard).
        flow_multiplier: f64,
    },
    /// Liquid cold plate behind the board.
    LiquidFlowThrough {
        /// Coolant inlet temperature, °C.
        coolant_inlet_c: f64,
    },
}

impl CoolingModeSpec {
    /// Stable wire tag of the variant.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::FreeConvection => "free_convection",
            Self::ForcedAir { .. } => "forced_air",
            Self::ConductionCooled { .. } => "conduction_cooled",
            Self::AirFlowThrough { .. } => "air_flow_through",
            Self::LiquidFlowThrough { .. } => "liquid_flow_through",
        }
    }

    /// The core cooling mode this spec denotes.
    pub fn mode(&self) -> aeropack_core::CoolingMode {
        use aeropack_core::CoolingMode;
        match *self {
            Self::FreeConvection => CoolingMode::FreeConvection,
            Self::ForcedAir { flow_multiplier } => CoolingMode::DirectForcedAir { flow_multiplier },
            Self::ConductionCooled { rail_c } => CoolingMode::ConductionCooled {
                rail_temperature: aeropack_units::Celsius::new(rail_c),
            },
            Self::AirFlowThrough { flow_multiplier } => {
                CoolingMode::AirFlowThrough { flow_multiplier }
            }
            Self::LiquidFlowThrough { coolant_inlet_c } => CoolingMode::LiquidFlowThrough {
                coolant_inlet: aeropack_units::Celsius::new(coolant_inlet_c),
            },
        }
    }

    /// Builds the spec from a core cooling mode (for callers migrating
    /// existing workloads onto the service).
    pub fn from_mode(mode: &aeropack_core::CoolingMode) -> Self {
        use aeropack_core::CoolingMode;
        match *mode {
            CoolingMode::FreeConvection => Self::FreeConvection,
            CoolingMode::DirectForcedAir { flow_multiplier } => Self::ForcedAir { flow_multiplier },
            CoolingMode::ConductionCooled { rail_temperature } => Self::ConductionCooled {
                rail_c: rail_temperature.value(),
            },
            CoolingMode::AirFlowThrough { flow_multiplier } => {
                Self::AirFlowThrough { flow_multiplier }
            }
            CoolingMode::LiquidFlowThrough { coolant_inlet } => Self::LiquidFlowThrough {
                coolant_inlet_c: coolant_inlet.value(),
            },
        }
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        match *self {
            Self::FreeConvection => fp.write_u8(0),
            Self::ForcedAir { flow_multiplier } => {
                fp.write_u8(1);
                fp.write_f64(flow_multiplier);
            }
            Self::ConductionCooled { rail_c } => {
                fp.write_u8(2);
                fp.write_f64(rail_c);
            }
            Self::AirFlowThrough { flow_multiplier } => {
                fp.write_u8(3);
                fp.write_f64(flow_multiplier);
            }
            Self::LiquidFlowThrough { coolant_inlet_c } => {
                fp.write_u8(4);
                fp.write_f64(coolant_inlet_c);
            }
        }
    }
}

/// A COSEE seat electronics box configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SebSpec {
    /// Seat structure material.
    pub seat: SeatKind,
    /// Whether the loop heat pipes are fitted.
    pub lhp: bool,
    /// Tilt from horizontal, degrees.
    pub tilt_deg: f64,
    /// Cabin air temperature, °C.
    pub ambient_c: f64,
}

impl SebSpec {
    /// Model-level fingerprint (everything but the query).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.seb");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_u8(match self.seat {
            SeatKind::Aluminum => 0,
            SeatKind::CarbonComposite => 1,
        });
        fp.write_bool(self.lhp);
        fp.write_f64(self.tilt_deg);
        fp.write_f64(self.ambient_c);
    }
}

/// A rectangular dissipating plate solved by the finite-volume
/// conduction backend: a centre power patch, convection from the top
/// face, adiabatic elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateSpec {
    /// Plate length, m.
    pub lx_m: f64,
    /// Plate width, m.
    pub ly_m: f64,
    /// Plate thickness, m.
    pub thickness_m: f64,
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Plate material.
    pub material: MaterialKind,
    /// Total dissipated power, W (spread over the centre half of the
    /// plate).
    pub power_w: f64,
    /// Film coefficient on the top face, W/(m²·K).
    pub h_w_m2k: f64,
    /// Coolant/ambient temperature, °C.
    pub ambient_c: f64,
}

impl PlateSpec {
    /// Model-level fingerprint (shared by every scale of this plate —
    /// the coalescing key).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.plate");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.lx_m);
        fp.write_f64(self.ly_m);
        fp.write_f64(self.thickness_m);
        fp.write_usize(self.nx);
        fp.write_usize(self.ny);
        fp.write_u8(match self.material {
            MaterialKind::Aluminum => 0,
            MaterialKind::Copper => 1,
            MaterialKind::Fr4 => 2,
        });
        fp.write_f64(self.power_w);
        fp.write_f64(self.h_w_m2k);
        fp.write_f64(self.ambient_c);
    }
}

/// A representative avionics board analysed at Level 2 (finite-volume
/// board field under a cooling mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardSpec {
    /// Total board dissipation, W.
    pub power_w: f64,
    /// Cooling technology.
    pub mode: CoolingModeSpec,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// In-plane cell resolution, mm.
    pub resolution_mm: f64,
}

impl BoardSpec {
    /// Model-level fingerprint (the coalescing key across scales).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.board");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.power_w);
        self.mode.hash_into(&mut *fp);
        fp.write_f64(self.ambient_c);
        fp.write_f64(self.resolution_mm);
    }
}

/// A rectangular PCB analysed by the structural (Kirchhoff plate) FEM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FemPlateSpec {
    /// Plate length, m.
    pub lx_m: f64,
    /// Plate width, m.
    pub ly_m: f64,
    /// Elements along x.
    pub nx: usize,
    /// Elements along y.
    pub ny: usize,
    /// Plate thickness, mm.
    pub thickness_mm: f64,
    /// Smeared component mass, kg/m².
    pub smeared_mass_kg_m2: f64,
    /// Laminate material.
    pub material: MaterialKind,
}

impl FemPlateSpec {
    /// Model-level fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.fem_plate");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.lx_m);
        fp.write_f64(self.ly_m);
        fp.write_usize(self.nx);
        fp.write_usize(self.ny);
        fp.write_f64(self.thickness_mm);
        fp.write_f64(self.smeared_mass_kg_m2);
        fp.write_u8(match self.material {
            MaterialKind::Aluminum => 0,
            MaterialKind::Copper => 1,
            MaterialKind::Fr4 => 2,
        });
    }
}

/// The time-integration scheme of a transient request — the wire-safe
/// mirror of `aeropack_mission::Scheme`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// First-order backward Euler.
    BackwardEuler,
    /// Second-order trapezoidal rule.
    Trapezoidal,
}

impl SchemeKind {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Self::BackwardEuler => "backward_euler",
            Self::Trapezoidal => "trapezoidal",
        }
    }

    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "backward_euler" => Some(Self::BackwardEuler),
            "trapezoidal" => Some(Self::Trapezoidal),
            _ => None,
        }
    }

    /// The mission-crate scheme this tag denotes.
    pub fn scheme(self) -> aeropack_mission::Scheme {
        match self {
            Self::BackwardEuler => aeropack_mission::Scheme::BackwardEuler,
            Self::Trapezoidal => aeropack_mission::Scheme::Trapezoidal,
        }
    }
}

/// Which mission profile a transient request flies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MissionSpec {
    /// An ISA climb–cruise–descent flight: the plate convects from its
    /// top face with the altitude-derated film coefficient
    /// (`PlateSpec::h_w_m2k` at sea level) into the ISA ambient.
    ClimbCruiseDescent {
        /// Cruise altitude, m.
        cruise_altitude_m: f64,
        /// Climb duration, s.
        climb_s: f64,
        /// Cruise duration, s.
        cruise_s: f64,
        /// Descent duration, s.
        descent_s: f64,
    },
    /// Repeated 90-minute LEO sun/eclipse cycles: the plate's top face
    /// radiates to deep space and absorbs the orbit's solar/albedo/IR
    /// flux.
    OrbitCycle {
        /// Number of orbits.
        cycles: usize,
        /// Radiator emissivity `ε ∈ (0, 1]`.
        emissivity: f64,
        /// Radiator absorptivity `α ∈ [0, 1]`.
        absorptivity: f64,
    },
}

impl MissionSpec {
    /// Stable wire tag of the mission kind.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::ClimbCruiseDescent { .. } => "climb_cruise_descent",
            Self::OrbitCycle { .. } => "orbit_cycle",
        }
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        match *self {
            Self::ClimbCruiseDescent {
                cruise_altitude_m,
                climb_s,
                cruise_s,
                descent_s,
            } => {
                fp.write_u8(0);
                fp.write_f64(cruise_altitude_m);
                fp.write_f64(climb_s);
                fp.write_f64(cruise_s);
                fp.write_f64(descent_s);
            }
            Self::OrbitCycle {
                cycles,
                emissivity,
                absorptivity,
            } => {
                fp.write_u8(1);
                fp.write_usize(cycles);
                fp.write_f64(emissivity);
                fp.write_f64(absorptivity);
            }
        }
    }
}

/// A mission-profile transient of a dissipating plate: the plate model
/// of [`PlateSpec`] flown through a [`MissionSpec`] by the
/// `aeropack-mission` adaptive driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// The plate model (geometry, material, dissipation; `h_w_m2k` is
    /// the sea-level film coefficient for flight missions and unused
    /// for orbit missions).
    pub plate: PlateSpec,
    /// The mission flown.
    pub mission: MissionSpec,
    /// The time-integration scheme.
    pub scheme: SchemeKind,
    /// Fixed step length, s; `None` = adaptive stepping at the driver's
    /// default tolerances.
    pub fixed_dt_s: Option<f64>,
    /// Uniform initial temperature, °C.
    pub initial_c: f64,
}

impl TransientSpec {
    /// Model-level fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.transient");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        self.plate.hash_into(&mut *fp);
        self.mission.hash_into(&mut *fp);
        fp.write_u8(match self.scheme {
            SchemeKind::BackwardEuler => 0,
            SchemeKind::Trapezoidal => 1,
        });
        match self.fixed_dt_s {
            Some(dt) => {
                fp.write_bool(true);
                fp.write_f64(dt);
            }
            None => fp.write_bool(false),
        }
        fp.write_f64(self.initial_c);
    }
}

/// A deterministic multi-objective packaging optimization run: the
/// `aeropack-optimize` NSGA-II search over cooling topology × TIM ×
/// board pitch × wall thickness, reported as a Pareto front over
/// (max ΔT, mass, MTBF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeSpec {
    /// Root seed of the run's single RNG stream (the reproducer: the
    /// same seed and spec give a bit-identical front at any worker
    /// thread count).
    pub seed: u64,
    /// Population size (≥ 2).
    pub population: usize,
    /// Offspring generations after the initial sample.
    pub generations: usize,
    /// Adverse tilt applied to gravity-sensitive devices, degrees.
    pub tilt_deg: f64,
    /// Cabin/bay ambient, °C.
    pub ambient_c: f64,
    /// Nominal box dissipation at power scale 1, W.
    pub base_power_w: f64,
}

impl OptimizeSpec {
    /// Model-level fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.optimize");
        self.hash_into(&mut fp);
        fp.finish()
    }

    fn hash_into(&self, fp: &mut Fingerprint) {
        fp.write_u64(self.seed);
        fp.write_usize(self.population);
        fp.write_usize(self.generations);
        fp.write_f64(self.tilt_deg);
        fp.write_f64(self.ambient_c);
        fp.write_f64(self.base_power_w);
    }
}

/// One analysis the service can run — the single typed entry point for
/// every workload in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisRequest {
    /// Maximum SEB power holding ΔT(PCB−air) under a limit (the Fig 10
    /// capability anchors).
    SebCapability {
        /// Box configuration.
        spec: SebSpec,
        /// ΔT limit, K.
        dt_limit_k: f64,
    },
    /// One SEB operating point at a given power.
    SebOperatingPoint {
        /// Box configuration.
        spec: SebSpec,
        /// Dissipated power, W.
        power_w: f64,
    },
    /// ΔT(PCB−air) across a power grid for one configuration (a whole
    /// Fig 10 column).
    SebPowerSweep {
        /// Box configuration.
        spec: SebSpec,
        /// Power grid, W.
        powers_w: Vec<f64>,
    },
    /// Steady finite-volume field of a plate, with sources multiplied
    /// by `scale` (1.0 = nominal). Requests sharing a [`PlateSpec`]
    /// are coalesced into one multi-RHS solve.
    FvSteady {
        /// Plate definition.
        spec: PlateSpec,
        /// Source multiplier.
        scale: f64,
    },
    /// Steady Level-2 board field with sources multiplied by `scale`.
    /// Requests sharing a [`BoardSpec`] are coalesced.
    BoardSteady {
        /// Board definition.
        spec: BoardSpec,
        /// Source multiplier.
        scale: f64,
    },
    /// Static deflection under a centre point load.
    FemStatic {
        /// Plate definition.
        spec: FemPlateSpec,
        /// Centre load, N (positive = transverse).
        load_n: f64,
    },
    /// Natural frequencies of the simply-supported plate.
    FemModal {
        /// Plate definition.
        spec: FemPlateSpec,
        /// Number of modes to extract.
        n_modes: usize,
    },
    /// A mission-profile transient through the `aeropack-mission`
    /// adaptive driver.
    Transient {
        /// Plate + mission + integration settings.
        spec: TransientSpec,
    },
    /// A multi-objective packaging optimization run (ΔT × mass × MTBF
    /// Pareto front over the cooling-topology design space).
    Optimize {
        /// Run definition.
        spec: OptimizeSpec,
    },
    /// Harmonic base-excitation transmissibility sweep at the plate
    /// centre.
    FemHarmonic {
        /// Plate definition.
        spec: FemPlateSpec,
        /// Modal damping ratio.
        damping: f64,
        /// Sweep start, Hz.
        f_min_hz: f64,
        /// Sweep end, Hz.
        f_max_hz: f64,
        /// Number of sweep points.
        points: usize,
    },
}

impl AnalysisRequest {
    /// Stable wire tag of the request variant.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::SebCapability { .. } => "seb_capability",
            Self::SebOperatingPoint { .. } => "seb_operating_point",
            Self::SebPowerSweep { .. } => "seb_power_sweep",
            Self::FvSteady { .. } => "fv_steady",
            Self::BoardSteady { .. } => "board_steady",
            Self::FemStatic { .. } => "fem_static",
            Self::FemModal { .. } => "fem_modal",
            Self::Transient { .. } => "transient",
            Self::Optimize { .. } => "optimize",
            Self::FemHarmonic { .. } => "fem_harmonic",
        }
    }

    /// The content-addressed result-cache key: a canonical hash of the
    /// variant and every parameter. Invariant under how the request
    /// value was produced; `NaN`-free by construction (the underlying
    /// [`Fingerprint`] rejects NaN inputs with a panic).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("serve.request");
        fp.write_str(self.tag());
        match self {
            Self::SebCapability { spec, dt_limit_k } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*dt_limit_k);
            }
            Self::SebOperatingPoint { spec, power_w } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*power_w);
            }
            Self::SebPowerSweep { spec, powers_w } => {
                spec.hash_into(&mut fp);
                fp.write_f64s(powers_w);
            }
            Self::FvSteady { spec, scale } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*scale);
            }
            Self::BoardSteady { spec, scale } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*scale);
            }
            Self::FemStatic { spec, load_n } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*load_n);
            }
            Self::FemModal { spec, n_modes } => {
                spec.hash_into(&mut fp);
                fp.write_usize(*n_modes);
            }
            Self::Transient { spec } => spec.hash_into(&mut fp),
            Self::Optimize { spec } => spec.hash_into(&mut fp),
            Self::FemHarmonic {
                spec,
                damping,
                f_min_hz,
                f_max_hz,
                points,
            } => {
                spec.hash_into(&mut fp);
                fp.write_f64(*damping);
                fp.write_f64(*f_min_hz);
                fp.write_f64(*f_max_hz);
                fp.write_usize(*points);
            }
        }
        fp.finish()
    }

    /// The coalescing key, when this request can batch with others:
    /// requests returning `Some(k)` with equal `k` share one model and
    /// differ only in their source scale, so a worker folds them into
    /// a single assembly + multi-RHS solve.
    pub fn coalesce_key(&self) -> Option<u64> {
        match self {
            Self::FvSteady { spec, .. } => Some(spec.fingerprint()),
            Self::BoardSteady { spec, .. } => Some(spec.fingerprint()),
            _ => None,
        }
    }

    /// The source scale of a coalescible request.
    pub(crate) fn scale(&self) -> Option<f64> {
        match self {
            Self::FvSteady { scale, .. } | Self::BoardSteady { scale, .. } => Some(*scale),
            _ => None,
        }
    }
}

/// The result of one [`AnalysisRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisResponse {
    /// Result of [`AnalysisRequest::SebCapability`].
    Capability {
        /// Maximum power holding the ΔT limit, W.
        watts: f64,
    },
    /// Result of [`AnalysisRequest::SebOperatingPoint`].
    OperatingPoint {
        /// Dissipated power, W.
        power_w: f64,
        /// PCB reference temperature, °C.
        pcb_c: f64,
        /// Box wall temperature, °C.
        wall_c: f64,
        /// Power carried by the loop heat pipes, W.
        lhp_w: f64,
        /// ΔT(PCB − ambient), K.
        dt_pcb_air_k: f64,
    },
    /// Result of [`AnalysisRequest::SebPowerSweep`]: one entry per
    /// requested power; `None` marks a dry-out point (the capability
    /// cliff the paper's Fig 10 curves end at).
    PowerSweep {
        /// ΔT(PCB − ambient) per power, K; `None` = dry-out.
        dt_pcb_air_k: Vec<Option<f64>>,
    },
    /// Result of a steady FV/board solve: the field summary.
    Field {
        /// Minimum cell temperature, °C.
        min_c: f64,
        /// Maximum cell temperature, °C.
        max_c: f64,
        /// Mean cell temperature, °C.
        mean_c: f64,
        /// Number of cells solved.
        cells: usize,
    },
    /// Result of [`AnalysisRequest::Transient`]: the mission's end
    /// state and trajectory evidence.
    Transient {
        /// Minimum cell temperature at end of mission, °C.
        final_min_c: f64,
        /// Maximum cell temperature at end of mission, °C.
        final_max_c: f64,
        /// Mean temperature at end of mission, °C.
        final_mean_c: f64,
        /// Accepted steps.
        steps: usize,
        /// Rejected attempts.
        rejected: usize,
        /// Solves that reused cached preconditioner factors.
        factor_reuses: usize,
        /// Bit-exact trajectory fingerprint (step sequence + final
        /// field).
        trajectory_hash: u64,
    },
    /// Result of [`AnalysisRequest::FemStatic`].
    Static {
        /// Peak transverse deflection magnitude, m.
        max_deflection_m: f64,
    },
    /// Result of [`AnalysisRequest::FemModal`].
    Modal {
        /// Natural frequencies, Hz, ascending.
        frequencies_hz: Vec<f64>,
    },
    /// Result of [`AnalysisRequest::Optimize`]: the Pareto front in
    /// its canonical order, one entry per front design across the
    /// parallel arrays.
    Pareto {
        /// Cooling topology tag of each front design.
        topologies: Vec<String>,
        /// Worst junction rise over ambient, K.
        dt_k: Vec<f64>,
        /// Packaged mass, kg.
        mass_kg: Vec<f64>,
        /// Box-level MTBF, hours.
        mtbf_h: Vec<f64>,
        /// Bit-exact fingerprint of the whole front (genomes +
        /// objectives) — the thread-invariance witness.
        front_hash: u64,
        /// Objective evaluations performed by the run.
        evaluations: u64,
    },
    /// Result of [`AnalysisRequest::FemHarmonic`].
    Harmonic {
        /// Frequency of the peak response, Hz.
        peak_hz: f64,
        /// Peak transmissibility (dimensionless).
        peak_transmissibility: f64,
        /// Number of sweep points evaluated.
        points: usize,
    },
}

impl AnalysisResponse {
    /// Stable wire tag of the response variant.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Capability { .. } => "capability",
            Self::OperatingPoint { .. } => "operating_point",
            Self::PowerSweep { .. } => "power_sweep",
            Self::Field { .. } => "field",
            Self::Transient { .. } => "transient",
            Self::Static { .. } => "static",
            Self::Modal { .. } => "modal",
            Self::Pareto { .. } => "pareto",
            Self::Harmonic { .. } => "harmonic",
        }
    }
}
