//! The workspace-unified error type and its stable wire codes.
//!
//! Every physics crate keeps its own error enum — [`ThermalError`],
//! [`FemError`], [`DesignError`], … — because those carry
//! domain-precise payloads. What they lack is a single type a service
//! boundary can speak: the wire protocol needs one error vocabulary
//! with *stable string codes* that outlive refactors of the Rust
//! enums. [`Error`] is that vocabulary. `From` conversions fold every
//! per-crate error into it (so `?` works across the whole workspace),
//! and [`Error::code`] yields the protocol string the JSON codec
//! serialises.

use std::error::Error as StdError;
use std::fmt;

use aeropack_core::DesignError;
use aeropack_fem::FemError;
use aeropack_solver::SolverError;
use aeropack_thermal::ThermalError;
use aeropack_twophase::TwoPhaseError;

/// The unified workspace error, re-exported as `aeropack::Error`.
///
/// Variants split into two families: *analysis* errors folded up from
/// the physics crates (`Invalid`, `Singular`, `NotConverged`,
/// `DryOut`, `Infeasible`, `Analysis`) and *service* errors raised by
/// the daemon itself (`QueueFull`, `DeadlineExpired`, `ShuttingDown`,
/// `Wire`, `Io`). `Remote` carries a code the wire decoder did not
/// recognise, so protocol evolution degrades gracefully instead of
/// failing to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Invalid request or model construction input.
    Invalid {
        /// Human-readable description.
        reason: String,
    },
    /// A linear system was singular (floating network, no temperature
    /// reference, under-constrained structure).
    Singular {
        /// What was being solved.
        context: String,
    },
    /// An iterative solver exhausted its budget.
    NotConverged {
        /// Which solver.
        context: String,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// A two-phase device exceeded its capillary limit (the paper's
    /// dry-out boundary) — a *physical* outcome the SEB power sweeps
    /// report per point, not a fault.
    DryOut {
        /// Device and operating point description.
        detail: String,
    },
    /// No cooling technology in the selector's repertoire holds the
    /// requirement.
    Infeasible {
        /// What could not be satisfied.
        detail: String,
    },
    /// Any other analysis failure (material property, TIM model,
    /// qualification, …), carrying the source error's display form.
    Analysis {
        /// Rendered source error.
        detail: String,
    },
    /// The job queue is at capacity — admission control rejected the
    /// request without enqueueing it.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The request's deadline passed before a worker picked it up.
    DeadlineExpired,
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// A wire-protocol line failed to parse or had the wrong shape.
    Wire {
        /// What was malformed.
        reason: String,
    },
    /// A transport-level I/O failure.
    Io {
        /// Rendered `std::io::Error`.
        reason: String,
    },
    /// An error decoded from the wire with an unrecognised code.
    Remote {
        /// The code string as received.
        code: String,
        /// The message as received.
        message: String,
    },
}

impl Error {
    /// Shorthand for [`Error::Invalid`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::Invalid {
            reason: reason.into(),
        }
    }

    /// The stable wire-protocol code for this error. These strings are
    /// the compatibility contract of the JSON codec: clients match on
    /// them, so they never change once shipped.
    pub fn code(&self) -> &str {
        match self {
            Self::Invalid { .. } => "invalid",
            Self::Singular { .. } => "singular",
            Self::NotConverged { .. } => "not_converged",
            Self::DryOut { .. } => "dry_out",
            Self::Infeasible { .. } => "infeasible",
            Self::Analysis { .. } => "analysis",
            Self::QueueFull { .. } => "queue_full",
            Self::DeadlineExpired => "deadline_expired",
            Self::ShuttingDown => "shutting_down",
            Self::Wire { .. } => "wire",
            Self::Io { .. } => "io",
            Self::Remote { code, .. } => code,
        }
    }

    /// Reconstructs an error from a wire `(code, message)` pair. The
    /// parameterless service codes round-trip exactly; everything else
    /// keeps its code and message in [`Error::Remote`] form so no
    /// information is dropped.
    pub fn from_wire(code: &str, message: &str) -> Self {
        match code {
            "deadline_expired" => Self::DeadlineExpired,
            "shutting_down" => Self::ShuttingDown,
            _ => Self::Remote {
                code: code.to_string(),
                message: message.to_string(),
            },
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid { reason } => write!(f, "invalid request: {reason}"),
            Self::Singular { context } => write!(f, "singular system in {context}"),
            Self::NotConverged {
                context,
                iterations,
                residual,
            } => write!(
                f,
                "{context} did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Self::DryOut { detail } => write!(f, "two-phase dry-out: {detail}"),
            Self::Infeasible { detail } => write!(f, "infeasible: {detail}"),
            Self::Analysis { detail } => write!(f, "analysis failed: {detail}"),
            Self::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs); request rejected")
            }
            Self::DeadlineExpired => write!(f, "deadline expired before the job was scheduled"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Wire { reason } => write!(f, "wire protocol error: {reason}"),
            Self::Io { reason } => write!(f, "transport I/O error: {reason}"),
            Self::Remote { code, message } => write!(f, "remote error [{code}]: {message}"),
        }
    }
}

impl StdError for Error {}

impl From<SolverError> for Error {
    fn from(e: SolverError) -> Self {
        match e {
            SolverError::Singular { context } => Self::Singular {
                context: context.to_string(),
            },
            SolverError::NotConverged {
                context,
                iterations,
                residual,
            } => Self::NotConverged {
                context: context.to_string(),
                iterations,
                residual,
            },
            SolverError::InvalidInput { reason } => Self::Invalid { reason },
        }
    }
}

impl From<ThermalError> for Error {
    fn from(e: ThermalError) -> Self {
        match e {
            ThermalError::SingularSystem { context } => Self::Singular {
                context: context.to_string(),
            },
            ThermalError::NotConverged {
                context,
                iterations,
                residual,
            } => Self::NotConverged {
                context: context.to_string(),
                iterations,
                residual,
            },
            other => Self::Analysis {
                detail: other.to_string(),
            },
        }
    }
}

impl From<FemError> for Error {
    fn from(e: FemError) -> Self {
        match e {
            FemError::SingularMatrix { context } => Self::Singular {
                context: context.to_string(),
            },
            FemError::NotConverged {
                context,
                iterations,
                residual,
            } => Self::NotConverged {
                context: context.to_string(),
                iterations,
                residual,
            },
            other => Self::Analysis {
                detail: other.to_string(),
            },
        }
    }
}

impl From<TwoPhaseError> for Error {
    fn from(e: TwoPhaseError) -> Self {
        match e {
            TwoPhaseError::DryOut { .. } => Self::DryOut {
                detail: e.to_string(),
            },
            other => Self::Analysis {
                detail: other.to_string(),
            },
        }
    }
}

impl From<DesignError> for Error {
    fn from(e: DesignError) -> Self {
        match e {
            DesignError::Invalid { reason } => Self::Invalid { reason },
            DesignError::NoFeasibleCooling { .. } => Self::Infeasible {
                detail: e.to_string(),
            },
            DesignError::Thermal(t) => t.into(),
            DesignError::Structural(s) => s.into(),
            DesignError::TwoPhase(t) => t.into(),
            other => Self::Analysis {
                detail: other.to_string(),
            },
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            reason: e.to_string(),
        }
    }
}
