//! CI smoke for the analysis daemon.
//!
//! Starts a [`Service`] behind the TCP transport, drives a 50-request
//! mixed workload (SEB, FV, board, FEM — with repeats, so the result
//! cache is exercised) through a [`SocketClient`], provokes a
//! deterministic coalesced batch on a single-worker in-process
//! service, then flies a short 3-phase climb–cruise–descent mission
//! transient through the socket path. Exits non-zero if any request
//! fails or any service feature (cache, coalescing, adaptive mission
//! stepping with factor reuse) stayed cold. Honours `AEROPACK_OBS=1`
//! and `AEROPACK_OBS_REPORT` so `scripts/ci.sh` can gate the
//! `serve.*`, `mission.*` and `solver.transient.*` counters with
//! `obs_check`.

use std::sync::Arc;

use aeropack_serve::{
    serve, AnalysisRequest, AnalysisResponse, BoardSpec, CoolingModeSpec, FemPlateSpec,
    MaterialKind, MissionSpec, PlateSpec, SchemeKind, SeatKind, SebSpec, ServeConfig, Service,
    SocketClient, TransientSpec,
};

fn seb_spec() -> SebSpec {
    SebSpec {
        seat: SeatKind::Aluminum,
        lhp: true,
        tilt_deg: 0.0,
        ambient_c: 25.0,
    }
}

fn plate_spec() -> PlateSpec {
    PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Aluminum,
        power_w: 15.0,
        h_w_m2k: 40.0,
        ambient_c: 40.0,
    }
}

fn fem_spec() -> FemPlateSpec {
    FemPlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        nx: 6,
        ny: 4,
        thickness_mm: 1.6,
        smeared_mass_kg_m2: 4.5,
        material: MaterialKind::Fr4,
    }
}

/// A 50-request mixed workload with deliberate repeats: parameters
/// cycle with short periods, so later laps replay earlier requests
/// and must be answered from the cache.
fn mixed_workload() -> Vec<AnalysisRequest> {
    (0..50u32)
        .map(|i| match i % 5 {
            0 => AnalysisRequest::SebOperatingPoint {
                spec: seb_spec(),
                power_w: 30.0 + f64::from(i % 10),
            },
            1 => AnalysisRequest::FvSteady {
                spec: plate_spec(),
                scale: 0.5 + 0.25 * f64::from(i % 15) / 15.0,
            },
            2 => AnalysisRequest::BoardSteady {
                spec: BoardSpec {
                    power_w: 25.0,
                    mode: CoolingModeSpec::ForcedAir {
                        flow_multiplier: 1.0,
                    },
                    ambient_c: 40.0,
                    resolution_mm: 10.0,
                },
                scale: 0.5 + 0.5 * f64::from(i % 10) / 10.0,
            },
            3 => AnalysisRequest::SebCapability {
                spec: seb_spec(),
                dt_limit_k: 20.0 + 5.0 * f64::from(i % 3),
            },
            _ => AnalysisRequest::FemModal {
                spec: fem_spec(),
                n_modes: 3 + (i as usize) % 2,
            },
        })
        .collect()
}

fn main() {
    aeropack_obs::init_from_env();

    // --- Daemon leg: 50 mixed requests over the socket. -------------
    let service = Arc::new(Service::start(ServeConfig::new().workers(2)));
    let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").expect("daemon start");
    println!("serve_smoke: daemon on {}", daemon.addr());
    let mut client = SocketClient::connect(daemon.addr()).expect("client connect");
    let workload = mixed_workload();
    let total = workload.len();
    let results = client.call_batch(workload).expect("socket batch");
    let failures: Vec<String> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().err().map(|e| format!("request {i}: {e}")))
        .collect();
    assert!(
        failures.is_empty(),
        "serve_smoke: {} of {total} requests failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
    let stats = service.stats();
    println!(
        "serve_smoke: {total} requests ok — {} solved, {} from cache, \
         {} coalesced in {} batches",
        stats.completed, stats.cache_hits, stats.coalesced_jobs, stats.coalesced_batches
    );
    assert!(
        stats.cache_hits > 0,
        "mixed workload with repeats must produce cache hits"
    );
    daemon.shutdown();
    service.shutdown();

    // --- Coalescing leg: deterministic multi-RHS batch. --------------
    // One worker, occupied by a larger solve, while eight same-plate
    // scales stack up behind it: the worker must fold them into
    // multi-RHS batches.
    let single = Service::start(ServeConfig::new().workers(1).cache_capacity(0));
    let busy = single.submit(AnalysisRequest::FvSteady {
        spec: PlateSpec {
            nx: 48,
            ny: 48,
            ..plate_spec()
        },
        scale: 1.0,
    });
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            single.submit(AnalysisRequest::FvSteady {
                spec: plate_spec(),
                scale: 0.5 + 0.1 * f64::from(i),
            })
        })
        .collect();
    busy.wait().expect("occupancy solve");
    for t in tickets {
        t.wait().expect("coalesced solve");
    }
    let cstats = single.stats();
    println!(
        "serve_smoke: coalescing leg — {} jobs in {} batches",
        cstats.coalesced_jobs, cstats.coalesced_batches
    );
    assert!(
        cstats.coalesced_batches >= 1 && cstats.coalesced_jobs >= 2,
        "coalescing leg produced no multi-RHS batch: {cstats:?}"
    );
    single.shutdown();

    // --- Mission leg: a short 3-phase flight through the daemon path.
    // A small plate climbs to 6 km, cruises and descends inside a few
    // hundred simulated seconds; the adaptive driver must accept steps
    // and reuse its cached preconditioner factors, and the run must
    // populate the `mission.*` / `solver.transient.*` counters the CI
    // obs gate checks.
    let mission_service = Arc::new(Service::start(ServeConfig::new().workers(1)));
    let mut mission_daemon =
        serve(Arc::clone(&mission_service), "127.0.0.1:0").expect("mission daemon start");
    let mut mission_client =
        SocketClient::connect(mission_daemon.addr()).expect("mission client connect");
    let transient = AnalysisRequest::Transient {
        spec: TransientSpec {
            plate: PlateSpec {
                nx: 8,
                ny: 5,
                ..plate_spec()
            },
            mission: MissionSpec::ClimbCruiseDescent {
                cruise_altitude_m: 6_000.0,
                climb_s: 60.0,
                cruise_s: 240.0,
                descent_s: 60.0,
            },
            scheme: SchemeKind::Trapezoidal,
            fixed_dt_s: None,
            initial_c: 15.0,
        },
    };
    let response = mission_client.call(transient).expect("mission transient");
    match response {
        AnalysisResponse::Transient {
            steps,
            factor_reuses,
            final_mean_c,
            ..
        } => {
            println!(
                "serve_smoke: mission leg — {steps} adaptive steps, \
                 {factor_reuses} factor reuses, final mean {final_mean_c:.2} °C"
            );
            assert!(steps > 0, "mission leg must accept steps");
            assert!(
                factor_reuses > 0,
                "mission leg must reuse preconditioner factors"
            );
        }
        other => panic!("mission leg returned the wrong response kind: {other:?}"),
    }
    mission_daemon.shutdown();
    mission_service.shutdown();

    match aeropack_obs::write_env_report() {
        Ok(Some(path)) => println!("obs run report written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("obs run report not written: {e}"),
    }
    println!("serve_smoke: OK");
}
