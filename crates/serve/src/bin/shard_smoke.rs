//! CI smoke for two-process sharded solves.
//!
//! Re-invokes itself as a worker process (`--worker <addr-file>`) that
//! hosts an analysis daemon, then runs a 20³ sharded steady solve with
//! one shard in-process and one shard living in the worker — the
//! daemon connection upgraded to the binary frame protocol by the
//! [`SHARD_HELLO`](aeropack_serve::SHARD_HELLO) first line. Exits
//! non-zero unless the two-process solution is bit-identical to the
//! single-process one. Honours `AEROPACK_OBS=1` and
//! `AEROPACK_OBS_REPORT` so `scripts/ci.sh` can gate the `solver.dd.*`
//! and `serve.shard.*` counters with `obs_check`.

use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use std::{env, fs};

use aeropack_serve::{serve, sharded_solve_remote, ServeConfig, Service};
use aeropack_solver::{CsrMatrix, Precond, ShardedSolve, SolverConfig};

/// The 7-point Laplacian plus a mass term: the same SPD structure the
/// thermal FV assembly produces, small enough for a CI smoke.
fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    CsrMatrix::from_row_fn(n, 1, move |i, row| {
        let x = i % nx;
        let y = (i / nx) % ny;
        let z = i / (nx * ny);
        row.push((i, 6.5));
        if x > 0 {
            row.push((i - 1, -1.0));
        }
        if x + 1 < nx {
            row.push((i + 1, -1.0));
        }
        if y > 0 {
            row.push((i - nx, -1.0));
        }
        if y + 1 < ny {
            row.push((i + nx, -1.0));
        }
        if z > 0 {
            row.push((i - nx * ny, -1.0));
        }
        if z + 1 < nz {
            row.push((i + nx * ny, -1.0));
        }
        row.sort_by_key(|&(c, _)| c);
    })
}

/// Worker mode: host a daemon on a loopback port, publish the address
/// atomically, and park until the coordinator closes our stdin.
fn worker(addr_file: &str) {
    let service = Arc::new(Service::start(ServeConfig::new().workers(1)));
    let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").expect("worker daemon start");
    let tmp = format!("{addr_file}.tmp");
    fs::write(&tmp, daemon.addr().to_string()).expect("write addr file");
    fs::rename(&tmp, addr_file).expect("publish addr file");
    let mut sink = String::new();
    let _ = std::io::stdin().read_line(&mut sink);
    daemon.shutdown();
    service.shutdown();
}

fn coordinator() {
    aeropack_obs::init_from_env();
    let exe = env::current_exe().expect("current exe");
    let addr_file =
        env::temp_dir().join(format!("aeropack_shard_smoke_{}.addr", std::process::id()));
    let _ = fs::remove_file(&addr_file);
    let mut child = Command::new(exe)
        .arg("--worker")
        .arg(&addr_file)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn worker process");

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr: SocketAddr = loop {
        if let Ok(s) = fs::read_to_string(&addr_file) {
            if !s.trim().is_empty() {
                break s.trim().parse().expect("worker address");
            }
        }
        assert!(
            Instant::now() < deadline,
            "worker process never published its address"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    let (nx, ny, nz) = (20, 20, 20);
    let a = poisson3d(nx, ny, nz);
    let b: Vec<f64> = (0..a.n()).map(|i| (i % 17) as f64 * 0.125 - 1.0).collect();
    let cfg = SolverConfig::new()
        .grid_dims((nx, ny, nz))
        .preconditioner(Precond::AdditiveSchwarz(4))
        .tolerance(1e-10)
        .context("shard smoke steady solve");

    let reference = ShardedSolve::new(&a, &cfg, 1)
        .expect("single-process driver")
        .solve(&b)
        .expect("single-process solve");
    let solution = sharded_solve_remote(&a, &b, &cfg, &[addr]).expect("two-process sharded solve");

    let dd = solution.stats.dd.as_ref().expect("dd stats");
    assert_eq!(dd.shards, 2, "one local + one remote shard");
    assert_eq!(dd.subdomains, 4);
    let mut mismatches = 0usize;
    for (got, want) in solution.x.iter().zip(&reference.x) {
        if got.to_bits() != want.to_bits() {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "two-process solve must be bit-identical to single-process"
    );
    println!(
        "shard_smoke: 20³ solve across 2 processes — {} iterations, \
         {} subdomains, {} halo cells, {:.3} ms staging, bit-identical",
        solution.stats.iterations,
        dd.subdomains,
        dd.halo_cells,
        dd.exchange_seconds * 1e3
    );

    drop(child.stdin.take());
    let _ = child.wait();
    let _ = fs::remove_file(&addr_file);

    match aeropack_obs::write_env_report() {
        Ok(Some(path)) => println!("obs run report written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("obs run report not written: {e}"),
    }
    println!("shard_smoke: OK");
}

fn main() {
    let args: Vec<String> = env::args().collect();
    if args.len() == 3 && args[1] == "--worker" {
        worker(&args[2]);
    } else {
        coordinator();
    }
}
