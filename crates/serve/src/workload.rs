//! The [`Workload`] execution interface and the per-worker
//! [`Workspace`].
//!
//! Every analysis the service dispatches — and every scenario a sweep
//! engine fans out — reduces to the same two operations: *identify*
//! the work (a canonical fingerprint, for caching and coalescing) and
//! *run* it against warm per-worker state. [`Workload`] is that
//! interface. The typed wrappers ([`SebAnalysis`], [`FvAnalysis`],
//! [`BoardAnalysis`], [`FemAnalysis`]) implement it for callers who
//! hold model specs directly, and [`AnalysisRequest`] implements it
//! too, so service dispatch and ad-hoc embedding share one execution
//! path instead of per-crate entry points.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use aeropack_core::{representative_board, DesignError, Level2Model, SeatStructure, SebModel};
use aeropack_fem::{modal, Dof, HarmonicResponse, PlateMesh, PlateProperties};
use aeropack_solver::{Precond, SolverConfig};
use aeropack_sweep::Sweep;
use aeropack_thermal::{Face, FaceBc, FvField, FvGrid, FvModel};
use aeropack_twophase::TwoPhaseError;
use aeropack_units::{Celsius, Frequency, HeatTransferCoeff, Length, Power, TempDelta};

use crate::error::Error;
use crate::request::{
    AnalysisRequest, AnalysisResponse, BoardSpec, FemPlateSpec, MissionSpec, OptimizeSpec,
    PlateSpec, SeatKind, SebSpec, TransientSpec,
};

/// How many built models a [`Workspace`] keeps warm before it clears
/// its caches. Small: the point is reuse across a burst of related
/// requests, not an unbounded model store.
const WORKSPACE_CAP: usize = 16;

/// Per-worker mutable state: built models keyed by their spec
/// fingerprint, so a burst of requests against the same model reuses
/// the CSR pattern cache, the warm PCG workspace and (under IC(0))
/// the cached factorisation instead of rebuilding per request.
#[derive(Debug, Default)]
pub struct Workspace {
    fv: HashMap<u64, FvModel>,
    boards: HashMap<u64, Level2Model>,
    sebs: HashMap<u64, SebModel>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The FV plate model for `spec`, built on first use and cached.
    pub fn fv_model(&mut self, spec: &PlateSpec) -> Result<&FvModel, Error> {
        if self.fv.len() > WORKSPACE_CAP {
            self.fv.clear();
        }
        Ok(match self.fv.entry(spec.fingerprint()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(build_plate_model(spec)?),
        })
    }

    /// The Level-2 board model for `spec`, built on first use and
    /// cached.
    pub fn board_model(&mut self, spec: &BoardSpec) -> Result<&Level2Model, Error> {
        if self.boards.len() > WORKSPACE_CAP {
            self.boards.clear();
        }
        Ok(match self.boards.entry(spec.fingerprint()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(build_board_model(spec)?),
        })
    }

    /// The SEB model for `spec`, built on first use and cached.
    pub fn seb_model(&mut self, spec: &SebSpec) -> Result<&SebModel, Error> {
        if self.sebs.len() > WORKSPACE_CAP {
            self.sebs.clear();
        }
        Ok(match self.sebs.entry(spec.fingerprint()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                let seat = match spec.seat {
                    SeatKind::Aluminum => SeatStructure::aluminum(),
                    SeatKind::CarbonComposite => SeatStructure::carbon_composite(),
                };
                v.insert(SebModel::cosee(seat, spec.lhp, spec.tilt_deg.to_radians())?)
            }
        })
    }
}

fn build_plate_model(spec: &PlateSpec) -> Result<FvModel, Error> {
    if spec.nx == 0 || spec.ny == 0 {
        return Err(Error::invalid("plate mesh must have at least one cell"));
    }
    let grid = FvGrid::new(
        (spec.lx_m, spec.ly_m, spec.thickness_m),
        (spec.nx, spec.ny, 1),
    )?;
    let mut model = FvModel::new(grid, &spec.material.material());
    // Power patch over the centre half of the plate (quarter margins).
    let lo = (spec.nx / 4, spec.ny / 4, 0);
    let hi = (spec.nx - spec.nx / 4, spec.ny - spec.ny / 4, 1);
    model.add_power_box(Power::new(spec.power_w), lo, hi)?;
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(spec.h_w_m2k),
            ambient: Celsius::new(spec.ambient_c),
        },
    );
    // Repeated solves against one plate are the common service pattern:
    // the structured grid lets multigrid amortise its hierarchy setup
    // through the model's workspace (the FV model injects the grid
    // shape into the solver config automatically).
    model.set_solver_config(SolverConfig::new().preconditioner(Precond::Multigrid));
    Ok(model)
}

fn build_board_model(spec: &BoardSpec) -> Result<Level2Model, Error> {
    let pcb = representative_board("serve board", Power::new(spec.power_w))?;
    let model = Level2Model::new(
        &pcb,
        &spec.mode.mode(),
        Celsius::new(spec.ambient_c),
        Length::from_millimeters(spec.resolution_mm),
    )?;
    Ok(model)
}

fn build_fem_mesh(spec: &FemPlateSpec) -> Result<PlateMesh, Error> {
    let props = PlateProperties::from_material(
        &spec.material.material(),
        Length::from_millimeters(spec.thickness_mm),
    )?
    .with_smeared_mass(spec.smeared_mass_kg_m2);
    let mut mesh = PlateMesh::rectangular(spec.lx_m, spec.ly_m, spec.nx, spec.ny, &props)?;
    mesh.simply_support_edges()?;
    Ok(mesh)
}

fn field_response(field: &FvField) -> Result<AnalysisResponse, Error> {
    let summary = field.summary()?;
    Ok(AnalysisResponse::Field {
        min_c: summary.min.value(),
        max_c: summary.max.value(),
        mean_c: summary.mean.value(),
        cells: field.cell_count(),
    })
}

/// One unit of analysis work: a canonical identity for caching and
/// coalescing, and an execution against per-worker state.
pub trait Workload {
    /// The content-addressed cache key (see
    /// [`AnalysisRequest::fingerprint`]).
    fn fingerprint(&self) -> u64;

    /// Runs the analysis, reusing models the workspace holds warm.
    ///
    /// # Errors
    ///
    /// Any analysis failure, folded into the unified [`Error`].
    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error>;
}

/// A SEB query against one box configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SebAnalysis {
    /// Box configuration.
    pub spec: SebSpec,
    /// What to compute.
    pub query: SebQuery,
}

/// The SEB query kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum SebQuery {
    /// Maximum power holding ΔT(PCB−air) under the limit.
    Capability {
        /// ΔT limit, K.
        dt_limit_k: f64,
    },
    /// One operating point.
    OperatingPoint {
        /// Dissipated power, W.
        power_w: f64,
    },
    /// A whole power column.
    PowerSweep {
        /// Power grid, W.
        powers_w: Vec<f64>,
    },
}

impl SebAnalysis {
    fn request(&self) -> AnalysisRequest {
        match &self.query {
            SebQuery::Capability { dt_limit_k } => AnalysisRequest::SebCapability {
                spec: self.spec,
                dt_limit_k: *dt_limit_k,
            },
            SebQuery::OperatingPoint { power_w } => AnalysisRequest::SebOperatingPoint {
                spec: self.spec,
                power_w: *power_w,
            },
            SebQuery::PowerSweep { powers_w } => AnalysisRequest::SebPowerSweep {
                spec: self.spec,
                powers_w: powers_w.clone(),
            },
        }
    }
}

impl Workload for SebAnalysis {
    fn fingerprint(&self) -> u64 {
        self.request().fingerprint()
    }

    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error> {
        run_request(&self.request(), workspace)
    }
}

/// A scaled steady solve of an FV plate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FvAnalysis {
    /// Plate definition.
    pub spec: PlateSpec,
    /// Source multiplier.
    pub scale: f64,
}

impl Workload for FvAnalysis {
    fn fingerprint(&self) -> u64 {
        AnalysisRequest::FvSteady {
            spec: self.spec,
            scale: self.scale,
        }
        .fingerprint()
    }

    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error> {
        run_request(
            &AnalysisRequest::FvSteady {
                spec: self.spec,
                scale: self.scale,
            },
            workspace,
        )
    }
}

/// A scaled steady solve of a Level-2 board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardAnalysis {
    /// Board definition.
    pub spec: BoardSpec,
    /// Source multiplier.
    pub scale: f64,
}

impl Workload for BoardAnalysis {
    fn fingerprint(&self) -> u64 {
        AnalysisRequest::BoardSteady {
            spec: self.spec,
            scale: self.scale,
        }
        .fingerprint()
    }

    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error> {
        run_request(
            &AnalysisRequest::BoardSteady {
                spec: self.spec,
                scale: self.scale,
            },
            workspace,
        )
    }
}

/// A structural query against one FEM plate.
#[derive(Debug, Clone, PartialEq)]
pub struct FemAnalysis {
    /// Plate definition.
    pub spec: FemPlateSpec,
    /// What to compute.
    pub query: FemQuery,
}

/// The FEM query kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FemQuery {
    /// Static deflection under a centre point load.
    Static {
        /// Centre load, N.
        load_n: f64,
    },
    /// Natural frequencies.
    Modal {
        /// Number of modes.
        n_modes: usize,
    },
    /// Harmonic transmissibility sweep at the centre.
    Harmonic {
        /// Modal damping ratio.
        damping: f64,
        /// Sweep start, Hz.
        f_min_hz: f64,
        /// Sweep end, Hz.
        f_max_hz: f64,
        /// Number of sweep points.
        points: usize,
    },
}

impl FemAnalysis {
    fn request(&self) -> AnalysisRequest {
        match self.query {
            FemQuery::Static { load_n } => AnalysisRequest::FemStatic {
                spec: self.spec,
                load_n,
            },
            FemQuery::Modal { n_modes } => AnalysisRequest::FemModal {
                spec: self.spec,
                n_modes,
            },
            FemQuery::Harmonic {
                damping,
                f_min_hz,
                f_max_hz,
                points,
            } => AnalysisRequest::FemHarmonic {
                spec: self.spec,
                damping,
                f_min_hz,
                f_max_hz,
                points,
            },
        }
    }
}

impl Workload for FemAnalysis {
    fn fingerprint(&self) -> u64 {
        self.request().fingerprint()
    }

    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error> {
        run_request(&self.request(), workspace)
    }
}

impl Workload for AnalysisRequest {
    fn fingerprint(&self) -> u64 {
        AnalysisRequest::fingerprint(self)
    }

    fn run(&self, workspace: &mut Workspace) -> Result<AnalysisResponse, Error> {
        run_request(self, workspace)
    }
}

/// Runs every workload through `runner` — the bridge between the
/// sweep engine and the service's execution interface. Each scenario
/// gets a fresh [`Workspace`]; long-lived warm state is the service
/// worker pool's job.
pub fn run_all<W: Workload + Sync>(
    runner: &Sweep,
    items: &[W],
) -> Vec<Result<AnalysisResponse, Error>> {
    runner.map(items, |w| w.run(&mut Workspace::new()))
}

/// The single execution path behind every [`Workload`] impl.
pub(crate) fn run_request(
    request: &AnalysisRequest,
    ws: &mut Workspace,
) -> Result<AnalysisResponse, Error> {
    match request {
        AnalysisRequest::SebCapability { spec, dt_limit_k } => {
            let ambient = Celsius::new(spec.ambient_c);
            let model = ws.seb_model(spec)?;
            let cap = model.capability(TempDelta::new(*dt_limit_k), ambient)?;
            Ok(AnalysisResponse::Capability { watts: cap.value() })
        }
        AnalysisRequest::SebOperatingPoint { spec, power_w } => {
            let ambient = Celsius::new(spec.ambient_c);
            let model = ws.seb_model(spec)?;
            let state = model.solve(Power::new(*power_w), ambient)?;
            Ok(AnalysisResponse::OperatingPoint {
                power_w: state.power.value(),
                pcb_c: state.pcb_temperature.value(),
                wall_c: state.wall_temperature.value(),
                lhp_w: state.lhp_power.value(),
                dt_pcb_air_k: state.dt_pcb_air(ambient).kelvin(),
            })
        }
        AnalysisRequest::SebPowerSweep { spec, powers_w } => {
            let ambient = Celsius::new(spec.ambient_c);
            let model = ws.seb_model(spec)?;
            let mut dt = Vec::with_capacity(powers_w.len());
            for &p in powers_w {
                match model.solve(Power::new(p), ambient) {
                    Ok(state) => dt.push(Some(state.dt_pcb_air(ambient).kelvin())),
                    Err(DesignError::TwoPhase(TwoPhaseError::DryOut { .. })) => dt.push(None),
                    Err(e) => return Err(e.into()),
                }
            }
            Ok(AnalysisResponse::PowerSweep { dt_pcb_air_k: dt })
        }
        AnalysisRequest::FvSteady { spec, scale } => {
            let model = ws.fv_model(spec)?;
            let field = model.solve_steady_scaled(*scale)?;
            field_response(&field)
        }
        AnalysisRequest::BoardSteady { spec, scale } => {
            let model = ws.board_model(spec)?;
            let field = model.fv_model().solve_steady_scaled(*scale)?;
            field_response(&field)
        }
        AnalysisRequest::Transient { spec } => run_transient(spec, ws),
        AnalysisRequest::Optimize { spec } => run_optimize(spec),
        AnalysisRequest::FemStatic { spec, load_n } => {
            let mesh = build_fem_mesh(spec)?;
            let center = mesh.center_node();
            let cfg = SolverConfig::new().preconditioner(Precond::Ic0);
            let u = mesh
                .model
                .solve_static_sparse(&[(center, Dof::W, *load_n)], &cfg)?;
            let wi = mesh.model.dof_index(center, Dof::W)?;
            Ok(AnalysisResponse::Static {
                max_deflection_m: u[wi].abs(),
            })
        }
        AnalysisRequest::FemModal { spec, n_modes } => {
            let mesh = build_fem_mesh(spec)?;
            let modes = modal(&mesh.model, *n_modes)?;
            Ok(AnalysisResponse::Modal {
                frequencies_hz: modes.frequencies().iter().map(|f| f.value()).collect(),
            })
        }
        AnalysisRequest::FemHarmonic {
            spec,
            damping,
            f_min_hz,
            f_max_hz,
            points,
        } => {
            let mesh = build_fem_mesh(spec)?;
            let modes = modal(&mesh.model, 6)?;
            let resp = HarmonicResponse::new(&mesh.model, &modes, *damping)?;
            let curve = resp.sweep_with(
                &Sweep::serial(),
                mesh.center_node(),
                Dof::W,
                Frequency::new(*f_min_hz),
                Frequency::new(*f_max_hz),
                *points,
            )?;
            let (peak_hz, peak) = curve.iter().fold((0.0f64, 0.0f64), |(bf, bt), (f, t)| {
                if *t > bt {
                    (f.value(), *t)
                } else {
                    (bf, bt)
                }
            });
            Ok(AnalysisResponse::Harmonic {
                peak_hz,
                peak_transmissibility: peak,
                points: curve.len(),
            })
        }
    }
}

/// Runs a mission-profile transient: the plate model is fetched warm
/// from the workspace (sharing its symbolic pattern), flown through
/// the spec's mission by the `aeropack-mission` adaptive driver, and
/// summarised with its bit-exact trajectory fingerprint.
fn run_transient(spec: &TransientSpec, ws: &mut Workspace) -> Result<AnalysisResponse, Error> {
    use aeropack_mission::{
        AdaptiveConfig, MissionConfig, MissionDriver, MissionProfile, Orbit, RadiatingFace,
        StepControl,
    };
    let mission_err = |e: aeropack_mission::MissionError| Error::invalid(e.to_string());

    let (profile, config) = match spec.mission {
        MissionSpec::ClimbCruiseDescent {
            cruise_altitude_m,
            climb_s,
            cruise_s,
            descent_s,
        } => {
            let profile = MissionProfile::climb_cruise_descent(
                cruise_altitude_m,
                (climb_s, cruise_s, descent_s),
                HeatTransferCoeff::new(spec.plate.h_w_m2k),
            )
            .map_err(mission_err)?;
            let config = MissionConfig::new(spec.scheme.scheme()).convective_face(Face::ZMax);
            (profile, config)
        }
        MissionSpec::OrbitCycle {
            cycles,
            emissivity,
            absorptivity,
        } => {
            let profile =
                MissionProfile::orbit_cycle(&Orbit::leo_90min(), cycles).map_err(mission_err)?;
            let config = MissionConfig::new(spec.scheme.scheme()).radiating_face(RadiatingFace {
                face: Face::ZMax,
                emissivity,
                absorptivity,
            });
            (profile, config)
        }
    };
    let config = config.control(match spec.fixed_dt_s {
        Some(dt) => StepControl::Fixed { dt },
        None => StepControl::Adaptive(AdaptiveConfig::default()),
    });

    let model = ws.fv_model(&spec.plate)?.clone();
    let mut driver = MissionDriver::new(model, profile, config, Celsius::new(spec.initial_c))
        .map_err(mission_err)?;
    driver.run_to_end().map_err(mission_err)?;
    let field = driver.field().map_err(mission_err)?;
    let stats = *driver.stats();
    Ok(AnalysisResponse::Transient {
        final_min_c: field.min_temperature().value(),
        final_max_c: field.max_temperature().value(),
        final_mean_c: field.mean_temperature().value(),
        steps: stats.accepted,
        rejected: stats.rejected,
        factor_reuses: stats.factor_reuses,
        trajectory_hash: driver.trajectory_fingerprint(),
    })
}

/// Evaluation budget ceiling for service-submitted optimizer runs: a
/// wire request must not be able to pin a worker for hours.
const OPTIMIZE_MAX_EVALUATIONS: u64 = 16_000_000;

/// Runs a multi-objective optimization. The search itself runs serial
/// inside this worker — the service's parallelism is the worker pool —
/// which is also the bit-identical reference ordering, so a front hash
/// computed here matches any thread count of a library-side run.
fn run_optimize(spec: &OptimizeSpec) -> Result<AnalysisResponse, Error> {
    use aeropack_optimize::{DesignSpace, EvalContext, Optimizer, OptimizerConfig};

    if spec.population < 2 {
        return Err(Error::invalid("optimize population must be at least 2"));
    }
    if !(spec.base_power_w > 0.0 && spec.base_power_w.is_finite()) {
        return Err(Error::invalid("optimize base_power_w must be positive"));
    }
    let budget = spec.population as u64 * (spec.generations as u64 + 1);
    if budget > OPTIMIZE_MAX_EVALUATIONS {
        return Err(Error::invalid(format!(
            "optimize run of {budget} evaluations exceeds the service cap \
             of {OPTIMIZE_MAX_EVALUATIONS}"
        )));
    }
    let ctx = EvalContext::new(
        Celsius::new(spec.ambient_c),
        Power::new(spec.base_power_w),
        spec.tilt_deg.to_radians(),
    );
    let config = OptimizerConfig {
        population: spec.population,
        generations: spec.generations,
        seed: spec.seed,
        ..OptimizerConfig::default()
    };
    let result = Optimizer::new(DesignSpace::default(), config).run(&ctx, &Sweep::serial());
    let points = result.front.points();
    Ok(AnalysisResponse::Pareto {
        topologies: points
            .iter()
            .map(|p| p.genome.topology.tag().to_string())
            .collect(),
        dt_k: points.iter().map(|p| p.objectives.dt_k).collect(),
        mass_kg: points.iter().map(|p| p.objectives.mass_kg).collect(),
        mtbf_h: points.iter().map(|p| p.objectives.mtbf_hours).collect(),
        front_hash: result.front.fingerprint(),
        evaluations: result.evaluations,
    })
}

/// Runs a coalesced batch: every request shares one
/// [`coalesce_key`](AnalysisRequest::coalesce_key), so the model is
/// built (or fetched warm) once and all scales go through
/// [`FvModel::solve_steady_multi`] — one assembly, one preconditioner
/// setup, `N` right-hand sides. Responses come back in request order
/// and are bit-identical to running each request alone (each RHS
/// starts PCG from zero over the same warm workspace either way).
pub(crate) fn run_coalesced(
    requests: &[AnalysisRequest],
    ws: &mut Workspace,
) -> Result<Vec<AnalysisResponse>, Error> {
    debug_assert!(requests.len() > 1);
    let scales: Vec<f64> = requests
        .iter()
        .map(|r| r.scale().expect("coalesced request has a scale"))
        .collect();
    let fields = match &requests[0] {
        AnalysisRequest::FvSteady { spec, .. } => ws.fv_model(spec)?.solve_steady_multi(&scales)?,
        AnalysisRequest::BoardSteady { spec, .. } => ws
            .board_model(spec)?
            .fv_model()
            .solve_steady_multi(&scales)?,
        other => {
            return Err(Error::invalid(format!(
                "request {} is not coalescible",
                other.tag()
            )))
        }
    };
    fields.iter().map(field_response).collect()
}
