//! The bounded priority/deadline job queue with request coalescing.
//!
//! Scheduling order is `(priority rank, admission sequence)` over a
//! `BTreeMap` — highest priority first, strict FIFO within a priority
//! class. That ordering is the priority-inversion guard: a later
//! low-priority submission can never overtake an earlier
//! high-priority one, and within a class nothing jumps the line.
//! Coalescing rides on top: when the worker pops a job that carries a
//! [`coalesce key`](crate::AnalysisRequest::coalesce_key), every
//! queued job with the same key (any priority — they get a free ride
//! on the scheduled job's slot) is pulled into the same batch, up to
//! the configured limit, and solved through one multi-RHS call.
//!
//! Admission control is at the door ([`JobQueue::push`] rejects when
//! full or closed), and deadlines are enforced lazily at pop time:
//! every wake-up first sweeps expired jobs out of the queue so a
//! stale request never occupies a solve slot.

use std::collections::BTreeMap;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use aeropack_obs::counter;

use crate::error::Error;
use crate::request::AnalysisRequest;
use crate::service::Reply;

/// Scheduling class of a request. Within a class the queue is strictly
/// FIFO; across classes, higher always schedules first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive queries (scheduled before everything else).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Bulk/background sweeps.
    Low,
}

impl Priority {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Self::High => "high",
            Self::Normal => "normal",
            Self::Low => "low",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "high" => Some(Self::High),
            "normal" => Some(Self::Normal),
            "low" => Some(Self::Low),
            _ => None,
        }
    }

    fn rank(self) -> u8 {
        match self {
            Self::High => 0,
            Self::Normal => 1,
            Self::Low => 2,
        }
    }
}

/// One queued unit of work.
#[derive(Debug)]
pub(crate) struct Job {
    /// The analysis to run.
    pub request: AnalysisRequest,
    /// Content-addressed result-cache key.
    pub cache_key: u64,
    /// Model-identity key for multi-RHS batching, when applicable.
    pub coalesce_key: Option<u64>,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute expiry instant, if the caller set one.
    pub deadline: Option<Instant>,
    /// When the job was admitted (latency accounting).
    pub submitted: Instant,
    /// Where the worker sends the result.
    pub reply: Sender<Reply>,
}

/// What one wake-up of a worker gets: jobs whose deadline passed while
/// queued (to reject), and a batch to run (singleton, or a coalesced
/// group sharing one model).
#[derive(Debug, Default)]
pub(crate) struct Batch {
    /// Jobs to reject with [`Error::DeadlineExpired`].
    pub expired: Vec<Job>,
    /// Jobs to run; all share a coalesce key when longer than one.
    pub jobs: Vec<Job>,
}

struct QueueState {
    jobs: BTreeMap<(u8, u64), Job>,
    next_seq: u64,
    closed: bool,
}

/// The bounded, priority-ordered, coalescing job queue.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    max_batch: usize,
}

impl JobQueue {
    pub fn new(capacity: usize, max_batch: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: BTreeMap::new(),
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            max_batch: max_batch.max(1),
        }
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").jobs.len()
    }

    /// Admits a job, or rejects it without queueing: `QueueFull` at
    /// capacity, `ShuttingDown` after [`JobQueue::close`].
    pub fn push(&self, job: Job) -> Result<(), Error> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err(Error::ShuttingDown);
        }
        if s.jobs.len() >= self.capacity {
            return Err(Error::QueueFull {
                capacity: self.capacity,
            });
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.jobs.insert((job.priority.rank(), seq), job);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Closes the queue for new work. Queued jobs stay and will be
    /// drained by the workers; once the queue runs dry every blocked
    /// [`JobQueue::next_batch`] returns `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }

    /// Blocks until work is available; returns `None` when the queue
    /// is closed and fully drained (worker exit signal).
    pub fn next_batch(&self) -> Option<Batch> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            let now = Instant::now();
            let mut batch = Batch::default();
            // Deadline sweep: expired jobs never reach a solve slot.
            let expired_keys: Vec<(u8, u64)> = s
                .jobs
                .iter()
                .filter(|(_, j)| j.deadline.is_some_and(|d| d <= now))
                .map(|(k, _)| *k)
                .collect();
            for k in expired_keys {
                batch.expired.push(s.jobs.remove(&k).expect("swept key"));
            }
            if let Some((&head_key, _)) = s.jobs.iter().next() {
                let head = s.jobs.remove(&head_key).expect("head key");
                let coalesce_key = head.coalesce_key;
                batch.jobs.push(head);
                if let Some(ck) = coalesce_key {
                    // Pull every queued job sharing the model, in
                    // scheduling order, onto the head job's slot.
                    let mates: Vec<(u8, u64)> = s
                        .jobs
                        .iter()
                        .filter(|(_, j)| j.coalesce_key == Some(ck))
                        .map(|(k, _)| *k)
                        .take(self.max_batch - 1)
                        .collect();
                    for k in mates {
                        batch.jobs.push(s.jobs.remove(&k).expect("mate key"));
                    }
                }
                // The sweep above ran against a `now` captured at
                // wake-up; selection and coalescing take time, and a
                // condvar wake can deliver a head whose deadline
                // lapsed in between. Re-check against a fresh clock at
                // dispatch so a late job is rejected, not run.
                expire_late(&mut batch, Instant::now());
                return Some(batch);
            }
            if !batch.expired.is_empty() {
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue condvar wait poisoned");
        }
    }
}

/// Dispatch-time deadline re-check: moves every selected job whose
/// deadline is at or before `now` out of `batch.jobs` into
/// `batch.expired`, preserving dispatch order on both sides. Each move
/// counts under `serve.queue.expired_late` — jobs that outlived the
/// wake-up sweep but died before dispatch.
pub(crate) fn expire_late(batch: &mut Batch, now: Instant) {
    let mut i = 0;
    while i < batch.jobs.len() {
        if batch.jobs[i].deadline.is_some_and(|d| d <= now) {
            let late = batch.jobs.remove(i);
            counter!("serve.queue.expired_late");
            batch.expired.push(late);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    use super::{Batch, Job, JobQueue, Priority};
    use crate::error::Error;
    use crate::request::{AnalysisRequest, PlateSpec, SeatKind, SebSpec};
    use crate::workload::Workload;

    fn seb_request(power_w: f64) -> AnalysisRequest {
        AnalysisRequest::SebOperatingPoint {
            spec: SebSpec {
                seat: SeatKind::Aluminum,
                lhp: true,
                tilt_deg: 0.0,
                ambient_c: 25.0,
            },
            power_w,
        }
    }

    fn fv_request(scale: f64) -> AnalysisRequest {
        AnalysisRequest::FvSteady {
            spec: PlateSpec {
                lx_m: 0.1,
                ly_m: 0.1,
                thickness_m: 0.002,
                nx: 8,
                ny: 8,
                material: crate::request::MaterialKind::Aluminum,
                power_w: 10.0,
                h_w_m2k: 50.0,
                ambient_c: 40.0,
            },
            scale,
        }
    }

    fn job(request: AnalysisRequest, priority: Priority, deadline: Option<Duration>) -> Job {
        let (tx, _rx) = mpsc::channel();
        // The test keeps no receiver: queue tests only exercise
        // ordering, not replies.
        std::mem::forget(_rx);
        Job {
            cache_key: Workload::fingerprint(&request),
            coalesce_key: request.coalesce_key(),
            request,
            priority,
            deadline: deadline.map(|d| Instant::now() + d),
            submitted: Instant::now(),
            reply: tx,
        }
    }

    fn power_of(batch: &Batch) -> f64 {
        match &batch.jobs[0].request {
            AnalysisRequest::SebOperatingPoint { power_w, .. } => *power_w,
            _ => panic!("expected SEB job"),
        }
    }

    #[test]
    fn fifo_within_priority() {
        let q = JobQueue::new(16, 4);
        for p in [1.0, 2.0, 3.0] {
            q.push(job(seb_request(p), Priority::Normal, None)).unwrap();
        }
        for expect in [1.0, 2.0, 3.0] {
            let batch = q.next_batch().unwrap();
            assert_eq!(power_of(&batch), expect);
        }
    }

    #[test]
    fn high_priority_schedules_before_earlier_normal() {
        let q = JobQueue::new(16, 4);
        q.push(job(seb_request(1.0), Priority::Normal, None))
            .unwrap();
        q.push(job(seb_request(2.0), Priority::Low, None)).unwrap();
        q.push(job(seb_request(3.0), Priority::High, None)).unwrap();
        // High first despite being submitted last; Low last despite
        // being submitted before High — no inversion.
        for expect in [3.0, 1.0, 2.0] {
            assert_eq!(power_of(&q.next_batch().unwrap()), expect);
        }
    }

    #[test]
    fn expired_jobs_are_swept_not_run() {
        let q = JobQueue::new(16, 4);
        q.push(job(
            seb_request(1.0),
            Priority::Normal,
            Some(Duration::ZERO),
        ))
        .unwrap();
        q.push(job(seb_request(2.0), Priority::Normal, None))
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.expired.len(), 1);
        assert_eq!(batch.jobs.len(), 1);
        assert_eq!(power_of(&batch), 2.0);
    }

    #[test]
    fn dispatch_recheck_routes_late_jobs_to_expired() {
        use std::sync::Arc;

        let reg = Arc::new(aeropack_obs::Registry::new());
        let _g = aeropack_obs::scoped(reg.clone());

        // Three selected jobs: one already late, one with an hour of
        // margin, one with no deadline at all. A dispatch clock two
        // hours out must expire exactly the first two and count each.
        let mut batch = Batch {
            expired: Vec::new(),
            jobs: vec![
                job(seb_request(1.0), Priority::Normal, Some(Duration::ZERO)),
                job(
                    seb_request(2.0),
                    Priority::Normal,
                    Some(Duration::from_secs(3600)),
                ),
                job(seb_request(3.0), Priority::Normal, None),
            ],
        };

        let dispatch = Instant::now() + Duration::from_secs(7200);
        super::expire_late(&mut batch, dispatch);
        assert_eq!(batch.expired.len(), 2);
        assert_eq!(batch.jobs.len(), 1);
        assert_eq!(power_of(&batch), 3.0);
        assert_eq!(reg.counter("serve.queue.expired_late"), 2);

        // A fresh clock before any deadline must move nothing.
        super::expire_late(&mut batch, Instant::now());
        assert_eq!(batch.jobs.len(), 1);
        assert_eq!(reg.counter("serve.queue.expired_late"), 2);
    }

    #[test]
    fn next_batch_survives_all_selected_jobs_expiring_late() {
        // A head whose deadline lapses between sweep and dispatch
        // yields a batch with empty `jobs` and the head in `expired`
        // — the worker-loop shape for "nothing left to run".
        let q = JobQueue::new(16, 4);
        q.push(job(
            seb_request(1.0),
            Priority::Normal,
            Some(Duration::from_nanos(1)),
        ))
        .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.expired.len(), 1);
        assert!(batch.jobs.is_empty());
    }

    #[test]
    fn coalesces_same_model_jobs_across_priorities() {
        let q = JobQueue::new(16, 8);
        q.push(job(fv_request(0.5), Priority::Normal, None))
            .unwrap();
        q.push(job(seb_request(1.0), Priority::Normal, None))
            .unwrap();
        q.push(job(fv_request(1.0), Priority::Low, None)).unwrap();
        q.push(job(fv_request(1.5), Priority::Normal, None))
            .unwrap();
        let batch = q.next_batch().unwrap();
        // The head FV job pulls both same-model mates past the SEB job.
        assert_eq!(batch.jobs.len(), 3);
        assert!(batch
            .jobs
            .iter()
            .all(|j| matches!(j.request, AnalysisRequest::FvSteady { .. })));
        // The SEB job is untouched and schedules next.
        assert_eq!(power_of(&q.next_batch().unwrap()), 1.0);
    }

    #[test]
    fn coalescing_respects_the_batch_limit() {
        let q = JobQueue::new(16, 2);
        for s in [0.5, 1.0, 1.5] {
            q.push(job(fv_request(s), Priority::Normal, None)).unwrap();
        }
        assert_eq!(q.next_batch().unwrap().jobs.len(), 2);
        assert_eq!(q.next_batch().unwrap().jobs.len(), 1);
    }

    #[test]
    fn admission_control_rejects_at_capacity() {
        let q = JobQueue::new(2, 4);
        q.push(job(seb_request(1.0), Priority::Normal, None))
            .unwrap();
        q.push(job(seb_request(2.0), Priority::Normal, None))
            .unwrap();
        let err = q
            .push(job(seb_request(3.0), Priority::Normal, None))
            .unwrap_err();
        assert_eq!(err, Error::QueueFull { capacity: 2 });
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(16, 4);
        q.push(job(seb_request(1.0), Priority::Normal, None))
            .unwrap();
        q.close();
        let err = q
            .push(job(seb_request(2.0), Priority::Normal, None))
            .unwrap_err();
        assert_eq!(err, Error::ShuttingDown);
        assert_eq!(power_of(&q.next_batch().unwrap()), 1.0);
        assert!(q.next_batch().is_none());
    }
}
