//! Socket transport: a line-delimited JSON daemon over TCP.
//!
//! [`serve`] binds a listener and pumps connections onto detached
//! per-connection threads; each connection reads request lines,
//! submits them to the shared [`Service`], and writes response lines
//! in request order. Because responses preserve arrival order on a
//! connection, a client may pipeline: write a whole batch of request
//! lines, then read the same number of response lines
//! ([`SocketClient::call_batch`]).
//!
//! The accept loop is non-blocking and polls a shutdown flag, so
//! [`Daemon::shutdown`] stops the listener promptly without needing a
//! self-connection trick; in-flight connections finish their current
//! request and exit when the peer closes or the service drains.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::error::Error;
use crate::queue::Priority;
use crate::request::{AnalysisRequest, AnalysisResponse};
use crate::service::Service;
use crate::wire::{
    decode_response_line, encode_request_line, encode_response_line, WireRequest, WireResponse,
};

const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A running socket daemon bound to a local address.
pub struct Daemon {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Daemon {
    /// The address the daemon is listening on (use with
    /// [`SocketClient::connect`]; bind to port 0 to let the OS pick).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Does not
    /// shut down the underlying [`Service`] — the owner does that.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(service: &Service, stream: TcpStream) -> Result<(), Error> {
    // The first line decides the protocol: the shard-worker magic
    // upgrades this connection to the binary frame protocol (the
    // connection thread *becomes* the shard worker); anything else is
    // the first line-JSON request.
    let mut writer_stream = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    if first.trim_end() == crate::shard::SHARD_HELLO {
        return crate::shard::run_worker(reader, writer_stream);
    }
    // Submit on the read side, resolve on the write side: every
    // pipelined line is queued *before* the first result is awaited,
    // which is what lets the service coalesce a batch arriving on one
    // connection. Responses still go out in request order.
    let (tx, rx) = std::sync::mpsc::channel::<(u64, crate::service::Ticket)>();
    let writer_thread = thread::Builder::new()
        .name("aeropack-serve-write".to_string())
        .spawn(move || -> Result<(), Error> {
            for (id, ticket) in rx {
                let response = WireResponse {
                    id,
                    result: ticket.wait(),
                };
                let mut out = encode_response_line(&response);
                out.push('\n');
                writer_stream.write_all(out.as_bytes())?;
                writer_stream.flush()?;
            }
            Ok(())
        })
        .map_err(|e| Error::Io {
            reason: e.to_string(),
        })?;
    let submit = |line: &str| -> Option<(u64, crate::service::Ticket)> {
        if line.trim().is_empty() {
            return None;
        }
        Some(match crate::wire::decode_request_line(line) {
            Ok(req) => {
                let deadline = req.deadline();
                let ticket = service.submit_with(req.request, req.priority, deadline);
                (req.id, ticket)
            }
            Err(e) => (0, crate::service::Ticket::ready(Err(e))),
        })
    };
    let mut closed = false;
    if let Some(queued) = submit(&first) {
        closed = tx.send(queued).is_err();
    }
    if !closed {
        for line in reader.lines() {
            let line = line?;
            let Some(queued) = submit(&line) else {
                continue;
            };
            if tx.send(queued).is_err() {
                break;
            }
        }
    }
    drop(tx);
    match writer_thread.join() {
        Ok(result) => result,
        Err(_) => Err(Error::Io {
            reason: "connection writer panicked".to_string(),
        }),
    }
}

/// Starts the TCP daemon for a shared service. `bind` is an address
/// like `"127.0.0.1:0"` (port 0 = OS-assigned, reported by
/// [`Daemon::addr`]).
pub fn serve(service: Arc<Service>, bind: &str) -> Result<Daemon, Error> {
    let listener = TcpListener::bind(bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let obs_sink = aeropack_obs::propagation_handle();
    let accept_thread = thread::Builder::new()
        .name("aeropack-serve-accept".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let sink = obs_sink.clone();
                        let _ = thread::Builder::new()
                            .name("aeropack-serve-conn".to_string())
                            .spawn(move || {
                                let _sink = sink.map(aeropack_obs::attach);
                                // Peer disconnects surface as Err; the
                                // connection just ends.
                                let _ = handle_connection(&service, stream);
                            });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        })
        .map_err(|e| Error::Io {
            reason: e.to_string(),
        })?;
    Ok(Daemon {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// A blocking client for the TCP daemon.
pub struct SocketClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl SocketClient {
    /// Connects to a daemon address (e.g. the value of
    /// [`Daemon::addr`]).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self, Error> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, req: &WireRequest) -> Result<(), Error> {
        let mut line = encode_request_line(req);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<WireResponse, Error> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(Error::Io {
                reason: "connection closed by daemon".to_string(),
            });
        }
        decode_response_line(line.trim_end())
    }

    /// One synchronous request/response exchange at normal priority.
    pub fn call(&mut self, request: AnalysisRequest) -> Result<AnalysisResponse, Error> {
        self.call_with(request, Priority::Normal, None)
    }

    /// One exchange with explicit priority and relative deadline.
    pub fn call_with(
        &mut self,
        request: AnalysisRequest,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<AnalysisResponse, Error> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&WireRequest {
            id,
            priority,
            deadline_ms,
            request,
        })?;
        let resp = self.receive()?;
        if resp.id != id {
            return Err(Error::Wire {
                reason: format!("response id {} does not match request id {id}", resp.id),
            });
        }
        resp.result
    }

    /// Pipelines a batch: writes every request line, then reads the
    /// responses in order. This is what lets the daemon coalesce
    /// same-model requests — they are all queued before the first
    /// solve starts.
    pub fn call_batch(
        &mut self,
        requests: Vec<AnalysisRequest>,
    ) -> Result<Vec<Result<AnalysisResponse, Error>>, Error> {
        let first_id = self.next_id;
        for request in &requests {
            let id = self.next_id;
            self.next_id += 1;
            self.send(&WireRequest {
                id,
                priority: Priority::Normal,
                deadline_ms: None,
                request: request.clone(),
            })?;
        }
        let mut results = Vec::with_capacity(requests.len());
        for offset in 0..requests.len() {
            let resp = self.receive()?;
            let expect = first_id + offset as u64;
            if resp.id != expect {
                return Err(Error::Wire {
                    reason: format!("response id {} does not match request id {expect}", resp.id),
                });
            }
            results.push(resp.result);
        }
        Ok(results)
    }
}
