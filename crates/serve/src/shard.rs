//! Multi-process sharding: the serve-side half of the solver's
//! domain-decomposed solves.
//!
//! Two independent axes of scale-out live here:
//!
//! - **Sharding one solve** — [`sharded_solve_remote`] runs the
//!   solver's additive-Schwarz PCG with some shards living
//!   in *other processes*: each remote shard is a daemon connection
//!   upgraded by the [`SHARD_HELLO`] first line into the binary frame
//!   protocol ([`crate::wire::FrameKind`]), with [`RemoteShard`]
//!   implementing the solver's `SlabOperator` over the wire. Because
//!   the worker side reuses the exact in-process `SlabWorker` compute
//!   core and every vector travels as exact `f64` bit patterns, a
//!   cross-process solve is bit-identical to the single-process one.
//! - **Sharding a workload** — [`shard_batch`] fans a batch of
//!   [`AnalysisRequest`]s (FV steady, transients, …) across several
//!   daemon connections using the sweep crate's deterministic
//!   [`Sweep::shard_blocks`] assignment, pipelining each block and
//!   reassembling responses in request order.
//!
//! The shard count is a pure *execution* knob: it never changes
//! results, only where they are computed. `AEROPACK_SHARDS` (read via
//! `aeropack_solver::shards_from_env`) is the conventional way to pick
//! it at deployment time.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use aeropack_obs::counter;
use aeropack_solver::{
    CsrMatrix, Partition, ShardedSolve, Slab, SlabOperator, SlabSpec, SlabWorker, Solution,
    SolverConfig, SolverError,
};
use aeropack_sweep::Sweep;

use crate::error::Error;
use crate::request::{AnalysisRequest, AnalysisResponse};
use crate::transport::SocketClient;
use crate::wire::{self, FrameKind};

/// The magic first line that upgrades a daemon connection from the
/// line-JSON analysis protocol to the binary shard-worker protocol.
pub const SHARD_HELLO: &str = "{\"shard_worker\":1}";

fn send_err(writer: &mut impl Write, message: &str) -> Result<(), Error> {
    wire::write_frame(writer, FrameKind::Err, message.as_bytes())
}

/// Runs the worker side of the shard protocol on an upgraded
/// connection: `Setup` factors the shard, then `ApplyA`/`ApplyM`
/// frames are answered with `Ap` (owned-range matrix product) and `Z`
/// (extended-range Schwarz contribution) vectors until `Done` or
/// end-of-stream. The compute core is the solver's own [`SlabWorker`],
/// which is what makes the answers bit-identical to an in-process
/// shard.
///
/// # Errors
///
/// Returns transport failures; protocol misuse (apply before setup,
/// an invalid spec) is reported to the peer as an `Err` frame and the
/// loop continues.
pub fn run_worker(mut reader: impl BufRead, mut writer: impl Write) -> Result<(), Error> {
    counter!("serve.shard.worker_connections");
    let mut worker: Option<SlabWorker> = None;
    let mut own: Vec<f64> = Vec::new();
    let mut ext: Vec<f64> = Vec::new();
    loop {
        let Some((kind, payload)) = wire::read_frame(&mut reader)? else {
            return Ok(());
        };
        match kind {
            FrameKind::Setup => match wire::decode_slab_spec(&payload) {
                Ok(spec) => {
                    let own_len = spec.slab.owned_cells(spec.plane).len();
                    let ext_len = spec.slab.ext_cells(spec.plane).len();
                    match SlabWorker::new(spec, "serve shard worker") {
                        Ok(w) => {
                            worker = Some(w);
                            own = vec![0.0; own_len];
                            ext = vec![0.0; ext_len];
                            counter!("serve.shard.workers_ready");
                            wire::write_frame(&mut writer, FrameKind::Ready, &[])?;
                        }
                        Err(e) => send_err(&mut writer, &e.to_string())?,
                    }
                }
                Err(e) => send_err(&mut writer, &e.to_string())?,
            },
            FrameKind::ApplyA | FrameKind::ApplyM => {
                let Some(w) = worker.as_mut() else {
                    send_err(&mut writer, "apply frame before SETUP")?;
                    continue;
                };
                let x = match wire::decode_f64s(&payload) {
                    Ok(x) => x,
                    Err(e) => {
                        send_err(&mut writer, &e.to_string())?;
                        continue;
                    }
                };
                let (result, reply) = if kind == FrameKind::ApplyA {
                    (w.apply_a(&x, &mut own), FrameKind::Ap)
                } else {
                    (w.apply_m(&x, &mut ext), FrameKind::Z)
                };
                match result {
                    Ok(()) => {
                        counter!("serve.shard.applies");
                        let out = if kind == FrameKind::ApplyA {
                            &own
                        } else {
                            &ext
                        };
                        wire::write_frame(&mut writer, reply, &wire::encode_f64s(out))?;
                    }
                    Err(e) => send_err(&mut writer, &e.to_string())?,
                }
            }
            FrameKind::Done => return Ok(()),
            other => send_err(&mut writer, &format!("unexpected frame {other:?}"))?,
        }
    }
}

/// One shard of a sharded solve living in another process: a
/// `SlabOperator` whose matrix and tile applications are round-trips
/// over the frame protocol to a daemon connection upgraded with
/// [`SHARD_HELLO`].
pub struct RemoteShard {
    slab: Slab,
    own_len: usize,
    ext_len: usize,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    exchange_seconds: f64,
}

impl RemoteShard {
    /// Connects to a daemon, upgrades the connection, ships `spec`,
    /// and waits for the worker's `Ready`.
    ///
    /// # Errors
    ///
    /// Returns connection failures and any `Err` frame the worker
    /// answers the setup with (an invalid spec, a factorization
    /// breakdown).
    pub fn connect(addr: impl ToSocketAddrs, spec: &SlabSpec) -> Result<Self, Error> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        writer.write_all(SHARD_HELLO.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut me = Self {
            slab: spec.slab,
            own_len: spec.slab.owned_cells(spec.plane).len(),
            ext_len: spec.slab.ext_cells(spec.plane).len(),
            reader: BufReader::new(stream),
            writer,
            exchange_seconds: 0.0,
        };
        wire::write_frame(
            &mut me.writer,
            FrameKind::Setup,
            &wire::encode_slab_spec(spec),
        )?;
        match wire::read_frame(&mut me.reader)? {
            Some((FrameKind::Ready, _)) => {}
            Some((FrameKind::Err, msg)) => {
                return Err(Error::Invalid {
                    reason: format!(
                        "shard worker rejected setup: {}",
                        String::from_utf8_lossy(&msg)
                    ),
                })
            }
            other => {
                return Err(Error::Wire {
                    reason: format!("shard worker answered setup with {other:?}"),
                })
            }
        }
        counter!("serve.shard.remote_shards");
        Ok(me)
    }

    fn round_trip(
        &mut self,
        send: FrameKind,
        expect: FrameKind,
        x: &[f64],
        out: &mut [f64],
    ) -> Result<(), SolverError> {
        let to_solver = |e: Error| SolverError::invalid(format!("remote shard: {e}"));
        // Staging time is the serialize/write and decode cost; the
        // blocking read in between is the worker's compute, not ours.
        let t = Instant::now();
        let payload = wire::encode_f64s(x);
        wire::write_frame(&mut self.writer, send, &payload).map_err(to_solver)?;
        self.exchange_seconds += t.elapsed().as_secs_f64();
        let frame = wire::read_frame(&mut self.reader).map_err(to_solver)?;
        let t = Instant::now();
        match frame {
            Some((kind, payload)) if kind == expect => {
                let vs = wire::decode_f64s(&payload).map_err(to_solver)?;
                if vs.len() != out.len() {
                    return Err(SolverError::invalid(format!(
                        "remote shard answered {} values where {} were expected",
                        vs.len(),
                        out.len()
                    )));
                }
                out.copy_from_slice(&vs);
            }
            Some((FrameKind::Err, msg)) => {
                return Err(SolverError::invalid(format!(
                    "remote shard: {}",
                    String::from_utf8_lossy(&msg)
                )))
            }
            other => {
                return Err(SolverError::invalid(format!(
                    "remote shard answered {send:?} with {other:?}"
                )))
            }
        }
        self.exchange_seconds += t.elapsed().as_secs_f64();
        counter!("serve.shard.remote_applies");
        Ok(())
    }
}

impl SlabOperator for RemoteShard {
    fn slab(&self) -> Slab {
        self.slab
    }

    fn apply_a(&mut self, x_ext: &[f64], y_own: &mut [f64]) -> Result<(), SolverError> {
        if y_own.len() != self.own_len {
            return Err(SolverError::invalid("shard apply_a slice length mismatch"));
        }
        self.round_trip(FrameKind::ApplyA, FrameKind::Ap, x_ext, y_own)
    }

    fn apply_m(&mut self, r_ext: &[f64], z_ext: &mut [f64]) -> Result<(), SolverError> {
        if z_ext.len() != self.ext_len {
            return Err(SolverError::invalid("shard apply_m slice length mismatch"));
        }
        self.round_trip(FrameKind::ApplyM, FrameKind::Z, r_ext, z_ext)
    }

    fn exchange_seconds(&self) -> f64 {
        self.exchange_seconds
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        // Best-effort release so the worker's connection thread exits
        // promptly instead of waiting for the TCP teardown.
        let _ = wire::write_frame(&mut self.writer, FrameKind::Done, &[]);
    }
}

/// Solves an SPD grid system with its shards spread over worker
/// processes: the first shard runs in-process, each address in
/// `workers` hosts one more. With an empty `workers` list this
/// degenerates to the solver's single-process [`ShardedSolve`].
///
/// The shard count (`workers.len() + 1`) is an execution knob only:
/// the solution bits match the single-process solve at any count.
///
/// # Errors
///
/// Returns solver-side partition/config errors and any connection or
/// setup failure from a worker.
pub fn sharded_solve_remote(
    a: &CsrMatrix,
    b: &[f64],
    cfg: &SolverConfig,
    workers: &[std::net::SocketAddr],
) -> Result<Solution, Error> {
    let _span = aeropack_obs::span!("serve.shard.solve", shards = workers.len() + 1);
    let requested = match cfg.get_preconditioner() {
        aeropack_solver::Precond::AdditiveSchwarz(k) => k,
        _ => 0,
    };
    let part = Partition::new(a.n(), cfg.get_grid_dims(), requested)?;
    let layout = part.shard_layout(workers.len() + 1);
    let mut ops: Vec<Box<dyn SlabOperator>> = Vec::with_capacity(layout.len());
    for (i, (slab, tile_range)) in layout.into_iter().enumerate() {
        let tiles = &part.tiles()[tile_range];
        if i == 0 {
            ops.push(Box::new(SlabWorker::from_global(
                a,
                &part,
                slab,
                tiles,
                cfg.get_context(),
            )?));
        } else {
            let spec = SlabSpec::extract(a, &part, slab, tiles)?;
            ops.push(Box::new(RemoteShard::connect(workers[i - 1], &spec)?));
        }
    }
    let mut driver = ShardedSolve::from_operators(part, ops, cfg)?;
    counter!("serve.shard.solves");
    Ok(driver.solve(b)?)
}

/// Fans a request batch across several daemon connections — one block
/// of contiguous requests per client, assigned by the deterministic
/// [`Sweep::shard_blocks`] split — pipelining every block concurrently
/// and reassembling the responses in request order. Point the clients
/// at different daemon *processes* to spread an FV/transient workload
/// across machines; results are position-for-position identical to a
/// single [`SocketClient::call_batch`].
///
/// # Errors
///
/// Returns an error when `clients` is empty or any block's transport
/// fails outright; per-request analysis failures come back in the
/// per-slot `Result`s.
pub fn shard_batch(
    clients: &mut [SocketClient],
    requests: &[AnalysisRequest],
) -> Result<Vec<Result<AnalysisResponse, Error>>, Error> {
    if clients.is_empty() {
        return Err(Error::Invalid {
            reason: "shard_batch needs at least one client".to_string(),
        });
    }
    let _span = aeropack_obs::span!("serve.shard.batch", shards = clients.len());
    counter!("serve.shard.batches");
    counter!("serve.shard.batch_requests", requests.len() as u64);
    let blocks = Sweep::shard_blocks(requests.len(), clients.len());
    let sink = aeropack_obs::propagation_handle();
    let mut block_results: Vec<Result<Vec<Result<AnalysisResponse, Error>>, Error>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter_mut()
                .zip(blocks.iter())
                .map(|(client, block)| {
                    let reqs = requests[block.clone()].to_vec();
                    let sink = sink.clone();
                    s.spawn(move || {
                        let _sink = sink.map(aeropack_obs::attach);
                        client.call_batch(reqs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard batch thread panicked"))
                .collect()
        });
    let mut out = Vec::with_capacity(requests.len());
    for block in block_results.drain(..) {
        out.extend(block?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::request::{MaterialKind, PlateSpec, SeatKind, SebSpec};
    use crate::service::{ServeConfig, Service};
    use crate::transport::serve;
    use aeropack_solver::Precond;

    /// A small SPD grid system: the 7-point Laplacian plus a mass term.
    fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let n = nx * ny * nz;
        CsrMatrix::from_row_fn(n, 1, move |i, row| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / (nx * ny);
            row.push((i, 6.5));
            if x > 0 {
                row.push((i - 1, -1.0));
            }
            if x + 1 < nx {
                row.push((i + 1, -1.0));
            }
            if y > 0 {
                row.push((i - nx, -1.0));
            }
            if y + 1 < ny {
                row.push((i + nx, -1.0));
            }
            if z > 0 {
                row.push((i - nx * ny, -1.0));
            }
            if z + 1 < nz {
                row.push((i + nx * ny, -1.0));
            }
            row.sort_by_key(|&(c, _)| c);
        })
    }

    #[test]
    fn remote_shards_match_single_process_bitwise() {
        let (nx, ny, nz) = (6, 5, 12);
        let a = poisson3d(nx, ny, nz);
        let b: Vec<f64> = (0..a.n()).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
        let cfg = SolverConfig::new()
            .grid_dims((nx, ny, nz))
            .preconditioner(Precond::AdditiveSchwarz(4))
            .tolerance(1e-10)
            .context("remote shard test");
        let reference = ShardedSolve::new(&a, &cfg, 1).unwrap().solve(&b).unwrap();

        // Two worker daemons, each hosting one remote shard; a third
        // shard runs in-process.
        let service = Arc::new(Service::start(ServeConfig::new().workers(1)));
        let mut daemons: Vec<_> = (0..2)
            .map(|_| serve(Arc::clone(&service), "127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<_> = daemons.iter().map(|d| d.addr()).collect();
        let solution = sharded_solve_remote(&a, &b, &cfg, &addrs).unwrap();
        assert_eq!(solution.stats.dd.as_ref().unwrap().shards, 3);
        assert_eq!(solution.stats.dd.as_ref().unwrap().subdomains, 4);
        assert_eq!(solution.x.len(), reference.x.len());
        for (got, want) in solution.x.iter().zip(&reference.x) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // The remote round-trips were timed on the coordinator side.
        assert!(solution.stats.dd.as_ref().unwrap().exchange_seconds > 0.0);
        for d in &mut daemons {
            d.shutdown();
        }
        service.shutdown();
    }

    #[test]
    fn worker_reports_protocol_misuse_without_dying() {
        let service = Arc::new(Service::start(ServeConfig::new().workers(1)));
        let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(daemon.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(SHARD_HELLO.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        // Apply before setup: an Err frame, not a dropped connection.
        wire::write_frame(&mut writer, FrameKind::ApplyA, &wire::encode_f64s(&[1.0])).unwrap();
        let (kind, msg) = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Err);
        assert!(String::from_utf8_lossy(&msg).contains("SETUP"));
        // The connection is still alive: a bad spec is also answered.
        wire::write_frame(&mut writer, FrameKind::Setup, &[1, 2, 3]).unwrap();
        let (kind, _) = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Err);
        daemon.shutdown();
        service.shutdown();
    }

    #[test]
    fn shard_batch_reassembles_in_request_order() {
        let service = Arc::new(Service::start(ServeConfig::new().workers(2)));
        let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let requests: Vec<AnalysisRequest> = (0..7)
            .map(|i| match i % 2 {
                0 => AnalysisRequest::SebOperatingPoint {
                    spec: SebSpec {
                        seat: SeatKind::Aluminum,
                        lhp: true,
                        tilt_deg: 0.0,
                        ambient_c: 25.0,
                    },
                    power_w: 30.0 + f64::from(i),
                },
                _ => AnalysisRequest::FvSteady {
                    spec: PlateSpec {
                        lx_m: 0.16,
                        ly_m: 0.1,
                        thickness_m: 0.0016,
                        nx: 12,
                        ny: 8,
                        material: MaterialKind::Aluminum,
                        power_w: 10.0 + f64::from(i),
                        h_w_m2k: 40.0,
                        ambient_c: 40.0,
                    },
                    scale: 1.0,
                },
            })
            .collect();
        let mut single = SocketClient::connect(daemon.addr()).unwrap();
        let reference = single.call_batch(requests.clone()).unwrap();
        let mut clients: Vec<SocketClient> = (0..3)
            .map(|_| SocketClient::connect(daemon.addr()).unwrap())
            .collect();
        let sharded = shard_batch(&mut clients, &requests).unwrap();
        assert_eq!(sharded.len(), reference.len());
        for (got, want) in sharded.iter().zip(&reference) {
            assert_eq!(got, want);
        }
        assert!(shard_batch(&mut [], &requests).is_err());
        daemon.shutdown();
        service.shutdown();
    }
}
