//! The analysis service: worker pool, admission, caching, batching.
//!
//! A [`Service`] owns a persistent pool of worker threads fed by the
//! bounded [`JobQueue`](crate::queue::JobQueue). Submission is
//! non-blocking: [`Service::submit`] checks the result cache, applies
//! admission control, and hands back a [`Ticket`] the caller resolves
//! at its leisure. Workers drain the queue in priority/FIFO order,
//! coalesce same-model steady solves into one multi-RHS call, reject
//! jobs whose deadline lapsed while queued, and publish results both
//! to the ticket and to the content-addressed cache.
//!
//! Every stage is instrumented through `aeropack-obs`: `serve.*`
//! counters for admissions, completions, cache traffic, coalescing and
//! rejections, plus a `serve.latency_ms` histogram of queue-to-result
//! latency. The registry active when [`Service::start`] is called is
//! captured and attached inside each worker, so test-scoped and
//! env-scoped registries both see worker-side events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use aeropack_obs::{counter, histogram};

use crate::cache::ResultCache;
use crate::error::Error;
use crate::queue::{Job, JobQueue, Priority};
use crate::request::{AnalysisRequest, AnalysisResponse};
use crate::workload::{run_coalesced, run_request, Workload, Workspace};

/// Service configuration (builder style, sensible defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    coalesce_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 128,
            coalesce_limit: 16,
        }
    }
}

impl ServeConfig {
    /// Default configuration: 2 workers, 256-job queue, 128-entry
    /// cache, coalesced batches of up to 16.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (minimum 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the bounded queue capacity (minimum 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Sets the result-cache capacity; 0 disables caching.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Sets the maximum coalesced batch size (minimum 1 = disabled).
    pub fn coalesce_limit(mut self, n: usize) -> Self {
        self.coalesce_limit = n.max(1);
        self
    }
}

/// Per-job service-side timing, delivered with the result.
#[derive(Debug, Clone, Copy)]
pub struct ServiceTiming {
    /// Submission-to-completion latency as measured by the worker.
    pub latency: Duration,
    /// Global completion sequence number (strictly increasing across
    /// the whole service; exposes scheduling order to tests).
    pub completed_seq: u64,
}

/// What a worker sends back through a ticket's channel.
#[derive(Debug)]
pub(crate) struct Reply {
    pub result: Result<AnalysisResponse, Error>,
    pub timing: ServiceTiming,
}

/// Handle to a submitted request's eventual result.
///
/// Cache hits and admission rejections resolve immediately; queued
/// jobs resolve when a worker completes (or rejects) them.
#[derive(Debug)]
pub struct Ticket(TicketState);

#[derive(Debug)]
enum TicketState {
    Ready(Result<AnalysisResponse, Error>),
    Pending(Receiver<Reply>),
}

impl Ticket {
    /// A ticket resolved at submission time (cache hit or admission
    /// error).
    pub(crate) fn ready(result: Result<AnalysisResponse, Error>) -> Self {
        Self(TicketState::Ready(result))
    }

    fn pending(rx: Receiver<Reply>) -> Self {
        Self(TicketState::Pending(rx))
    }

    /// Whether the ticket resolved at submission time (no queue trip).
    pub fn is_ready(&self) -> bool {
        matches!(self.0, TicketState::Ready(_))
    }

    /// Blocks until the result is available.
    pub fn wait(self) -> Result<AnalysisResponse, Error> {
        self.wait_timed().0
    }

    /// Blocks until the result is available, also returning the
    /// service-side timing when the job went through the queue
    /// (`None` for submission-time resolutions).
    pub fn wait_timed(self) -> (Result<AnalysisResponse, Error>, Option<ServiceTiming>) {
        match self.0 {
            TicketState::Ready(result) => (result, None),
            TicketState::Pending(rx) => match rx.recv() {
                Ok(reply) => (reply.result, Some(reply.timing)),
                // The worker pool died without replying — only
                // possible during teardown.
                Err(_) => (Err(Error::ShuttingDown), None),
            },
        }
    }
}

/// Snapshot of the service's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Jobs completed by workers (success or analysis error).
    pub completed: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Cache entries displaced by LRU eviction.
    pub cache_evictions: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected_queue_full: u64,
    /// Jobs rejected because their deadline lapsed while queued.
    pub rejected_deadline: u64,
    /// Multi-RHS batches executed (each covers ≥ 2 jobs).
    pub coalesced_batches: u64,
    /// Jobs served through coalesced batches.
    pub coalesced_jobs: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    coalesced_batches: AtomicU64,
    coalesced_jobs: AtomicU64,
    completion_seq: AtomicU64,
}

struct Inner {
    queue: JobQueue,
    cache: ResultCache,
    counters: Counters,
}

impl Inner {
    fn finish(&self, job: Job, result: Result<AnalysisResponse, Error>) {
        if let Ok(ref response) = result {
            if self.cache.insert(job.cache_key, response.clone()) {
                self.counters
                    .cache_evictions
                    .fetch_add(1, Ordering::Relaxed);
                counter!("serve.cache.evictions");
            }
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        counter!("serve.completed");
        let latency = job.submitted.elapsed();
        histogram!("serve.latency_ms", latency.as_secs_f64() * 1e3);
        let timing = ServiceTiming {
            latency,
            completed_seq: self.counters.completion_seq.fetch_add(1, Ordering::Relaxed),
        };
        // A dropped ticket just means the caller stopped listening.
        let _ = job.reply.send(Reply { result, timing });
    }

    fn reject_expired(&self, job: Job) {
        self.counters
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        counter!("serve.rejected.deadline");
        let timing = ServiceTiming {
            latency: job.submitted.elapsed(),
            completed_seq: self.counters.completion_seq.fetch_add(1, Ordering::Relaxed),
        };
        let _ = job.reply.send(Reply {
            result: Err(Error::DeadlineExpired),
            timing,
        });
    }

    fn worker_loop(&self, workspace: &mut Workspace) {
        while let Some(batch) = self.queue.next_batch() {
            for job in batch.expired {
                self.reject_expired(job);
            }
            if batch.jobs.is_empty() {
                continue;
            }
            if batch.jobs.len() == 1 {
                let job = batch.jobs.into_iter().next().expect("singleton batch");
                // Another worker may have computed this key while the
                // job sat in the queue.
                if let Some(hit) = self.cache.get(job.cache_key) {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    counter!("serve.cache.hits");
                    self.finish(job, Ok(hit));
                    continue;
                }
                let result = run_request(&job.request, workspace);
                self.finish(job, result);
            } else {
                self.counters
                    .coalesced_batches
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .coalesced_jobs
                    .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
                counter!("serve.coalesce.batches");
                counter!("serve.coalesce.jobs", batch.jobs.len() as u64);
                let requests: Vec<AnalysisRequest> =
                    batch.jobs.iter().map(|j| j.request.clone()).collect();
                match run_coalesced(&requests, workspace) {
                    Ok(responses) => {
                        for (job, response) in batch.jobs.into_iter().zip(responses) {
                            self.finish(job, Ok(response));
                        }
                    }
                    Err(e) => {
                        for job in batch.jobs {
                            self.finish(job, Err(e.clone()));
                        }
                    }
                }
            }
        }
    }
}

/// The batched co-design analysis service.
///
/// Start one with [`Service::start`], submit [`AnalysisRequest`]s, and
/// resolve the returned [`Ticket`]s. Dropping the service performs a
/// graceful drain: queued jobs complete, then workers exit.
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Service {
    /// Spawns the worker pool and returns the running service.
    pub fn start(config: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_capacity, config.coalesce_limit),
            cache: ResultCache::new(config.cache_capacity),
            counters: Counters::default(),
        });
        // Capture the submitting context's registry so worker-side
        // events land in the same (possibly scoped) sink.
        let obs_sink = aeropack_obs::propagation_handle();
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let sink = obs_sink.clone();
                thread::Builder::new()
                    .name(format!("aeropack-serve-{i}"))
                    .spawn(move || {
                        let _sink = sink.map(aeropack_obs::attach);
                        let mut workspace = Workspace::new();
                        inner.worker_loop(&mut workspace);
                    })
                    .expect("failed to spawn service worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a request at [`Priority::Normal`] with no deadline.
    pub fn submit(&self, request: AnalysisRequest) -> Ticket {
        self.submit_with(request, Priority::Normal, None)
    }

    /// Submits a request with an explicit priority and optional
    /// deadline (relative to now). Resolution order: result cache,
    /// admission control, queue.
    pub fn submit_with(
        &self,
        request: AnalysisRequest,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Ticket {
        // A zero deadline can only expire: it would be admitted, swept
        // on the next worker wake-up and rejected as `DeadlineExpired`
        // after occupying a queue slot. Refuse it at the door instead,
        // with a code that tells the caller the *request* was wrong,
        // not that the service was slow.
        if deadline == Some(Duration::ZERO) {
            return Ticket::ready(Err(Error::invalid(
                "deadline_ms must be positive (a zero deadline expires on admission)",
            )));
        }
        let cache_key = Workload::fingerprint(&request);
        if let Some(hit) = self.inner.cache.get(cache_key) {
            self.inner
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            counter!("serve.cache.hits");
            return Ticket::ready(Ok(hit));
        }
        self.inner
            .counters
            .cache_misses
            .fetch_add(1, Ordering::Relaxed);
        counter!("serve.cache.misses");
        let (tx, rx): (Sender<Reply>, Receiver<Reply>) = mpsc::channel();
        let job = Job {
            cache_key,
            coalesce_key: request.coalesce_key(),
            request,
            priority,
            deadline: deadline.map(|d| Instant::now() + d),
            submitted: Instant::now(),
            reply: tx,
        };
        match self.inner.queue.push(job) {
            Ok(()) => {
                self.inner
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                counter!("serve.submitted");
                Ticket::pending(rx)
            }
            Err(e) => {
                if matches!(e, Error::QueueFull { .. }) {
                    self.inner
                        .counters
                        .rejected_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    counter!("serve.rejected.queue_full");
                }
                Ticket::ready(Err(e))
            }
        }
    }

    /// A snapshot of the cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_evictions: c.cache_evictions.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: c.rejected_deadline.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            coalesced_jobs: c.coalesced_jobs.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.len() as u64,
            cache_entries: self.inner.cache.len() as u64,
        }
    }

    /// Gracefully drains the service: stops accepting work, lets the
    /// workers finish every queued job, and joins them. Idempotent.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cloneable in-process client over a shared [`Service`].
///
/// This is the interface experiments use: same request/response
/// vocabulary as the socket transport, no serialisation.
#[derive(Clone)]
pub struct Client {
    service: Arc<Service>,
}

impl Client {
    /// Starts a fresh service and wraps it.
    pub fn start(config: ServeConfig) -> Self {
        Self {
            service: Arc::new(Service::start(config)),
        }
    }

    /// Wraps an already-running service.
    pub fn with_service(service: Arc<Service>) -> Self {
        Self { service }
    }

    /// The underlying service (for stats or shutdown).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Submits at normal priority; resolve the ticket when convenient.
    pub fn submit(&self, request: AnalysisRequest) -> Ticket {
        self.service.submit(request)
    }

    /// Submits with explicit priority and optional deadline.
    pub fn submit_with(
        &self,
        request: AnalysisRequest,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Ticket {
        self.service.submit_with(request, priority, deadline)
    }

    /// Synchronous convenience: submit and wait.
    pub fn call(&self, request: AnalysisRequest) -> Result<AnalysisResponse, Error> {
        self.submit(request).wait()
    }
}
