//! Line-delimited JSON wire codec for the analysis service.
//!
//! One request per line, one response per line, matched by `id`:
//!
//! ```text
//! {"id":1,"priority":"normal","deadline_ms":250,"request":
//!     {"type":"fv_steady","spec":{...},"scale":1.0}}
//! {"id":1,"ok":{"type":"field","min_c":40.1,...}}
//! {"id":2,"err":{"code":"queue_full","message":"..."}}
//! ```
//!
//! Tags (`type`, `priority`, error `code`, enum field tags) are the
//! stable strings exposed by the request/error types; numbers are
//! written in Rust's shortest round-trip form and parsed back with
//! full `f64` precision, so an encode/decode cycle is lossless.
//! Decoding reuses the strict JSON parser from `aeropack-obs`
//! ([`aeropack_obs::report::parse`]); any shape violation surfaces as
//! [`Error::Wire`] rather than a panic.

use std::io::{Read, Write};
use std::time::Duration;

use aeropack_obs::report::{parse, JsonValue};
use aeropack_solver::{Slab, SlabSpec};

use crate::error::Error;
use crate::queue::Priority;
use crate::request::{
    AnalysisRequest, AnalysisResponse, BoardSpec, CoolingModeSpec, FemPlateSpec, MaterialKind,
    MissionSpec, OptimizeSpec, PlateSpec, SchemeKind, SeatKind, SebSpec, TransientSpec,
};

/// A request envelope as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Caller-chosen correlation id, echoed on the response line.
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Relative deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// The analysis to run.
    pub request: AnalysisRequest,
}

impl WireRequest {
    /// The deadline as a `Duration`, when set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }
}

/// A response envelope as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The correlation id of the request this answers.
    pub id: u64,
    /// The outcome.
    pub result: Result<AnalysisResponse, Error>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    // Shortest round-trip form; the decoder's `str::parse::<f64>`
    // recovers the exact bits for every finite value.
    format!("{v}")
}

fn nums(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|v| num(*v)).collect();
    format!("[{}]", items.join(","))
}

fn seb_spec_json(s: &SebSpec) -> String {
    format!(
        "{{\"seat\":\"{}\",\"lhp\":{},\"tilt_deg\":{},\"ambient_c\":{}}}",
        s.seat.tag(),
        s.lhp,
        num(s.tilt_deg),
        num(s.ambient_c)
    )
}

fn plate_spec_json(s: &PlateSpec) -> String {
    format!(
        "{{\"lx_m\":{},\"ly_m\":{},\"thickness_m\":{},\"nx\":{},\"ny\":{},\
         \"material\":\"{}\",\"power_w\":{},\"h_w_m2k\":{},\"ambient_c\":{}}}",
        num(s.lx_m),
        num(s.ly_m),
        num(s.thickness_m),
        s.nx,
        s.ny,
        s.material.tag(),
        num(s.power_w),
        num(s.h_w_m2k),
        num(s.ambient_c)
    )
}

fn board_spec_json(s: &BoardSpec) -> String {
    let mode_fields = match s.mode {
        CoolingModeSpec::FreeConvection => String::new(),
        CoolingModeSpec::ForcedAir { flow_multiplier }
        | CoolingModeSpec::AirFlowThrough { flow_multiplier } => {
            format!(",\"flow_multiplier\":{}", num(flow_multiplier))
        }
        CoolingModeSpec::ConductionCooled { rail_c } => {
            format!(",\"rail_c\":{}", num(rail_c))
        }
        CoolingModeSpec::LiquidFlowThrough { coolant_inlet_c } => {
            format!(",\"coolant_inlet_c\":{}", num(coolant_inlet_c))
        }
    };
    format!(
        "{{\"power_w\":{},\"mode\":\"{}\"{},\"ambient_c\":{},\"resolution_mm\":{}}}",
        num(s.power_w),
        s.mode.tag(),
        mode_fields,
        num(s.ambient_c),
        num(s.resolution_mm)
    )
}

fn fem_spec_json(s: &FemPlateSpec) -> String {
    format!(
        "{{\"lx_m\":{},\"ly_m\":{},\"nx\":{},\"ny\":{},\"thickness_mm\":{},\
         \"smeared_mass_kg_m2\":{},\"material\":\"{}\"}}",
        num(s.lx_m),
        num(s.ly_m),
        s.nx,
        s.ny,
        num(s.thickness_mm),
        num(s.smeared_mass_kg_m2),
        s.material.tag()
    )
}

fn mission_spec_json(m: &MissionSpec) -> String {
    match *m {
        MissionSpec::ClimbCruiseDescent {
            cruise_altitude_m,
            climb_s,
            cruise_s,
            descent_s,
        } => format!(
            "{{\"kind\":\"{}\",\"cruise_altitude_m\":{},\"climb_s\":{},\"cruise_s\":{},\
             \"descent_s\":{}}}",
            m.tag(),
            num(cruise_altitude_m),
            num(climb_s),
            num(cruise_s),
            num(descent_s)
        ),
        MissionSpec::OrbitCycle {
            cycles,
            emissivity,
            absorptivity,
        } => format!(
            "{{\"kind\":\"{}\",\"cycles\":{cycles},\"emissivity\":{},\"absorptivity\":{}}}",
            m.tag(),
            num(emissivity),
            num(absorptivity)
        ),
    }
}

fn transient_spec_json(s: &TransientSpec) -> String {
    let dt = match s.fixed_dt_s {
        Some(dt) => num(dt),
        None => "null".to_string(),
    };
    format!(
        "{{\"plate\":{},\"mission\":{},\"scheme\":\"{}\",\"fixed_dt_s\":{dt},\
         \"initial_c\":{}}}",
        plate_spec_json(&s.plate),
        mission_spec_json(&s.mission),
        s.scheme.tag(),
        num(s.initial_c)
    )
}

fn optimize_spec_json(s: &OptimizeSpec) -> String {
    // The seed is a full u64; JSON numbers lose integers past 2⁵³, so
    // it travels as hex (the `trajectory_hash` convention).
    format!(
        "{{\"seed\":\"{:016x}\",\"population\":{},\"generations\":{},\"tilt_deg\":{},\
         \"ambient_c\":{},\"base_power_w\":{}}}",
        s.seed,
        s.population,
        s.generations,
        num(s.tilt_deg),
        num(s.ambient_c),
        num(s.base_power_w)
    )
}

/// Encodes the body of a request (the `"request"` object).
pub fn encode_request(request: &AnalysisRequest) -> String {
    let tag = request.tag();
    match request {
        AnalysisRequest::SebCapability { spec, dt_limit_k } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"dt_limit_k\":{}}}",
            seb_spec_json(spec),
            num(*dt_limit_k)
        ),
        AnalysisRequest::SebOperatingPoint { spec, power_w } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"power_w\":{}}}",
            seb_spec_json(spec),
            num(*power_w)
        ),
        AnalysisRequest::SebPowerSweep { spec, powers_w } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"powers_w\":{}}}",
            seb_spec_json(spec),
            nums(powers_w)
        ),
        AnalysisRequest::FvSteady { spec, scale } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"scale\":{}}}",
            plate_spec_json(spec),
            num(*scale)
        ),
        AnalysisRequest::BoardSteady { spec, scale } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"scale\":{}}}",
            board_spec_json(spec),
            num(*scale)
        ),
        AnalysisRequest::FemStatic { spec, load_n } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"load_n\":{}}}",
            fem_spec_json(spec),
            num(*load_n)
        ),
        AnalysisRequest::Transient { spec } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{}}}",
            transient_spec_json(spec)
        ),
        AnalysisRequest::Optimize { spec } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{}}}",
            optimize_spec_json(spec)
        ),
        AnalysisRequest::FemModal { spec, n_modes } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"n_modes\":{n_modes}}}",
            fem_spec_json(spec)
        ),
        AnalysisRequest::FemHarmonic {
            spec,
            damping,
            f_min_hz,
            f_max_hz,
            points,
        } => format!(
            "{{\"type\":\"{tag}\",\"spec\":{},\"damping\":{},\"f_min_hz\":{},\
             \"f_max_hz\":{},\"points\":{points}}}",
            fem_spec_json(spec),
            num(*damping),
            num(*f_min_hz),
            num(*f_max_hz)
        ),
    }
}

/// Encodes the body of a response (the `"ok"` object).
pub fn encode_response(response: &AnalysisResponse) -> String {
    let tag = response.tag();
    match response {
        AnalysisResponse::Capability { watts } => {
            format!("{{\"type\":\"{tag}\",\"watts\":{}}}", num(*watts))
        }
        AnalysisResponse::OperatingPoint {
            power_w,
            pcb_c,
            wall_c,
            lhp_w,
            dt_pcb_air_k,
        } => format!(
            "{{\"type\":\"{tag}\",\"power_w\":{},\"pcb_c\":{},\"wall_c\":{},\
             \"lhp_w\":{},\"dt_pcb_air_k\":{}}}",
            num(*power_w),
            num(*pcb_c),
            num(*wall_c),
            num(*lhp_w),
            num(*dt_pcb_air_k)
        ),
        AnalysisResponse::PowerSweep { dt_pcb_air_k } => {
            let items: Vec<String> = dt_pcb_air_k
                .iter()
                .map(|p| match p {
                    Some(v) => num(*v),
                    None => "null".to_string(),
                })
                .collect();
            format!(
                "{{\"type\":\"{tag}\",\"dt_pcb_air_k\":[{}]}}",
                items.join(",")
            )
        }
        AnalysisResponse::Field {
            min_c,
            max_c,
            mean_c,
            cells,
        } => format!(
            "{{\"type\":\"{tag}\",\"min_c\":{},\"max_c\":{},\"mean_c\":{},\"cells\":{cells}}}",
            num(*min_c),
            num(*max_c),
            num(*mean_c)
        ),
        AnalysisResponse::Transient {
            final_min_c,
            final_max_c,
            final_mean_c,
            steps,
            rejected,
            factor_reuses,
            trajectory_hash,
        } => format!(
            "{{\"type\":\"{tag}\",\"final_min_c\":{},\"final_max_c\":{},\
             \"final_mean_c\":{},\"steps\":{steps},\"rejected\":{rejected},\
             \"factor_reuses\":{factor_reuses},\"trajectory_hash\":\"{trajectory_hash:016x}\"}}",
            num(*final_min_c),
            num(*final_max_c),
            num(*final_mean_c)
        ),
        AnalysisResponse::Static { max_deflection_m } => format!(
            "{{\"type\":\"{tag}\",\"max_deflection_m\":{}}}",
            num(*max_deflection_m)
        ),
        AnalysisResponse::Modal { frequencies_hz } => format!(
            "{{\"type\":\"{tag}\",\"frequencies_hz\":{}}}",
            nums(frequencies_hz)
        ),
        AnalysisResponse::Pareto {
            topologies,
            dt_k,
            mass_kg,
            mtbf_h,
            front_hash,
            evaluations,
        } => {
            let tags: Vec<String> = topologies
                .iter()
                .map(|t| format!("\"{}\"", esc(t)))
                .collect();
            format!(
                "{{\"type\":\"{tag}\",\"topologies\":[{}],\"dt_k\":{},\"mass_kg\":{},\
                 \"mtbf_h\":{},\"front_hash\":\"{front_hash:016x}\",\"evaluations\":{evaluations}}}",
                tags.join(","),
                nums(dt_k),
                nums(mass_kg),
                nums(mtbf_h)
            )
        }
        AnalysisResponse::Harmonic {
            peak_hz,
            peak_transmissibility,
            points,
        } => format!(
            "{{\"type\":\"{tag}\",\"peak_hz\":{},\"peak_transmissibility\":{},\
             \"points\":{points}}}",
            num(*peak_hz),
            num(*peak_transmissibility)
        ),
    }
}

/// Encodes a full request line (without the trailing newline).
pub fn encode_request_line(req: &WireRequest) -> String {
    let deadline = match req.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{},\"priority\":\"{}\"{},\"request\":{}}}",
        req.id,
        req.priority.tag(),
        deadline,
        encode_request(&req.request)
    )
}

/// Encodes a full response line (without the trailing newline).
pub fn encode_response_line(resp: &WireResponse) -> String {
    match &resp.result {
        Ok(response) => format!(
            "{{\"id\":{},\"ok\":{}}}",
            resp.id,
            encode_response(response)
        ),
        Err(e) => format!(
            "{{\"id\":{},\"err\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
            resp.id,
            esc(e.code()),
            esc(&e.to_string())
        ),
    }
}

fn wire_err(what: impl Into<String>) -> Error {
    Error::Wire {
        reason: what.into(),
    }
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, Error> {
    v.get(key)
        .ok_or_else(|| wire_err(format!("missing field `{key}`")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, Error> {
    field(v, key)?
        .as_number()
        .ok_or_else(|| wire_err(format!("field `{key}` is not a number")))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, Error> {
    let n = f64_field(v, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(wire_err(format!(
            "field `{key}` is not a non-negative integer"
        )));
    }
    Ok(n as usize)
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, Error> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| wire_err(format!("field `{key}` is not a string")))
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, Error> {
    match field(v, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(wire_err(format!("field `{key}` is not a boolean"))),
    }
}

fn array_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], Error> {
    match field(v, key)? {
        JsonValue::Array(items) => Ok(items),
        _ => Err(wire_err(format!("field `{key}` is not an array"))),
    }
}

fn f64s_field(v: &JsonValue, key: &str) -> Result<Vec<f64>, Error> {
    array_field(v, key)?
        .iter()
        .map(|item| {
            item.as_number()
                .ok_or_else(|| wire_err(format!("field `{key}` has a non-number element")))
        })
        .collect()
}

fn decode_seb_spec(v: &JsonValue) -> Result<SebSpec, Error> {
    Ok(SebSpec {
        seat: SeatKind::from_tag(str_field(v, "seat")?)
            .ok_or_else(|| wire_err("unknown seat tag"))?,
        lhp: bool_field(v, "lhp")?,
        tilt_deg: f64_field(v, "tilt_deg")?,
        ambient_c: f64_field(v, "ambient_c")?,
    })
}

fn decode_plate_spec(v: &JsonValue) -> Result<PlateSpec, Error> {
    Ok(PlateSpec {
        lx_m: f64_field(v, "lx_m")?,
        ly_m: f64_field(v, "ly_m")?,
        thickness_m: f64_field(v, "thickness_m")?,
        nx: usize_field(v, "nx")?,
        ny: usize_field(v, "ny")?,
        material: MaterialKind::from_tag(str_field(v, "material")?)
            .ok_or_else(|| wire_err("unknown material tag"))?,
        power_w: f64_field(v, "power_w")?,
        h_w_m2k: f64_field(v, "h_w_m2k")?,
        ambient_c: f64_field(v, "ambient_c")?,
    })
}

fn decode_board_spec(v: &JsonValue) -> Result<BoardSpec, Error> {
    let mode = match str_field(v, "mode")? {
        "free_convection" => CoolingModeSpec::FreeConvection,
        "forced_air" => CoolingModeSpec::ForcedAir {
            flow_multiplier: f64_field(v, "flow_multiplier")?,
        },
        "conduction_cooled" => CoolingModeSpec::ConductionCooled {
            rail_c: f64_field(v, "rail_c")?,
        },
        "air_flow_through" => CoolingModeSpec::AirFlowThrough {
            flow_multiplier: f64_field(v, "flow_multiplier")?,
        },
        "liquid_flow_through" => CoolingModeSpec::LiquidFlowThrough {
            coolant_inlet_c: f64_field(v, "coolant_inlet_c")?,
        },
        other => return Err(wire_err(format!("unknown cooling mode `{other}`"))),
    };
    Ok(BoardSpec {
        power_w: f64_field(v, "power_w")?,
        mode,
        ambient_c: f64_field(v, "ambient_c")?,
        resolution_mm: f64_field(v, "resolution_mm")?,
    })
}

fn decode_fem_spec(v: &JsonValue) -> Result<FemPlateSpec, Error> {
    Ok(FemPlateSpec {
        lx_m: f64_field(v, "lx_m")?,
        ly_m: f64_field(v, "ly_m")?,
        nx: usize_field(v, "nx")?,
        ny: usize_field(v, "ny")?,
        thickness_mm: f64_field(v, "thickness_mm")?,
        smeared_mass_kg_m2: f64_field(v, "smeared_mass_kg_m2")?,
        material: MaterialKind::from_tag(str_field(v, "material")?)
            .ok_or_else(|| wire_err("unknown material tag"))?,
    })
}

fn decode_mission_spec(v: &JsonValue) -> Result<MissionSpec, Error> {
    match str_field(v, "kind")? {
        "climb_cruise_descent" => Ok(MissionSpec::ClimbCruiseDescent {
            cruise_altitude_m: f64_field(v, "cruise_altitude_m")?,
            climb_s: f64_field(v, "climb_s")?,
            cruise_s: f64_field(v, "cruise_s")?,
            descent_s: f64_field(v, "descent_s")?,
        }),
        "orbit_cycle" => Ok(MissionSpec::OrbitCycle {
            cycles: usize_field(v, "cycles")?,
            emissivity: f64_field(v, "emissivity")?,
            absorptivity: f64_field(v, "absorptivity")?,
        }),
        other => Err(wire_err(format!("unknown mission kind `{other}`"))),
    }
}

fn decode_transient_spec(v: &JsonValue) -> Result<TransientSpec, Error> {
    let fixed_dt_s = match v.get("fixed_dt_s") {
        None | Some(JsonValue::Null) => None,
        Some(_) => Some(f64_field(v, "fixed_dt_s")?),
    };
    Ok(TransientSpec {
        plate: decode_plate_spec(field(v, "plate")?)?,
        mission: decode_mission_spec(field(v, "mission")?)?,
        scheme: SchemeKind::from_tag(str_field(v, "scheme")?)
            .ok_or_else(|| wire_err("unknown scheme tag"))?,
        fixed_dt_s,
        initial_c: f64_field(v, "initial_c")?,
    })
}

fn u64_hex_field(v: &JsonValue, key: &str) -> Result<u64, Error> {
    let hex = str_field(v, key)?;
    u64::from_str_radix(hex, 16).map_err(|_| wire_err(format!("bad {key} hex")))
}

fn decode_optimize_spec(v: &JsonValue) -> Result<OptimizeSpec, Error> {
    Ok(OptimizeSpec {
        seed: u64_hex_field(v, "seed")?,
        population: usize_field(v, "population")?,
        generations: usize_field(v, "generations")?,
        tilt_deg: f64_field(v, "tilt_deg")?,
        ambient_c: f64_field(v, "ambient_c")?,
        base_power_w: f64_field(v, "base_power_w")?,
    })
}

/// Decodes a request body (the `"request"` object).
pub fn decode_request(v: &JsonValue) -> Result<AnalysisRequest, Error> {
    let spec = field(v, "spec")?;
    match str_field(v, "type")? {
        "seb_capability" => Ok(AnalysisRequest::SebCapability {
            spec: decode_seb_spec(spec)?,
            dt_limit_k: f64_field(v, "dt_limit_k")?,
        }),
        "seb_operating_point" => Ok(AnalysisRequest::SebOperatingPoint {
            spec: decode_seb_spec(spec)?,
            power_w: f64_field(v, "power_w")?,
        }),
        "seb_power_sweep" => Ok(AnalysisRequest::SebPowerSweep {
            spec: decode_seb_spec(spec)?,
            powers_w: f64s_field(v, "powers_w")?,
        }),
        "fv_steady" => Ok(AnalysisRequest::FvSteady {
            spec: decode_plate_spec(spec)?,
            scale: f64_field(v, "scale")?,
        }),
        "board_steady" => Ok(AnalysisRequest::BoardSteady {
            spec: decode_board_spec(spec)?,
            scale: f64_field(v, "scale")?,
        }),
        "transient" => Ok(AnalysisRequest::Transient {
            spec: decode_transient_spec(spec)?,
        }),
        "optimize" => Ok(AnalysisRequest::Optimize {
            spec: decode_optimize_spec(spec)?,
        }),
        "fem_static" => Ok(AnalysisRequest::FemStatic {
            spec: decode_fem_spec(spec)?,
            load_n: f64_field(v, "load_n")?,
        }),
        "fem_modal" => Ok(AnalysisRequest::FemModal {
            spec: decode_fem_spec(spec)?,
            n_modes: usize_field(v, "n_modes")?,
        }),
        "fem_harmonic" => Ok(AnalysisRequest::FemHarmonic {
            spec: decode_fem_spec(spec)?,
            damping: f64_field(v, "damping")?,
            f_min_hz: f64_field(v, "f_min_hz")?,
            f_max_hz: f64_field(v, "f_max_hz")?,
            points: usize_field(v, "points")?,
        }),
        other => Err(wire_err(format!("unknown request type `{other}`"))),
    }
}

/// Decodes a response body (the `"ok"` object).
pub fn decode_response(v: &JsonValue) -> Result<AnalysisResponse, Error> {
    match str_field(v, "type")? {
        "capability" => Ok(AnalysisResponse::Capability {
            watts: f64_field(v, "watts")?,
        }),
        "operating_point" => Ok(AnalysisResponse::OperatingPoint {
            power_w: f64_field(v, "power_w")?,
            pcb_c: f64_field(v, "pcb_c")?,
            wall_c: f64_field(v, "wall_c")?,
            lhp_w: f64_field(v, "lhp_w")?,
            dt_pcb_air_k: f64_field(v, "dt_pcb_air_k")?,
        }),
        "power_sweep" => {
            let points = array_field(v, "dt_pcb_air_k")?
                .iter()
                .map(|item| match item {
                    JsonValue::Null => Ok(None),
                    JsonValue::Number(n) => Ok(Some(*n)),
                    _ => Err(wire_err("power sweep element is neither number nor null")),
                })
                .collect::<Result<Vec<Option<f64>>, Error>>()?;
            Ok(AnalysisResponse::PowerSweep {
                dt_pcb_air_k: points,
            })
        }
        "field" => Ok(AnalysisResponse::Field {
            min_c: f64_field(v, "min_c")?,
            max_c: f64_field(v, "max_c")?,
            mean_c: f64_field(v, "mean_c")?,
            cells: usize_field(v, "cells")?,
        }),
        "transient" => {
            let hash_hex = str_field(v, "trajectory_hash")?;
            let trajectory_hash = u64::from_str_radix(hash_hex, 16)
                .map_err(|_| wire_err("bad trajectory_hash hex"))?;
            Ok(AnalysisResponse::Transient {
                final_min_c: f64_field(v, "final_min_c")?,
                final_max_c: f64_field(v, "final_max_c")?,
                final_mean_c: f64_field(v, "final_mean_c")?,
                steps: usize_field(v, "steps")?,
                rejected: usize_field(v, "rejected")?,
                factor_reuses: usize_field(v, "factor_reuses")?,
                trajectory_hash,
            })
        }
        "static" => Ok(AnalysisResponse::Static {
            max_deflection_m: f64_field(v, "max_deflection_m")?,
        }),
        "modal" => Ok(AnalysisResponse::Modal {
            frequencies_hz: f64s_field(v, "frequencies_hz")?,
        }),
        "pareto" => {
            let topologies = array_field(v, "topologies")?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| wire_err("field `topologies` has a non-string element"))
                })
                .collect::<Result<Vec<String>, Error>>()?;
            Ok(AnalysisResponse::Pareto {
                topologies,
                dt_k: f64s_field(v, "dt_k")?,
                mass_kg: f64s_field(v, "mass_kg")?,
                mtbf_h: f64s_field(v, "mtbf_h")?,
                front_hash: u64_hex_field(v, "front_hash")?,
                evaluations: usize_field(v, "evaluations")? as u64,
            })
        }
        "harmonic" => Ok(AnalysisResponse::Harmonic {
            peak_hz: f64_field(v, "peak_hz")?,
            peak_transmissibility: f64_field(v, "peak_transmissibility")?,
            points: usize_field(v, "points")?,
        }),
        other => Err(wire_err(format!("unknown response type `{other}`"))),
    }
}

/// Decodes a full request line.
pub fn decode_request_line(line: &str) -> Result<WireRequest, Error> {
    let v = parse(line).map_err(|e| wire_err(e.to_string()))?;
    let id = usize_field(&v, "id")? as u64;
    let priority = match v.get("priority") {
        None => Priority::Normal,
        Some(p) => {
            let tag = p
                .as_str()
                .ok_or_else(|| wire_err("field `priority` is not a string"))?;
            Priority::from_tag(tag).ok_or_else(|| wire_err(format!("unknown priority `{tag}`")))?
        }
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(JsonValue::Null) => None,
        Some(_) => Some(usize_field(&v, "deadline_ms")? as u64),
    };
    Ok(WireRequest {
        id,
        priority,
        deadline_ms,
        request: decode_request(field(&v, "request")?)?,
    })
}

// ---------------------------------------------------------------------
// Binary frame codec for the shard-worker protocol.
//
// The line-JSON codec above carries *analyses*; sharded solves carry
// *vectors* — a 64³ halo slice is half a megabyte per iteration, and
// the solve's bit-identity guarantee forbids a lossy text round-trip.
// Frames are `[u32 LE payload length][1-byte kind][payload]`; every
// number travels as its exact little-endian bit pattern.
// ---------------------------------------------------------------------

/// Largest frame payload accepted (guards a corrupt length prefix from
/// allocating unbounded memory).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 28;

/// Frame discriminants of the shard-worker protocol. The coordinator
/// drives `Setup → (ApplyA | ApplyM)* → Done`; the worker answers
/// `Ready`, `Ap`, `Z`, or `Err`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Coordinator → worker: a [`SlabSpec`] payload; factor and hold.
    Setup = 1,
    /// Worker → coordinator: setup accepted, factors ready.
    Ready = 2,
    /// Coordinator → worker: extended-range `x`; apply the slab matrix.
    ApplyA = 3,
    /// Worker → coordinator: owned-range `A·x` answering [`ApplyA`](Self::ApplyA).
    Ap = 4,
    /// Coordinator → worker: extended-range residual; apply the tiles.
    ApplyM = 5,
    /// Worker → coordinator: owned-range `M⁻¹·r` answering [`ApplyM`](Self::ApplyM).
    Z = 6,
    /// Coordinator → worker: solve finished, release the shard.
    Done = 7,
    /// Worker → coordinator: a UTF-8 error message.
    Err = 8,
}

impl FrameKind {
    /// Decodes a frame discriminant byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Setup),
            2 => Some(Self::Ready),
            3 => Some(Self::ApplyA),
            4 => Some(Self::Ap),
            5 => Some(Self::ApplyM),
            6 => Some(Self::Z),
            7 => Some(Self::Done),
            8 => Some(Self::Err),
            _ => None,
        }
    }
}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Propagates I/O errors; rejects a payload above [`MAX_FRAME_PAYLOAD`].
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), Error> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(wire_err(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
            payload.len()
        )));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind as u8])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads bytes until `buf` is full or the stream ends; returns how many
/// bytes actually arrived.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, Error> {
    let mut got = 0;
    while got < buf.len() {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream *between*
/// frames (the peer closed after a complete exchange); a stream that
/// ends mid-frame is an error.
///
/// # Errors
///
/// Propagates I/O errors; rejects truncated frames, unknown kinds, and
/// lengths above [`MAX_FRAME_PAYLOAD`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameKind, Vec<u8>)>, Error> {
    let mut head = [0u8; 5];
    match read_full(r, &mut head)? {
        0 => return Ok(None),
        5 => {}
        _ => return Err(wire_err("stream ended inside a frame header")),
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(wire_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    let kind = FrameKind::from_byte(head[4])
        .ok_or_else(|| wire_err(format!("unknown frame kind byte {}", head[4])))?;
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload)? != len {
        return Err(wire_err("stream ended inside a frame payload"));
    }
    Ok(Some((kind, payload)))
}

/// Encodes a vector as raw little-endian `f64` bit patterns (lossless
/// for every value, including non-finite ones).
pub fn encode_f64s(vs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 8);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a raw `f64` vector payload.
///
/// # Errors
///
/// Rejects a payload that is not a whole number of 8-byte values.
pub fn decode_f64s(payload: &[u8]) -> Result<Vec<f64>, Error> {
    if !payload.len().is_multiple_of(8) {
        return Err(wire_err(format!(
            "f64 vector payload of {} bytes is not a multiple of 8",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

fn put_u64(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn put_slab(out: &mut Vec<u8>, s: &Slab) {
    put_u64(out, s.own_start);
    put_u64(out, s.own_end);
    put_u64(out, s.ext_start);
    put_u64(out, s.ext_end);
}

/// A bounds-checked reader over a frame payload.
struct Take<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Take<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| wire_err("slab spec payload is truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<usize, Error> {
        let b = self.bytes(8)?;
        let v = u64::from_le_bytes(b.try_into().expect("8 bytes"));
        usize::try_from(v).map_err(|_| wire_err("slab spec value overflows usize"))
    }

    fn slab(&mut self) -> Result<Slab, Error> {
        Ok(Slab {
            own_start: self.u64()?,
            own_end: self.u64()?,
            ext_start: self.u64()?,
            ext_end: self.u64()?,
        })
    }

    fn u64s(&mut self) -> Result<Vec<usize>, Error> {
        let len = self.u64()?;
        if len > MAX_FRAME_PAYLOAD / 8 {
            return Err(wire_err("slab spec vector length is implausible"));
        }
        (0..len).map(|_| self.u64()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>, Error> {
        let len = self.u64()?;
        if len > MAX_FRAME_PAYLOAD / 8 {
            return Err(wire_err("slab spec vector length is implausible"));
        }
        let b = self.bytes(len * 8)?;
        decode_f64s(b)
    }

    fn finish(self) -> Result<(), Error> {
        if self.pos != self.buf.len() {
            return Err(wire_err("slab spec payload has trailing bytes"));
        }
        Ok(())
    }
}

/// Encodes a [`SlabSpec`] as a `Setup` frame payload: every integer as
/// `u64` LE, every matrix value as its exact `f64` bit pattern.
pub fn encode_slab_spec(spec: &SlabSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 * (4 + 4 * spec.tiles.len() + spec.row_ptr.len() + spec.col_idx.len() + spec.vals.len())
            + 40,
    );
    put_u64(&mut out, spec.plane);
    put_u64(&mut out, spec.nplanes);
    put_slab(&mut out, &spec.slab);
    put_u64(&mut out, spec.tiles.len());
    for t in &spec.tiles {
        put_slab(&mut out, t);
    }
    put_u64(&mut out, spec.row_ptr.len());
    for &v in &spec.row_ptr {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, spec.col_idx.len());
    for &v in &spec.col_idx {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, spec.vals.len());
    out.extend_from_slice(&encode_f64s(&spec.vals));
    out
}

/// Decodes a `Setup` frame payload back into a [`SlabSpec`].
///
/// # Errors
///
/// Rejects truncated, oversized, or trailing-byte payloads. Structural
/// validity of the spec itself (shapes, tile ranges) is checked by
/// `SlabWorker::new`, not here.
pub fn decode_slab_spec(payload: &[u8]) -> Result<SlabSpec, Error> {
    let mut t = Take::new(payload);
    let plane = t.u64()?;
    let nplanes = t.u64()?;
    let slab = t.slab()?;
    let tile_count = t.u64()?;
    if tile_count > MAX_FRAME_PAYLOAD / 32 {
        return Err(wire_err("slab spec tile count is implausible"));
    }
    let tiles = (0..tile_count)
        .map(|_| t.slab())
        .collect::<Result<Vec<Slab>, Error>>()?;
    let row_ptr = t.u64s()?;
    let col_idx = t.u64s()?;
    let vals = t.f64s()?;
    t.finish()?;
    Ok(SlabSpec {
        plane,
        nplanes,
        slab,
        tiles,
        row_ptr,
        col_idx,
        vals,
    })
}

/// Decodes a full response line.
pub fn decode_response_line(line: &str) -> Result<WireResponse, Error> {
    let v = parse(line).map_err(|e| wire_err(e.to_string()))?;
    let id = usize_field(&v, "id")? as u64;
    let result = if let Some(ok) = v.get("ok") {
        Ok(decode_response(ok)?)
    } else if let Some(err) = v.get("err") {
        Err(Error::from_wire(
            str_field(err, "code")?,
            str_field(err, "message")?,
        ))
    } else {
        return Err(wire_err("response line has neither `ok` nor `err`"));
    };
    Ok(WireResponse { id, result })
}
