//! End-to-end service behaviour: scheduling, deadlines, coalescing
//! bit-identity, caching and graceful drain.

use std::time::Duration;

use aeropack_serve::{
    AnalysisRequest, AnalysisResponse, Error, FvAnalysis, MaterialKind, PlateSpec, Priority,
    SeatKind, SebSpec, ServeConfig, Service, Ticket, Workload, Workspace,
};

fn seb_spec() -> SebSpec {
    SebSpec {
        seat: SeatKind::Aluminum,
        lhp: true,
        tilt_deg: 0.0,
        ambient_c: 25.0,
    }
}

fn seb_point(power_w: f64) -> AnalysisRequest {
    AnalysisRequest::SebOperatingPoint {
        spec: seb_spec(),
        power_w,
    }
}

fn plate_spec(nx: usize, ny: usize) -> PlateSpec {
    PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx,
        ny,
        material: MaterialKind::Aluminum,
        power_w: 20.0,
        h_w_m2k: 40.0,
        ambient_c: 40.0,
    }
}

fn fv_steady(scale: f64) -> AnalysisRequest {
    AnalysisRequest::FvSteady {
        spec: plate_spec(24, 24),
        scale,
    }
}

/// A request that keeps the single worker busy long enough for the
/// test to stack more work behind it.
fn occupancy() -> AnalysisRequest {
    AnalysisRequest::FvSteady {
        spec: plate_spec(48, 48),
        scale: 1.0,
    }
}

#[test]
fn already_expired_deadline_is_rejected_not_run() {
    let service = Service::start(ServeConfig::new().workers(1));
    // Keep the worker busy so the doomed job is rejected while queued.
    let busy = service.submit(occupancy());
    let doomed = service.submit_with(
        seb_point(40.0),
        Priority::Normal,
        Some(Duration::from_nanos(1)),
    );
    assert_eq!(doomed.wait(), Err(Error::DeadlineExpired));
    assert!(busy.wait().is_ok());
    let stats = service.stats();
    assert_eq!(stats.rejected_deadline, 1);
}

#[test]
fn zero_deadline_is_rejected_at_submission() {
    let service = Service::start(ServeConfig::new().workers(1));
    let ticket = service.submit_with(seb_point(40.0), Priority::Normal, Some(Duration::ZERO));
    // Rejected at the door as an invalid request — it never occupies a
    // queue slot and never counts as a deadline expiry.
    match ticket.wait() {
        Err(Error::Invalid { reason }) => assert!(reason.contains("deadline_ms")),
        other => panic!("expected Invalid, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.rejected_deadline, 0);
}

#[test]
fn generous_deadline_completes_normally() {
    let service = Service::start(ServeConfig::new().workers(1));
    let ticket = service.submit_with(
        seb_point(40.0),
        Priority::High,
        Some(Duration::from_secs(60)),
    );
    assert!(ticket.wait().is_ok());
    assert_eq!(service.stats().rejected_deadline, 0);
}

#[test]
fn high_priority_overtakes_queued_low_priority() {
    let service = Service::start(ServeConfig::new().workers(1));
    let busy = service.submit(occupancy());
    // Queued behind the busy worker: low first, high second. The high
    // job must still complete first.
    let low = service.submit_with(seb_point(30.0), Priority::Low, None);
    let high = service.submit_with(seb_point(35.0), Priority::High, None);
    let (low_result, low_timing) = low.wait_timed();
    let (high_result, high_timing) = high.wait_timed();
    assert!(low_result.is_ok());
    assert!(high_result.is_ok());
    assert!(busy.wait().is_ok());
    let (low_seq, high_seq) = (
        low_timing.expect("queued job has timing").completed_seq,
        high_timing.expect("queued job has timing").completed_seq,
    );
    assert!(
        high_seq < low_seq,
        "high-priority job completed at seq {high_seq}, after low-priority at {low_seq}"
    );
}

#[test]
fn coalesced_batch_is_bit_identical_to_serial_solves() {
    let scales = [0.5, 0.75, 1.0, 1.25, 1.5];
    // Serial reference: each scale solved on its own.
    let mut ws = Workspace::new();
    let serial: Vec<AnalysisResponse> = scales
        .iter()
        .map(|&scale| {
            FvAnalysis {
                spec: plate_spec(24, 24),
                scale,
            }
            .run(&mut ws)
            .expect("serial solve")
        })
        .collect();

    let service = Service::start(ServeConfig::new().workers(1));
    let busy = service.submit(occupancy());
    let tickets: Vec<Ticket> = scales
        .iter()
        .map(|&s| service.submit(fv_steady(s)))
        .collect();
    assert!(busy.wait().is_ok());
    let batched: Vec<AnalysisResponse> = tickets
        .into_iter()
        .map(|t| t.wait().expect("batched solve"))
        .collect();

    // Field summaries are pure functions of the solution vector, so
    // exact equality here means the solves were bit-identical.
    assert_eq!(batched, serial);
    let stats = service.stats();
    assert!(
        stats.coalesced_batches >= 1,
        "expected at least one coalesced batch, stats: {stats:?}"
    );
    assert!(stats.coalesced_jobs >= 2);
}

#[test]
fn repeat_request_is_answered_from_the_cache() {
    let service = Service::start(ServeConfig::new().workers(2));
    let first = service.submit(seb_point(42.0));
    let first_result = first.wait().expect("first solve");
    let repeat = service.submit(seb_point(42.0));
    assert!(repeat.is_ready(), "repeat should resolve at submission");
    assert_eq!(repeat.wait().expect("cache hit"), first_result);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn queue_full_rejects_at_admission() {
    let service = Service::start(ServeConfig::new().workers(1).queue_capacity(1));
    let busy = service.submit(occupancy());
    // With the worker busy, a capacity-1 queue holds one job; the next
    // distinct submission must bounce. Submit until the queue reports
    // full (the first queued job may be grabbed quickly).
    let mut bounced = false;
    let mut pending = Vec::new();
    for power in 0..50 {
        let t = service.submit(seb_point(30.0 + f64::from(power)));
        match t.is_ready() {
            true => {
                assert_eq!(t.wait(), Err(Error::QueueFull { capacity: 1 }));
                bounced = true;
                break;
            }
            false => pending.push(t),
        }
    }
    assert!(bounced, "queue never reported full");
    assert!(busy.wait().is_ok());
    for t in pending {
        assert!(t.wait().is_ok());
    }
    assert!(service.stats().rejected_queue_full >= 1);
}

#[test]
fn graceful_drain_completes_queued_work_at_all_pool_sizes() {
    for workers in [1usize, 2, 8] {
        let service = Service::start(ServeConfig::new().workers(workers));
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| service.submit(seb_point(20.0 + f64::from(i))))
            .collect();
        service.shutdown();
        for t in tickets {
            assert!(
                t.wait().is_ok(),
                "queued job dropped during drain with {workers} workers"
            );
        }
        let rejected = service.submit(seb_point(99.0));
        assert_eq!(rejected.wait(), Err(Error::ShuttingDown));
        let stats = service.stats();
        assert_eq!(stats.completed, 6, "with {workers} workers");
    }
}
