//! Wire codec round-trips and a socket end-to-end exchange.

use std::sync::Arc;

use aeropack_serve::wire::{
    decode_request_line, decode_response_line, encode_request_line, encode_response_line,
    WireRequest, WireResponse,
};
use aeropack_serve::{
    serve, AnalysisRequest, AnalysisResponse, BoardSpec, CoolingModeSpec, Error, FemPlateSpec,
    MaterialKind, MissionSpec, OptimizeSpec, PlateSpec, Priority, SchemeKind, SeatKind, SebSpec,
    ServeConfig, Service, SocketClient, TransientSpec,
};

fn seb_spec() -> SebSpec {
    SebSpec {
        seat: SeatKind::CarbonComposite,
        lhp: false,
        tilt_deg: 12.5,
        ambient_c: 30.25,
    }
}

fn plate_spec() -> PlateSpec {
    PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Fr4,
        power_w: 12.5,
        h_w_m2k: 37.5,
        ambient_c: 55.0,
    }
}

fn fem_spec() -> FemPlateSpec {
    FemPlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        nx: 8,
        ny: 6,
        thickness_mm: 1.6,
        smeared_mass_kg_m2: 4.5,
        material: MaterialKind::Fr4,
    }
}

fn all_requests() -> Vec<AnalysisRequest> {
    vec![
        AnalysisRequest::SebCapability {
            spec: seb_spec(),
            dt_limit_k: 25.0,
        },
        AnalysisRequest::SebOperatingPoint {
            spec: seb_spec(),
            power_w: 41.5,
        },
        AnalysisRequest::SebPowerSweep {
            spec: seb_spec(),
            powers_w: vec![10.0, 20.0, 30.0, 123.456789012345],
        },
        AnalysisRequest::FvSteady {
            spec: plate_spec(),
            scale: 1.0 + 1e-15,
        },
        AnalysisRequest::BoardSteady {
            spec: BoardSpec {
                power_w: 25.0,
                mode: CoolingModeSpec::ConductionCooled { rail_c: 45.0 },
                ambient_c: 40.0,
                resolution_mm: 5.0,
            },
            scale: 0.75,
        },
        AnalysisRequest::BoardSteady {
            spec: BoardSpec {
                power_w: 25.0,
                mode: CoolingModeSpec::LiquidFlowThrough {
                    coolant_inlet_c: 18.0,
                },
                ambient_c: 40.0,
                resolution_mm: 5.0,
            },
            scale: 1.0,
        },
        AnalysisRequest::FemStatic {
            spec: fem_spec(),
            load_n: -9.81,
        },
        AnalysisRequest::Transient {
            spec: TransientSpec {
                plate: plate_spec(),
                mission: MissionSpec::ClimbCruiseDescent {
                    cruise_altitude_m: 10_500.0,
                    climb_s: 900.0,
                    cruise_s: 5_400.0,
                    descent_s: 1_200.0,
                },
                scheme: SchemeKind::Trapezoidal,
                fixed_dt_s: None,
                initial_c: 15.0,
            },
        },
        AnalysisRequest::Transient {
            spec: TransientSpec {
                plate: plate_spec(),
                mission: MissionSpec::OrbitCycle {
                    cycles: 3,
                    emissivity: 0.85,
                    absorptivity: 0.3125,
                },
                scheme: SchemeKind::BackwardEuler,
                fixed_dt_s: Some(2.5),
                initial_c: 20.0,
            },
        },
        AnalysisRequest::FemModal {
            spec: fem_spec(),
            n_modes: 6,
        },
        AnalysisRequest::FemHarmonic {
            spec: fem_spec(),
            damping: 0.02,
            f_min_hz: 10.0,
            f_max_hz: 2000.0,
            points: 120,
        },
        AnalysisRequest::Optimize {
            spec: OptimizeSpec {
                // Past 2^53 so a float round-trip would corrupt it:
                // proves the hex-string encoding of u64 seeds.
                seed: 0xdead_beef_1234_5678,
                population: 32,
                generations: 8,
                tilt_deg: 30.0,
                ambient_c: 25.0,
                base_power_w: 120.0,
            },
        },
    ]
}

fn all_responses() -> Vec<AnalysisResponse> {
    vec![
        AnalysisResponse::Capability { watts: 55.25 },
        AnalysisResponse::OperatingPoint {
            power_w: 40.0,
            pcb_c: 68.125,
            wall_c: 51.0625,
            lhp_w: 22.5,
            dt_pcb_air_k: 28.125,
        },
        AnalysisResponse::PowerSweep {
            dt_pcb_air_k: vec![Some(10.5), Some(21.25), None, None],
        },
        AnalysisResponse::Field {
            min_c: 40.0,
            max_c: 71.125,
            mean_c: 55.0625,
            cells: 160,
        },
        AnalysisResponse::Transient {
            final_min_c: -12.5,
            final_max_c: 61.0625,
            final_mean_c: 23.75,
            steps: 10_432,
            rejected: 17,
            factor_reuses: 10_200,
            trajectory_hash: 0xdead_beef_0123_4567,
        },
        AnalysisResponse::Static {
            max_deflection_m: 1.25e-4,
        },
        AnalysisResponse::Modal {
            frequencies_hz: vec![112.5, 280.0, 443.75],
        },
        AnalysisResponse::Harmonic {
            peak_hz: 112.5,
            peak_transmissibility: 24.75,
            points: 120,
        },
        AnalysisResponse::Pareto {
            topologies: vec![
                "conduction".to_string(),
                "loop_heat_pipe".to_string(),
                "pumped_co2".to_string(),
            ],
            dt_k: vec![41.25, 18.0625, 9.5],
            mass_kg: vec![0.875, 1.3125, 2.25],
            mtbf_h: vec![62_500.0, 88_000.0, 71_250.0],
            front_hash: 0xfeed_face_8765_4321,
            evaluations: 1_000_448,
        },
    ]
}

#[test]
fn request_lines_round_trip_every_variant() {
    for (i, request) in all_requests().into_iter().enumerate() {
        let original = WireRequest {
            id: i as u64 + 1,
            priority: Priority::High,
            deadline_ms: Some(250),
            request,
        };
        let line = encode_request_line(&original);
        let decoded = decode_request_line(&line).expect("round trip");
        assert_eq!(decoded, original, "line: {line}");
    }
}

#[test]
fn request_line_defaults_priority_and_deadline() {
    let original = WireRequest {
        id: 7,
        priority: Priority::Normal,
        deadline_ms: None,
        request: AnalysisRequest::SebCapability {
            spec: seb_spec(),
            dt_limit_k: 25.0,
        },
    };
    let line = encode_request_line(&original);
    assert!(!line.contains("deadline_ms"));
    assert_eq!(decode_request_line(&line).expect("round trip"), original);
}

#[test]
fn response_lines_round_trip_every_variant() {
    for (i, response) in all_responses().into_iter().enumerate() {
        let original = WireResponse {
            id: i as u64 + 1,
            result: Ok(response),
        };
        let line = encode_response_line(&original);
        let decoded = decode_response_line(&line).expect("round trip");
        assert_eq!(decoded, original, "line: {line}");
    }
}

#[test]
fn error_responses_keep_their_stable_codes() {
    let errors = vec![
        Error::DeadlineExpired,
        Error::ShuttingDown,
        Error::QueueFull { capacity: 256 },
        Error::DryOut {
            detail: "loop heat pipe at 97 W".to_string(),
        },
        Error::Invalid {
            reason: "a \"quoted\" reason with a \\ backslash".to_string(),
        },
    ];
    for e in errors {
        let line = encode_response_line(&WireResponse {
            id: 3,
            result: Err(e.clone()),
        });
        let decoded = decode_response_line(&line).expect("round trip");
        match decoded.result {
            // Parameterless service errors round-trip exactly...
            Err(Error::DeadlineExpired) => assert_eq!(e, Error::DeadlineExpired),
            Err(Error::ShuttingDown) => assert_eq!(e, Error::ShuttingDown),
            // ...everything else keeps its code and message remotely.
            Err(Error::Remote { code, message }) => {
                assert_eq!(code, e.code());
                assert_eq!(message, e.to_string());
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
}

#[test]
fn malformed_lines_surface_as_wire_errors() {
    let cases = [
        "not json at all",
        "{\"id\":1}",
        "{\"id\":1,\"request\":{\"type\":\"no_such_analysis\",\"spec\":{}}}",
        "{\"id\":1,\"priority\":\"urgent\",\"request\":{}}",
        "{\"id\":-3,\"ok\":{\"type\":\"capability\",\"watts\":1}}",
    ];
    for line in cases {
        assert!(
            matches!(decode_request_line(line), Err(Error::Wire { .. })),
            "expected wire error for {line}"
        );
    }
    assert!(matches!(
        decode_response_line("{\"id\":1}"),
        Err(Error::Wire { .. })
    ));
}

#[test]
fn zero_deadline_round_trips_a_stable_invalid_code() {
    let service = Arc::new(Service::start(ServeConfig::new().workers(1)));
    let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").expect("daemon");
    let mut client = SocketClient::connect(daemon.addr()).expect("connect");

    let request = AnalysisRequest::SebOperatingPoint {
        spec: seb_spec(),
        power_w: 40.0,
    };
    // `deadline_ms: 0` must come back as a stable `invalid` rejection
    // with the request's own id (checked inside `call_with`), not as a
    // `deadline_expired` after burning a queue slot.
    let err = client
        .call_with(request.clone(), Priority::Normal, Some(0))
        .expect_err("zero deadline must be rejected");
    match err {
        Error::Remote { code, message } => {
            assert_eq!(code, "invalid");
            assert!(message.contains("deadline_ms"), "message: {message}");
        }
        other => panic!("expected the invalid code, got {other:?}"),
    }
    assert_eq!(service.stats().rejected_deadline, 0);

    // The same request with a real deadline still goes through.
    let answer = client
        .call_with(request, Priority::Normal, Some(60_000))
        .expect("nonzero deadline");
    assert!(matches!(answer, AnalysisResponse::OperatingPoint { .. }));

    daemon.shutdown();
    service.shutdown();
}

#[test]
fn socket_daemon_answers_calls_and_pipelined_batches() {
    let service = Arc::new(Service::start(ServeConfig::new().workers(2)));
    let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").expect("daemon");
    let mut client = SocketClient::connect(daemon.addr()).expect("connect");

    let answer = client
        .call(AnalysisRequest::SebOperatingPoint {
            spec: SebSpec {
                seat: SeatKind::Aluminum,
                lhp: true,
                tilt_deg: 0.0,
                ambient_c: 25.0,
            },
            power_w: 40.0,
        })
        .expect("seb call");
    assert!(matches!(answer, AnalysisResponse::OperatingPoint { .. }));

    let batch: Vec<AnalysisRequest> = [0.5, 1.0, 1.5]
        .iter()
        .map(|&scale| AnalysisRequest::FvSteady {
            spec: plate_spec(),
            scale,
        })
        .collect();
    let results = client.call_batch(batch).expect("batch");
    assert_eq!(results.len(), 3);
    for r in results {
        assert!(matches!(r, Ok(AnalysisResponse::Field { .. })));
    }

    daemon.shutdown();
    service.shutdown();
}

// ---------------------------------------------------------------------
// Binary frame codec (the shard-worker protocol).
// ---------------------------------------------------------------------

#[test]
fn frames_round_trip_with_exact_f64_bits() {
    use aeropack_serve::wire::{decode_f64s, encode_f64s, read_frame, write_frame, FrameKind};
    let values = [
        0.0,
        -0.0,
        1.5,
        f64::MIN_POSITIVE,
        f64::MAX,
        -1.0 / 3.0,
        f64::INFINITY,
    ];
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::ApplyA, &encode_f64s(&values)).unwrap();
    write_frame(&mut buf, FrameKind::Done, &[]).unwrap();
    let mut cursor = &buf[..];
    let (kind, payload) = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(kind, FrameKind::ApplyA);
    let decoded = decode_f64s(&payload).unwrap();
    assert_eq!(decoded.len(), values.len());
    for (got, want) in decoded.iter().zip(&values) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    let (kind, payload) = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(kind, FrameKind::Done);
    assert!(payload.is_empty());
    // Clean end-of-stream between frames is None, not an error.
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

#[test]
fn malformed_frames_are_rejected() {
    use aeropack_serve::wire::{decode_f64s, read_frame};
    // Truncated header.
    assert!(read_frame(&mut &[1u8, 0, 0][..]).is_err());
    // Unknown kind byte.
    assert!(read_frame(&mut &[0u8, 0, 0, 0, 99][..]).is_err());
    // Length prefix past the cap.
    assert!(read_frame(&mut &[0xff, 0xff, 0xff, 0xff, 1][..]).is_err());
    // Payload shorter than its declared length.
    assert!(read_frame(&mut &[4u8, 0, 0, 0, 3, 1, 2][..]).is_err());
    // A vector payload must be whole f64s.
    assert!(decode_f64s(&[0u8; 12]).is_err());
}

#[test]
fn slab_specs_round_trip_through_the_frame_payload() {
    use aeropack_serve::wire::{decode_slab_spec, encode_slab_spec};
    use aeropack_solver::{CsrMatrix, Partition, SlabSpec};
    let (nx, ny, nz) = (4, 3, 8);
    let n = nx * ny * nz;
    let a = CsrMatrix::from_row_fn(n, 1, move |i, row| {
        row.push((i, 6.5));
        if i >= nx * ny {
            row.push((i - nx * ny, -1.0));
        }
        if i + nx * ny < n {
            row.push((i + nx * ny, -1.0));
        }
        row.sort_by_key(|&(c, _)| c);
    });
    let part = Partition::new(n, Some((nx, ny, nz)), 4).unwrap();
    for (slab, tile_range) in part.shard_layout(2) {
        let spec = SlabSpec::extract(&a, &part, slab, &part.tiles()[tile_range]).unwrap();
        let decoded = decode_slab_spec(&encode_slab_spec(&spec)).unwrap();
        assert_eq!(decoded, spec);
    }
    // Garbage payloads fail cleanly.
    assert!(decode_slab_spec(&[0u8; 7]).is_err());
    let mut extra = encode_slab_spec(
        &SlabSpec::extract(&a, &part, part.shard_layout(1)[0].0, part.tiles()).unwrap(),
    );
    extra.push(0);
    assert!(decode_slab_spec(&extra).is_err());
}
