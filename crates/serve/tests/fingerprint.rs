//! Cache-key hygiene: fingerprints are canonical — invariant under
//! construction order, sensitive to every physical parameter, and
//! NaN-free by construction.

use aeropack_core::{representative_board, CoolingMode, Level2Model};
use aeropack_materials::Material;
use aeropack_serve::{
    AnalysisRequest, BoardSpec, CoolingModeSpec, MaterialKind, PlateSpec, Workload,
};
use aeropack_thermal::{FvGrid, FvModel};
use aeropack_units::{Celsius, Length, Power};

fn board_model() -> Level2Model {
    let pcb = representative_board("hygiene board", Power::new(30.0)).expect("board");
    Level2Model::new(
        &pcb,
        &CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        },
        Celsius::new(40.0),
        Length::from_millimeters(5.0),
    )
    .expect("level2 model")
}

#[test]
fn two_builds_of_the_same_level2_model_hash_identically() {
    assert_eq!(board_model().fingerprint(), board_model().fingerprint());
}

#[test]
fn level2_fingerprint_tracks_the_cooling_mode() {
    let pcb = representative_board("hygiene board", Power::new(30.0)).expect("board");
    let forced = Level2Model::new(
        &pcb,
        &CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        },
        Celsius::new(40.0),
        Length::from_millimeters(5.0),
    )
    .expect("forced-air model");
    let conduction = Level2Model::new(
        &pcb,
        &CoolingMode::ConductionCooled {
            rail_temperature: Celsius::new(40.0),
        },
        Celsius::new(40.0),
        Length::from_millimeters(5.0),
    )
    .expect("conduction model");
    assert_ne!(forced.fingerprint(), conduction.fingerprint());
}

#[test]
fn fv_fingerprint_is_invariant_under_power_box_order() {
    let make = |swap: bool| {
        let grid = FvGrid::new((0.1, 0.1, 0.002), (10, 10, 1)).expect("grid");
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        let boxes = [
            (Power::new(5.0), (1, 1, 0), (4, 4, 1)),
            (Power::new(7.0), (6, 6, 0), (9, 9, 1)),
        ];
        let order: Vec<usize> = if swap { vec![1, 0] } else { vec![0, 1] };
        for i in order {
            let (p, lo, hi) = boxes[i];
            model.add_power_box(p, lo, hi).expect("power box");
        }
        model.fingerprint()
    };
    assert_eq!(make(false), make(true));
}

#[test]
fn fv_fingerprint_tracks_the_source_field() {
    let base = |power_w: f64| {
        let grid = FvGrid::new((0.1, 0.1, 0.002), (10, 10, 1)).expect("grid");
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(power_w), (1, 1, 0), (4, 4, 1))
            .expect("power box");
        model.fingerprint()
    };
    assert_ne!(base(5.0), base(5.5));
}

#[test]
fn equal_requests_share_a_cache_key_and_parameters_split_it() {
    let spec = PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Fr4,
        power_w: 12.0,
        h_w_m2k: 30.0,
        ambient_c: 55.0,
    };
    let a = AnalysisRequest::FvSteady { spec, scale: 1.0 };
    let b = AnalysisRequest::FvSteady { spec, scale: 1.0 };
    assert_eq!(Workload::fingerprint(&a), Workload::fingerprint(&b));
    let c = AnalysisRequest::FvSteady {
        spec,
        scale: 1.0 + 1e-15,
    };
    assert_ne!(Workload::fingerprint(&a), Workload::fingerprint(&c));
}

#[test]
fn coalesce_key_ignores_scale_but_not_the_model() {
    let spec = BoardSpec {
        power_w: 25.0,
        mode: CoolingModeSpec::ForcedAir {
            flow_multiplier: 1.0,
        },
        ambient_c: 40.0,
        resolution_mm: 5.0,
    };
    let a = AnalysisRequest::BoardSteady { spec, scale: 0.5 };
    let b = AnalysisRequest::BoardSteady { spec, scale: 1.5 };
    assert_eq!(a.coalesce_key(), b.coalesce_key());
    // Same scales, different model: keys must split.
    let hotter = BoardSpec {
        ambient_c: 55.0,
        ..spec
    };
    let c = AnalysisRequest::BoardSteady {
        spec: hotter,
        scale: 0.5,
    };
    assert_ne!(a.coalesce_key(), c.coalesce_key());
    // And the cache key still separates the scales the coalesce key
    // deliberately ignores.
    assert_ne!(Workload::fingerprint(&a), Workload::fingerprint(&b));
}

#[test]
#[should_panic(expected = "fingerprint input is NaN")]
fn nan_parameters_are_rejected_not_hashed() {
    let spec = PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Aluminum,
        power_w: 12.0,
        h_w_m2k: 30.0,
        ambient_c: 55.0,
    };
    let bad = AnalysisRequest::FvSteady {
        spec,
        scale: f64::NAN,
    };
    let _ = Workload::fingerprint(&bad);
}

#[test]
fn negative_zero_scale_hashes_like_positive_zero() {
    let spec = PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Aluminum,
        power_w: 12.0,
        h_w_m2k: 30.0,
        ambient_c: 55.0,
    };
    let pos = AnalysisRequest::FvSteady { spec, scale: 0.0 };
    let neg = AnalysisRequest::FvSteady { spec, scale: -0.0 };
    assert_eq!(Workload::fingerprint(&pos), Workload::fingerprint(&neg));
}
