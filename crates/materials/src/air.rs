//! Dry-air transport properties.
//!
//! Implemented as temperature power laws anchored at 300 K (Sutherland's
//! law for viscosity), valid over the avionics envelope of roughly
//! −60 °C … +300 °C. Density follows the ideal-gas law so that altitude
//! (reduced pressure) effects on convection are captured.

use aeropack_units::{Celsius, Density, Pressure, SpecificHeat, ThermalConductivity};

/// Specific gas constant of dry air, J/(kg·K).
const R_AIR: f64 = 287.058;

/// The complete transport state of dry air at a given temperature and
/// pressure, as consumed by the convection correlations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirState {
    /// Film temperature the properties were evaluated at.
    pub temperature: Celsius,
    /// Static pressure.
    pub pressure: Pressure,
    /// Density ρ.
    pub density: Density,
    /// Thermal conductivity k.
    pub conductivity: ThermalConductivity,
    /// Dynamic viscosity µ, Pa·s.
    pub dynamic_viscosity: f64,
    /// Specific heat at constant pressure cₚ.
    pub specific_heat: SpecificHeat,
}

impl AirState {
    /// Kinematic viscosity ν = µ/ρ, m²/s.
    pub fn kinematic_viscosity(&self) -> f64 {
        self.dynamic_viscosity / self.density.value()
    }

    /// Prandtl number Pr = µ·cₚ/k.
    pub fn prandtl(&self) -> f64 {
        self.dynamic_viscosity * self.specific_heat.value() / self.conductivity.value()
    }

    /// Thermal diffusivity α = k/(ρ·cₚ), m²/s.
    pub fn thermal_diffusivity(&self) -> f64 {
        self.conductivity.value() / (self.density.value() * self.specific_heat.value())
    }

    /// Isobaric expansion coefficient β = 1/T for an ideal gas, 1/K.
    pub fn expansion_coefficient(&self) -> f64 {
        1.0 / self.temperature.kelvin()
    }
}

/// Evaluates dry-air properties at a given temperature and pressure.
///
/// # Examples
///
/// ```
/// use aeropack_materials::air_at;
/// use aeropack_units::{Celsius, Pressure};
///
/// let air = air_at(Celsius::new(20.0), Pressure::standard_atmosphere());
/// assert!((air.density.value() - 1.204).abs() < 0.01);
/// assert!((air.prandtl() - 0.71).abs() < 0.02);
/// ```
pub fn air_at(temperature: Celsius, pressure: Pressure) -> AirState {
    let t = temperature.kelvin();
    // Sutherland's law, reference 273.15 K.
    let mu = 1.716e-5 * (t / 273.15).powf(1.5) * (273.15 + 110.4) / (t + 110.4);
    // Conductivity power-law anchored at k(300 K) = 0.02624 W/mK.
    let k = 0.02624 * (t / 300.0).powf(0.8646);
    // cp varies weakly below 500 K; linear fit around 300 K.
    let cp = 1006.0 + 0.05 * (t - 300.0);
    let rho = pressure.value() / (R_AIR * t);
    AirState {
        temperature,
        pressure,
        density: Density::new(rho),
        conductivity: ThermalConductivity::new(k),
        dynamic_viscosity: mu,
        specific_heat: SpecificHeat::new(cp),
    }
}

/// Evaluates dry-air properties at a given temperature and one standard
/// atmosphere.
pub fn air_at_sea_level(temperature: Celsius) -> AirState {
    air_at(temperature, Pressure::standard_atmosphere())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handbook_values_at_300_kelvin() {
        let air = air_at(Celsius::from_kelvin(300.0), Pressure::standard_atmosphere());
        // Incropera Table A.4: ρ=1.1614, µ=1.846e-5, k=0.0263, Pr=0.707.
        assert!((air.density.value() - 1.1614).abs() < 0.02);
        assert!((air.dynamic_viscosity - 1.846e-5).abs() < 0.05e-5);
        assert!((air.conductivity.value() - 0.0263).abs() < 0.001);
        assert!((air.prandtl() - 0.707).abs() < 0.02);
    }

    #[test]
    fn handbook_values_at_350_kelvin() {
        let air = air_at(Celsius::from_kelvin(350.0), Pressure::standard_atmosphere());
        // Incropera: ρ=0.995, µ=2.082e-5, k=0.030.
        assert!((air.density.value() - 0.995).abs() < 0.02);
        assert!((air.dynamic_viscosity - 2.082e-5).abs() < 0.06e-5);
        assert!((air.conductivity.value() - 0.030).abs() < 0.0015);
    }

    #[test]
    fn density_scales_with_pressure() {
        let t = Celsius::new(20.0);
        let sea = air_at(t, Pressure::standard_atmosphere());
        // Cruise-cabin-adjacent bay at reduced pressure.
        let altitude = air_at(t, Pressure::from_kilopascals(75.0));
        let ratio = altitude.density.value() / sea.density.value();
        assert!((ratio - 75.0 / 101.325).abs() < 1e-9);
    }

    #[test]
    fn cold_soak_extreme_is_usable() {
        // The paper's −45 °C thermal-shock extreme must be evaluable.
        let air = air_at_sea_level(Celsius::new(-45.0));
        assert!(air.density.value() > 1.4);
        assert!(air.prandtl() > 0.6 && air.prandtl() < 0.8);
    }

    #[test]
    fn expansion_coefficient_is_inverse_kelvin() {
        let air = air_at_sea_level(Celsius::new(26.85));
        assert!((air.expansion_coefficient() - 1.0 / 300.0).abs() < 1e-12);
    }
}
