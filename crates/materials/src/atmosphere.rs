//! The International Standard Atmosphere (ISA) — ambient pressure and
//! temperature versus altitude, up to 20 km.
//!
//! Avionics cooling is certified against altitude as well as
//! temperature (DO-160 §4): air density falls with altitude, and with
//! it every convective film coefficient. This module provides the
//! standard profile so the convection correlations can be evaluated at
//! bay conditions.

use aeropack_units::{Celsius, Pressure};

use crate::air::{air_at, AirState};
use crate::error::MaterialError;

/// Sea-level ISA temperature, °C.
const T0_C: f64 = 15.0;
/// Tropospheric lapse rate, K/m.
const LAPSE: f64 = 6.5e-3;
/// Tropopause altitude, m.
const TROPOPAUSE_M: f64 = 11_000.0;
/// Model ceiling, m.
const CEILING_M: f64 = 20_000.0;
/// Specific gas constant of air, J/(kg·K).
const R_AIR: f64 = 287.058;
/// Standard gravity, m/s².
const G0: f64 = 9.806_65;

/// The ISA state at one altitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsaPoint {
    /// Geopotential altitude, m.
    pub altitude_m: f64,
    /// Standard temperature at that altitude.
    pub temperature: Celsius,
    /// Standard pressure at that altitude.
    pub pressure: Pressure,
}

/// Evaluates the standard atmosphere at a geopotential altitude.
///
/// # Errors
///
/// Returns an error below −500 m or above the 20 km model ceiling.
///
/// # Examples
///
/// ```
/// use aeropack_materials::isa_atmosphere;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cruise = isa_atmosphere(11_000.0)?;
/// assert!((cruise.temperature.value() + 56.5).abs() < 0.1);
/// assert!((cruise.pressure.kilopascals() - 22.6).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
pub fn isa_atmosphere(altitude_m: f64) -> Result<IsaPoint, MaterialError> {
    if !(-500.0..=CEILING_M).contains(&altitude_m) {
        return Err(MaterialError::TemperatureOutOfRange {
            what: "ISA atmosphere model (−500 m … 20 km)".into(),
            requested_c: altitude_m,
            min_c: -500.0,
            max_c: CEILING_M,
        });
    }
    let p0 = Pressure::standard_atmosphere().value();
    let t0_k = Celsius::new(T0_C).kelvin();
    if altitude_m <= TROPOPAUSE_M {
        let t_k = t0_k - LAPSE * altitude_m;
        let p = p0 * (t_k / t0_k).powf(G0 / (R_AIR * LAPSE));
        Ok(IsaPoint {
            altitude_m,
            temperature: Celsius::from_kelvin(t_k),
            pressure: Pressure::new(p),
        })
    } else {
        // Isothermal stratosphere above the tropopause.
        let t11_k = t0_k - LAPSE * TROPOPAUSE_M;
        let p11 = p0 * (t11_k / t0_k).powf(G0 / (R_AIR * LAPSE));
        let p = p11 * (-(altitude_m - TROPOPAUSE_M) * G0 / (R_AIR * t11_k)).exp();
        Ok(IsaPoint {
            altitude_m,
            temperature: Celsius::from_kelvin(t11_k),
            pressure: Pressure::new(p),
        })
    }
}

/// Air transport properties at an altitude, with an optional ISA
/// deviation (hot-day/cold-day analysis) applied to the temperature.
///
/// # Errors
///
/// Returns an error outside the ISA model range.
///
/// # Examples
///
/// ```
/// use aeropack_materials::air_at_altitude;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bay = air_at_altitude(8_000.0, 20.0)?; // ISA+20 hot day
/// assert!(bay.density.value() < 0.6); // thin air up there
/// # Ok(())
/// # }
/// ```
pub fn air_at_altitude(altitude_m: f64, delta_isa_k: f64) -> Result<AirState, MaterialError> {
    let isa = isa_atmosphere(altitude_m)?;
    let t = Celsius::new(isa.temperature.value() + delta_isa_k);
    Ok(air_at(t, isa.pressure))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sea_level_anchors() {
        let sl = isa_atmosphere(0.0).unwrap();
        assert!((sl.temperature.value() - 15.0).abs() < 1e-9);
        assert!((sl.pressure.value() - 101_325.0).abs() < 1e-6);
    }

    #[test]
    fn tropopause_anchor() {
        // Standard values: −56.5 °C and 226.32 hPa at 11 km.
        let tp = isa_atmosphere(11_000.0).unwrap();
        assert!((tp.temperature.value() + 56.5).abs() < 0.05);
        assert!((tp.pressure.value() - 22_632.0).abs() < 50.0);
    }

    #[test]
    fn stratosphere_is_isothermal_but_thinning() {
        let a = isa_atmosphere(12_000.0).unwrap();
        let b = isa_atmosphere(16_000.0).unwrap();
        assert_eq!(a.temperature, b.temperature);
        assert!(b.pressure.value() < a.pressure.value());
        // 16 km standard pressure ≈ 10.35 kPa.
        assert!((b.pressure.kilopascals() - 10.35).abs() < 0.3);
    }

    #[test]
    fn pressure_monotone_with_altitude() {
        let mut last = f64::INFINITY;
        for h in (0..=20).map(|k| k as f64 * 1000.0) {
            let p = isa_atmosphere(h).unwrap().pressure.value();
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn density_collapses_at_cruise() {
        let sl = air_at_altitude(0.0, 0.0).unwrap();
        let cruise = air_at_altitude(11_000.0, 0.0).unwrap();
        let ratio = cruise.density.value() / sl.density.value();
        // Standard: ρ(11 km)/ρ(0) ≈ 0.297.
        assert!((ratio - 0.297).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(isa_atmosphere(-1000.0).is_err());
        assert!(isa_atmosphere(25_000.0).is_err());
    }

    #[test]
    fn hot_day_offset_applies() {
        let std = air_at_altitude(5_000.0, 0.0).unwrap();
        let hot = air_at_altitude(5_000.0, 20.0).unwrap();
        assert!((hot.temperature.value() - std.temperature.value() - 20.0).abs() < 1e-9);
        assert!(hot.density.value() < std.density.value());
    }
}
