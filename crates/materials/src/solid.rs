//! Solid material library.

use aeropack_units::{Density, SpecificHeat, Stress, ThermalConductivity};

/// An isotropic solid material with the constants needed by both the
/// thermal and the structural solvers.
///
/// All fields are public: this is a passive record in the C-struct spirit,
/// and downstream crates legitimately build custom materials (e.g. the
/// NANOPACK composites) by struct literal update syntax:
///
/// ```
/// use aeropack_materials::Material;
/// use aeropack_units::ThermalConductivity;
///
/// let nanopack_composite = Material {
///     name: "metal-polymer composite",
///     thermal_conductivity: ThermalConductivity::new(20.0),
///     ..Material::epoxy()
/// };
/// assert_eq!(nanopack_composite.thermal_conductivity.value(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    /// Human-readable material name.
    pub name: &'static str,
    /// Bulk thermal conductivity.
    pub thermal_conductivity: ThermalConductivity,
    /// Mass density.
    pub density: Density,
    /// Specific heat capacity.
    pub specific_heat: SpecificHeat,
    /// Young's modulus.
    pub youngs_modulus: Stress,
    /// Poisson's ratio (dimensionless).
    pub poisson_ratio: f64,
    /// Coefficient of thermal expansion, 1/K.
    pub cte_per_kelvin: f64,
    /// Yield (or for brittle/laminate materials, allowable) strength.
    pub yield_strength: Stress,
}

impl Material {
    /// Thermal diffusivity α = k / (ρ·cₚ), m²/s.
    pub fn thermal_diffusivity(&self) -> f64 {
        self.thermal_conductivity.value() / (self.density.value() * self.specific_heat.value())
    }

    /// Aluminium 6061-T6 — the workhorse avionics chassis alloy.
    pub fn aluminum_6061() -> Self {
        Self {
            name: "Al 6061-T6",
            thermal_conductivity: ThermalConductivity::new(167.0),
            density: Density::new(2700.0),
            specific_heat: SpecificHeat::new(896.0),
            youngs_modulus: Stress::new(68.9e9),
            poisson_ratio: 0.33,
            cte_per_kelvin: 23.6e-6,
            yield_strength: Stress::from_megapascals(276.0),
        }
    }

    /// Aluminium 7075-T6 — high-strength aerospace alloy.
    pub fn aluminum_7075() -> Self {
        Self {
            name: "Al 7075-T6",
            thermal_conductivity: ThermalConductivity::new(130.0),
            density: Density::new(2810.0),
            specific_heat: SpecificHeat::new(960.0),
            youngs_modulus: Stress::new(71.7e9),
            poisson_ratio: 0.33,
            cte_per_kelvin: 23.4e-6,
            yield_strength: Stress::from_megapascals(503.0),
        }
    }

    /// Oxygen-free copper — thermal drains and heat-pipe walls.
    pub fn copper() -> Self {
        Self {
            name: "Cu OFHC",
            thermal_conductivity: ThermalConductivity::new(391.0),
            density: Density::new(8940.0),
            specific_heat: SpecificHeat::new(385.0),
            youngs_modulus: Stress::new(117.0e9),
            poisson_ratio: 0.34,
            cte_per_kelvin: 17.0e-6,
            yield_strength: Stress::from_megapascals(70.0),
        }
    }

    /// FR-4 glass-epoxy laminate (resin-dominated bulk values; use
    /// [`crate::PcbLaminate`] for copper-loaded effective properties).
    pub fn fr4() -> Self {
        Self {
            name: "FR-4",
            thermal_conductivity: ThermalConductivity::new(0.30),
            density: Density::new(1850.0),
            specific_heat: SpecificHeat::new(1100.0),
            youngs_modulus: Stress::new(22.0e9),
            poisson_ratio: 0.15,
            cte_per_kelvin: 15.0e-6,
            yield_strength: Stress::from_megapascals(300.0),
        }
    }

    /// Quasi-isotropic carbon-fibre composite, as in the COSEE
    /// carbon-composite seat structure ("rather poor thermal
    /// conductivity" compared to aluminium).
    pub fn carbon_composite() -> Self {
        Self {
            name: "CFRP quasi-isotropic",
            thermal_conductivity: ThermalConductivity::new(5.0),
            density: Density::new(1600.0),
            specific_heat: SpecificHeat::new(900.0),
            youngs_modulus: Stress::new(60.0e9),
            poisson_ratio: 0.30,
            cte_per_kelvin: 2.0e-6,
            yield_strength: Stress::from_megapascals(600.0),
        }
    }

    /// 304 stainless steel — fasteners, wedge locks.
    pub fn steel_304() -> Self {
        Self {
            name: "SS 304",
            thermal_conductivity: ThermalConductivity::new(16.2),
            density: Density::new(8000.0),
            specific_heat: SpecificHeat::new(500.0),
            youngs_modulus: Stress::new(193.0e9),
            poisson_ratio: 0.29,
            cte_per_kelvin: 17.3e-6,
            yield_strength: Stress::from_megapascals(215.0),
        }
    }

    /// SAC305 lead-free solder — joint fatigue calculations.
    pub fn sac305() -> Self {
        Self {
            name: "SAC305",
            thermal_conductivity: ThermalConductivity::new(58.0),
            density: Density::new(7400.0),
            specific_heat: SpecificHeat::new(230.0),
            youngs_modulus: Stress::new(51.0e9),
            poisson_ratio: 0.36,
            cte_per_kelvin: 21.0e-6,
            yield_strength: Stress::from_megapascals(37.0),
        }
    }

    /// Unfilled epoxy resin — the TIM matrix before filler loading.
    pub fn epoxy() -> Self {
        Self {
            name: "epoxy (unfilled)",
            thermal_conductivity: ThermalConductivity::new(0.20),
            density: Density::new(1200.0),
            specific_heat: SpecificHeat::new(1100.0),
            youngs_modulus: Stress::new(3.0e9),
            poisson_ratio: 0.35,
            cte_per_kelvin: 60.0e-6,
            yield_strength: Stress::from_megapascals(60.0),
        }
    }

    /// Silver — the NANOPACK filler metal (flakes and micro-spheres).
    pub fn silver() -> Self {
        Self {
            name: "Ag",
            thermal_conductivity: ThermalConductivity::new(429.0),
            density: Density::new(10490.0),
            specific_heat: SpecificHeat::new(235.0),
            youngs_modulus: Stress::new(83.0e9),
            poisson_ratio: 0.37,
            cte_per_kelvin: 18.9e-6,
            yield_strength: Stress::from_megapascals(55.0),
        }
    }

    /// Silicon die material.
    pub fn silicon() -> Self {
        Self {
            name: "Si",
            thermal_conductivity: ThermalConductivity::new(148.0),
            density: Density::new(2330.0),
            specific_heat: SpecificHeat::new(712.0),
            youngs_modulus: Stress::new(130.0e9),
            poisson_ratio: 0.28,
            cte_per_kelvin: 2.6e-6,
            yield_strength: Stress::from_megapascals(7000.0),
        }
    }

    /// Alumina (Al₂O₃) ceramic substrate.
    pub fn alumina() -> Self {
        Self {
            name: "Al₂O₃ 96%",
            thermal_conductivity: ThermalConductivity::new(24.0),
            density: Density::new(3700.0),
            specific_heat: SpecificHeat::new(880.0),
            youngs_modulus: Stress::new(300.0e9),
            poisson_ratio: 0.21,
            cte_per_kelvin: 7.2e-6,
            yield_strength: Stress::from_megapascals(300.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_values_are_physical() {
        for m in [
            Material::aluminum_6061(),
            Material::aluminum_7075(),
            Material::copper(),
            Material::fr4(),
            Material::carbon_composite(),
            Material::steel_304(),
            Material::sac305(),
            Material::epoxy(),
            Material::silver(),
            Material::silicon(),
            Material::alumina(),
        ] {
            assert!(m.thermal_conductivity.value() > 0.0, "{}", m.name);
            assert!(m.density.value() > 500.0, "{}", m.name);
            assert!(m.specific_heat.value() > 100.0, "{}", m.name);
            assert!(m.youngs_modulus.value() > 1e9, "{}", m.name);
            assert!(m.poisson_ratio > 0.0 && m.poisson_ratio < 0.5, "{}", m.name);
            assert!(m.thermal_diffusivity() > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn copper_beats_aluminum_thermally() {
        assert!(
            Material::copper().thermal_conductivity.value()
                > Material::aluminum_6061().thermal_conductivity.value()
        );
    }

    #[test]
    fn composite_is_poor_conductor_vs_aluminum() {
        // The paper's carbon seat gave smaller improvements than the
        // aluminium one precisely because of this gap.
        let ratio = Material::aluminum_6061().thermal_conductivity.value()
            / Material::carbon_composite().thermal_conductivity.value();
        assert!(ratio > 20.0);
    }

    #[test]
    fn diffusivity_of_aluminum() {
        // α(Al) ≈ 6.9e-5 m²/s
        let a = Material::aluminum_6061().thermal_diffusivity();
        assert!((a - 6.9e-5).abs() / 6.9e-5 < 0.05);
    }
}
