//! Error type for property lookups.

use std::error::Error;
use std::fmt;

/// Error returned when a property is requested outside its validity range
/// or a construction argument is physically meaningless.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterialError {
    /// A temperature fell outside the validity range of a property
    /// correlation or table.
    TemperatureOutOfRange {
        /// The item (fluid or correlation) whose range was violated.
        what: String,
        /// Requested temperature, °C.
        requested_c: f64,
        /// Lower validity bound, °C.
        min_c: f64,
        /// Upper validity bound, °C.
        max_c: f64,
    },
    /// A constructor argument was not physically meaningful
    /// (non-positive thickness, fraction outside `[0, 1]`, …).
    InvalidArgument {
        /// Name of the offending argument.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
        /// The value that was supplied.
        value: f64,
    },
}

impl fmt::Display for MaterialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TemperatureOutOfRange {
                what,
                requested_c,
                min_c,
                max_c,
            } => write!(
                f,
                "temperature {requested_c} °C outside the validity range \
                 [{min_c}, {max_c}] °C of {what}"
            ),
            Self::InvalidArgument {
                name,
                constraint,
                value,
            } => write!(f, "argument `{name}` = {value} violates: {constraint}"),
        }
    }
}

impl Error for MaterialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MaterialError::TemperatureOutOfRange {
            what: "water saturation table".into(),
            requested_c: 300.0,
            min_c: 0.0,
            max_c: 200.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("300"));
        assert!(msg.contains("water"));
    }
}
