//! Material and working-fluid property database for avionics packaging.
//!
//! Four families of data live here:
//!
//! * [`Material`] — solid structural/thermal materials (aluminium alloys,
//!   copper, FR-4, carbon composite, solders, ceramics) with the constants
//!   needed by both the thermal and the mechanical solvers.
//! * [`AirState`] / [`air_at`] — dry-air transport properties as a
//!   function of temperature and pressure, used by every convection
//!   correlation.
//! * [`WorkingFluid`] — two-phase working fluids (water, ammonia, acetone,
//!   methanol, ethanol) with saturation curves, used by the heat-pipe and
//!   loop-heat-pipe models.
//! * [`PcbLaminate`] — effective orthotropic conductivity of a copper/FR-4
//!   layup, the quantity that the paper's Level-2 simulations optimise
//!   ("copper layers, specific drains").
//!
//! # Examples
//!
//! ```
//! use aeropack_materials::{Material, WorkingFluid};
//! use aeropack_units::Celsius;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let alu = Material::aluminum_6061();
//! assert!(alu.thermal_conductivity.value() > 150.0);
//!
//! let sat = WorkingFluid::water().saturation(Celsius::new(100.0))?;
//! assert!((sat.pressure.kilopascals() - 101.3).abs() < 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod air;
mod atmosphere;
mod error;
mod fluid;
mod pcb;
mod solid;

pub use air::{air_at, air_at_sea_level, AirState};
pub use atmosphere::{air_at_altitude, isa_atmosphere, IsaPoint};
pub use error::MaterialError;
pub use fluid::{Saturation, WorkingFluid};
pub use pcb::{PcbLaminate, PcbLayer};
pub use solid::Material;

/// Universal gas constant, J/(mol·K).
pub const GAS_CONSTANT: f64 = 8.314_462_618;
