//! Two-phase working fluids for heat pipes, loop heat pipes and
//! thermosyphons.
//!
//! Each fluid carries an Antoine saturation-pressure correlation and a
//! sparse property table interpolated linearly in temperature. The table
//! values are standard engineering-handbook numbers — adequate for
//! operating-limit and loop-closure calculations, which is what the
//! paper's COSEE devices require.

use aeropack_units::{Celsius, Density, Pressure, ThermalConductivity};

use crate::error::MaterialError;
use crate::GAS_CONSTANT;

/// One row of a saturation-property table.
#[derive(Debug, Clone, Copy)]
struct TableRow {
    /// Temperature, °C.
    t_c: f64,
    /// Latent heat of vaporisation, kJ/kg.
    h_fg_kj: f64,
    /// Saturated-liquid density, kg/m³.
    rho_l: f64,
    /// Saturated-liquid dynamic viscosity, mPa·s.
    mu_l_mpa_s: f64,
    /// Saturated-liquid thermal conductivity, W/(m·K).
    k_l: f64,
    /// Surface tension, mN/m.
    sigma_mn: f64,
}

/// Antoine coefficients in the conventional (°C, mmHg, log₁₀) form:
/// `log10(P[mmHg]) = a − b / (c + T[°C])`.
#[derive(Debug, Clone, Copy)]
struct Antoine {
    a: f64,
    b: f64,
    c: f64,
}

impl Antoine {
    fn pressure(&self, t_c: f64) -> Pressure {
        let mmhg = 10f64.powf(self.a - self.b / (self.c + t_c));
        Pressure::new(mmhg * 133.322)
    }
}

/// The saturation state of a working fluid at one temperature: everything
/// the two-phase device models need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturation {
    /// Saturation temperature.
    pub temperature: Celsius,
    /// Saturation (vapour) pressure.
    pub pressure: Pressure,
    /// Latent heat of vaporisation, J/kg.
    pub latent_heat: f64,
    /// Saturated-liquid density.
    pub liquid_density: Density,
    /// Saturated-vapour density (ideal-gas estimate).
    pub vapor_density: Density,
    /// Saturated-liquid dynamic viscosity, Pa·s.
    pub liquid_viscosity: f64,
    /// Saturated-vapour dynamic viscosity, Pa·s.
    pub vapor_viscosity: f64,
    /// Saturated-liquid thermal conductivity.
    pub liquid_conductivity: ThermalConductivity,
    /// Surface tension, N/m.
    pub surface_tension: f64,
}

impl Saturation {
    /// The figure of merit for capillary two-phase devices (the "merit
    /// number"): `M = ρ_l · σ · h_fg / µ_l`, W/m².
    ///
    /// Higher is better; it ranks fluids for heat-pipe duty.
    pub fn merit_number(&self) -> f64 {
        self.liquid_density.value() * self.surface_tension * self.latent_heat
            / self.liquid_viscosity
    }
}

/// A two-phase working fluid with tabulated saturation properties.
///
/// The five fluids the COSEE-style hardware actually uses are provided as
/// constructors ([`WorkingFluid::water`], [`WorkingFluid::ammonia`],
/// [`WorkingFluid::acetone`], [`WorkingFluid::methanol`],
/// [`WorkingFluid::ethanol`]).
///
/// # Examples
///
/// ```
/// use aeropack_materials::WorkingFluid;
/// use aeropack_units::Celsius;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ammonia = WorkingFluid::ammonia();
/// let sat = ammonia.saturation(Celsius::new(20.0))?;
/// assert!(sat.pressure.bar() > 7.0); // NH₃ is a pressurised fluid
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorkingFluid {
    name: &'static str,
    molar_mass: f64,
    antoine: Antoine,
    /// Vapour viscosity at the reference temperature, Pa·s.
    mu_v_ref: f64,
    /// Reference temperature for vapour viscosity, K.
    t_ref_k: f64,
    table: &'static [TableRow],
}

macro_rules! rows {
    ($( [$t:expr, $h:expr, $rl:expr, $ml:expr, $kl:expr, $s:expr] ),+ $(,)?) => {
        &[ $( TableRow { t_c: $t, h_fg_kj: $h, rho_l: $rl, mu_l_mpa_s: $ml, k_l: $kl, sigma_mn: $s } ),+ ]
    };
}

static WATER_TABLE: &[TableRow] = rows![
    [0.01, 2501.0, 999.8, 1.792, 0.561, 75.6],
    [25.0, 2442.0, 997.0, 0.890, 0.607, 72.0],
    [50.0, 2382.0, 988.0, 0.547, 0.644, 67.9],
    [75.0, 2321.0, 974.8, 0.378, 0.667, 63.6],
    [100.0, 2257.0, 958.4, 0.282, 0.679, 58.9],
    [150.0, 2114.0, 917.0, 0.182, 0.682, 48.6],
    [200.0, 1940.0, 864.7, 0.134, 0.663, 37.7],
];

static AMMONIA_TABLE: &[TableRow] = rows![
    [-40.0, 1390.0, 690.0, 0.281, 0.614, 35.4],
    [-20.0, 1329.0, 665.0, 0.236, 0.585, 30.4],
    [0.0, 1262.0, 639.0, 0.190, 0.540, 26.8],
    [20.0, 1186.0, 610.0, 0.152, 0.500, 21.9],
    [40.0, 1099.0, 579.0, 0.125, 0.450, 18.0],
    [60.0, 997.0, 545.0, 0.105, 0.400, 14.2],
    [80.0, 870.0, 505.0, 0.088, 0.345, 10.5],
    [100.0, 715.0, 456.0, 0.070, 0.290, 6.8],
];

static ACETONE_TABLE: &[TableRow] = rows![
    [0.0, 564.0, 812.0, 0.40, 0.171, 26.2],
    [20.0, 546.0, 790.0, 0.32, 0.161, 23.7],
    [40.0, 536.0, 768.0, 0.27, 0.152, 21.2],
    [60.0, 517.0, 746.0, 0.23, 0.146, 18.6],
    [80.0, 495.0, 719.0, 0.20, 0.138, 16.2],
    [100.0, 471.0, 693.0, 0.17, 0.132, 13.4],
];

static CO2_TABLE: &[TableRow] = rows![
    [-40.0, 321.3, 1116.4, 0.190, 0.145, 13.1],
    [-20.0, 282.4, 1031.7, 0.145, 0.125, 9.3],
    [0.0, 230.9, 927.4, 0.099, 0.105, 4.5],
    [10.0, 196.6, 861.1, 0.084, 0.095, 2.7],
    [20.0, 152.0, 773.4, 0.066, 0.085, 1.2],
    [25.0, 121.5, 710.5, 0.057, 0.081, 0.6],
];

static METHANOL_TABLE: &[TableRow] = rows![
    [0.0, 1194.0, 810.0, 0.82, 0.210, 24.5],
    [20.0, 1169.0, 791.0, 0.59, 0.203, 22.6],
    [40.0, 1144.0, 772.0, 0.45, 0.197, 20.9],
    [60.0, 1115.0, 754.0, 0.35, 0.190, 18.9],
    [80.0, 1084.0, 735.0, 0.29, 0.184, 17.0],
    [100.0, 1047.0, 714.0, 0.24, 0.177, 15.0],
];

static ETHANOL_TABLE: &[TableRow] = rows![
    [0.0, 921.0, 806.0, 1.77, 0.174, 24.0],
    [20.0, 904.0, 789.0, 1.20, 0.171, 22.3],
    [40.0, 885.0, 772.0, 0.83, 0.168, 20.6],
    [60.0, 862.0, 754.0, 0.59, 0.165, 18.9],
    [78.3, 837.0, 737.0, 0.45, 0.162, 17.3],
    [100.0, 800.0, 716.0, 0.34, 0.158, 15.5],
];

impl WorkingFluid {
    /// Distilled water — the classic copper/water heat-pipe fill.
    pub fn water() -> Self {
        Self {
            name: "water",
            molar_mass: 0.018_015,
            antoine: Antoine {
                a: 8.07131,
                b: 1730.63,
                c: 233.426,
            },
            mu_v_ref: 12.0e-6,
            t_ref_k: 373.15,
            table: WATER_TABLE,
        }
    }

    /// Anhydrous ammonia — the standard LHP working fluid (the COSEE
    /// loop heat pipes from ITP are ammonia devices).
    pub fn ammonia() -> Self {
        Self {
            name: "ammonia",
            molar_mass: 0.017_031,
            antoine: Antoine {
                a: 7.36050,
                b: 926.132,
                c: 240.17,
            },
            mu_v_ref: 9.8e-6,
            t_ref_k: 293.15,
            table: AMMONIA_TABLE,
        }
    }

    /// Carbon dioxide — the AMS-02 tracker thermal-control fluid
    /// (mechanically pumped two-phase loops). Valid only up to 25 °C:
    /// the critical point sits at 31 °C, so a CO₂ loop keeps its
    /// saturation setpoint well below cabin ambients.
    pub fn carbon_dioxide() -> Self {
        Self {
            name: "carbon dioxide",
            molar_mass: 0.044_01,
            antoine: Antoine {
                a: 7.81024,
                b: 995.705,
                c: 293.475,
            },
            mu_v_ref: 14.0e-6,
            t_ref_k: 293.15,
            table: CO2_TABLE,
        }
    }

    /// Acetone — low-temperature heat-pipe fill for aluminium envelopes.
    pub fn acetone() -> Self {
        Self {
            name: "acetone",
            molar_mass: 0.058_08,
            antoine: Antoine {
                a: 7.02447,
                b: 1161.0,
                c: 224.0,
            },
            mu_v_ref: 8.0e-6,
            t_ref_k: 300.0,
            table: ACETONE_TABLE,
        }
    }

    /// Methanol — mid-range heat-pipe fill.
    pub fn methanol() -> Self {
        Self {
            name: "methanol",
            molar_mass: 0.032_04,
            antoine: Antoine {
                a: 7.89750,
                b: 1474.08,
                c: 229.13,
            },
            mu_v_ref: 9.7e-6,
            t_ref_k: 300.0,
            table: METHANOL_TABLE,
        }
    }

    /// Ethanol — alternative mid-range fill.
    pub fn ethanol() -> Self {
        Self {
            name: "ethanol",
            molar_mass: 0.046_07,
            antoine: Antoine {
                a: 8.20417,
                b: 1642.89,
                c: 230.3,
            },
            mu_v_ref: 9.0e-6,
            t_ref_k: 300.0,
            table: ETHANOL_TABLE,
        }
    }

    /// The fluid's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Molar mass in kg/mol.
    pub fn molar_mass(&self) -> f64 {
        self.molar_mass
    }

    /// Lower bound of the validity range.
    pub fn min_temperature(&self) -> Celsius {
        Celsius::new(self.table[0].t_c)
    }

    /// Upper bound of the validity range.
    pub fn max_temperature(&self) -> Celsius {
        Celsius::new(self.table[self.table.len() - 1].t_c)
    }

    /// Evaluates the complete saturation state at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`MaterialError::TemperatureOutOfRange`] when `t` lies
    /// outside the tabulated range of this fluid.
    pub fn saturation(&self, t: Celsius) -> Result<Saturation, MaterialError> {
        let t_c = t.value();
        let (lo, hi) = (self.table[0].t_c, self.table[self.table.len() - 1].t_c);
        if !(lo..=hi).contains(&t_c) {
            return Err(MaterialError::TemperatureOutOfRange {
                what: format!("{} saturation table", self.name),
                requested_c: t_c,
                min_c: lo,
                max_c: hi,
            });
        }
        // Locate the bracketing rows and interpolate linearly.
        let idx = self
            .table
            .windows(2)
            .position(|w| t_c <= w[1].t_c)
            .expect("t within table bounds");
        let (r0, r1) = (&self.table[idx], &self.table[idx + 1]);
        let f = if (r1.t_c - r0.t_c).abs() < f64::EPSILON {
            0.0
        } else {
            (t_c - r0.t_c) / (r1.t_c - r0.t_c)
        };
        let lerp = |a: f64, b: f64| a + f * (b - a);

        let pressure = self.antoine.pressure(t_c);
        let t_k = t.kelvin();
        let rho_v = pressure.value() * self.molar_mass / (GAS_CONSTANT * t_k);
        let mu_v = self.mu_v_ref * (t_k / self.t_ref_k).sqrt();

        Ok(Saturation {
            temperature: t,
            pressure,
            latent_heat: lerp(r0.h_fg_kj, r1.h_fg_kj) * 1e3,
            liquid_density: Density::new(lerp(r0.rho_l, r1.rho_l)),
            vapor_density: Density::new(rho_v),
            liquid_viscosity: lerp(r0.mu_l_mpa_s, r1.mu_l_mpa_s) * 1e-3,
            vapor_viscosity: mu_v,
            liquid_conductivity: ThermalConductivity::new(lerp(r0.k_l, r1.k_l)),
            surface_tension: lerp(r0.sigma_mn, r1.sigma_mn) * 1e-3,
        })
    }

    /// Slope of the saturation curve dP/dT at `t`, Pa/K, by a centred
    /// finite difference on the Antoine correlation. Used by the sonic
    /// and Clausius–Clapeyron consistency checks.
    ///
    /// # Errors
    ///
    /// Returns an error when `t` is out of the validity range.
    pub fn saturation_slope(&self, t: Celsius) -> Result<f64, MaterialError> {
        // Range-check via saturation().
        let _ = self.saturation(t)?;
        let h = 0.01;
        let p_hi = self.antoine.pressure(t.value() + h).value();
        let p_lo = self.antoine.pressure(t.value() - h).value();
        Ok((p_hi - p_lo) / (2.0 * h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_fluids() -> Vec<WorkingFluid> {
        vec![
            WorkingFluid::water(),
            WorkingFluid::ammonia(),
            WorkingFluid::acetone(),
            WorkingFluid::methanol(),
            WorkingFluid::ethanol(),
        ]
    }

    #[test]
    fn water_boils_at_one_atmosphere() {
        let sat = WorkingFluid::water()
            .saturation(Celsius::new(100.0))
            .unwrap();
        assert!((sat.pressure.kilopascals() - 101.325).abs() < 2.5);
        assert!((sat.latent_heat - 2.257e6).abs() < 1e4);
    }

    #[test]
    fn acetone_boils_near_56c() {
        // Antoine should give 1 atm at ≈ 56.1 °C.
        let f = WorkingFluid::acetone();
        let p56 = f.saturation(Celsius::new(56.1)).unwrap().pressure;
        assert!((p56.kilopascals() - 101.325).abs() < 4.0);
    }

    #[test]
    fn ammonia_is_pressurized_at_room_temperature() {
        let sat = WorkingFluid::ammonia()
            .saturation(Celsius::new(20.0))
            .unwrap();
        // NH₃ saturation at 20 °C ≈ 8.6 bar.
        assert!((sat.pressure.bar() - 8.6).abs() < 0.5);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let err = WorkingFluid::water()
            .saturation(Celsius::new(250.0))
            .unwrap_err();
        assert!(matches!(err, MaterialError::TemperatureOutOfRange { .. }));
    }

    #[test]
    fn properties_are_positive_and_monotone_sensible() {
        for fluid in all_fluids() {
            let lo = fluid.min_temperature().value();
            let hi = fluid.max_temperature().value();
            let mut last_p = 0.0;
            let mut last_sigma = f64::INFINITY;
            let mut last_mu = f64::INFINITY;
            let n = 25;
            for i in 0..=n {
                let t = Celsius::new(lo + (hi - lo) * i as f64 / n as f64);
                let s = fluid.saturation(t).unwrap();
                assert!(s.pressure.value() > last_p, "{}: P monotone", fluid.name());
                assert!(
                    s.surface_tension <= last_sigma + 1e-12,
                    "{}: σ decreasing",
                    fluid.name()
                );
                assert!(
                    s.liquid_viscosity <= last_mu + 1e-12,
                    "{}: µ_l decreasing",
                    fluid.name()
                );
                assert!(s.latent_heat > 1e5, "{}: h_fg", fluid.name());
                assert!(
                    s.vapor_density.value() < s.liquid_density.value(),
                    "{}: ρ_v < ρ_l",
                    fluid.name()
                );
                last_p = s.pressure.value();
                last_sigma = s.surface_tension;
                last_mu = s.liquid_viscosity;
            }
        }
    }

    #[test]
    fn clausius_clapeyron_consistency() {
        // dP/dT ≈ h_fg · ρ_v / T within ~12 % for an ideal-gas vapour far
        // from critical; checks that Antoine and the table agree.
        for fluid in all_fluids() {
            let mid = Celsius::new(
                0.5 * (fluid.min_temperature().value() + fluid.max_temperature().value()),
            );
            let s = fluid.saturation(mid).unwrap();
            let slope = fluid.saturation_slope(mid).unwrap();
            let cc = s.latent_heat * s.vapor_density.value() / mid.kelvin();
            let rel = (slope - cc).abs() / cc;
            assert!(
                rel < 0.15,
                "{}: Antoine vs Clausius-Clapeyron differ by {:.1}%",
                fluid.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn water_has_best_merit_number_at_100c() {
        // Classic heat-pipe ranking: water dominates mid-range fluids.
        let water = WorkingFluid::water()
            .saturation(Celsius::new(100.0))
            .unwrap()
            .merit_number();
        let methanol = WorkingFluid::methanol()
            .saturation(Celsius::new(100.0))
            .unwrap()
            .merit_number();
        assert!(water > 5.0 * methanol);
    }
}
