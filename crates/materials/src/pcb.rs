//! Effective orthotropic conductivity of a PCB copper/dielectric layup.
//!
//! The paper's Level-2 design loop optimises "copper layers, specific
//! drains, thermal wedge lock"; the quantity being tuned is exactly the
//! in-plane effective conductivity computed here.

use aeropack_units::{Length, ThermalConductivity};

use crate::error::MaterialError;
use crate::solid::Material;

/// One layer of a PCB stack: a conductor plane (with fractional coverage)
/// or a dielectric core/prepreg.
#[derive(Debug, Clone, PartialEq)]
pub struct PcbLayer {
    /// Layer thickness.
    pub thickness: Length,
    /// Conductivity of the layer's bulk material.
    pub conductivity: ThermalConductivity,
    /// Fraction of the layer plane actually occupied by that material
    /// (copper coverage); the rest is assumed to be FR-4 resin.
    pub coverage: f64,
}

impl PcbLayer {
    /// A copper plane of the given thickness and areal coverage.
    ///
    /// # Errors
    ///
    /// Returns an error if `coverage` is outside `[0, 1]` or the
    /// thickness is not positive.
    pub fn copper(thickness: Length, coverage: f64) -> Result<Self, MaterialError> {
        if !(0.0..=1.0).contains(&coverage) {
            return Err(MaterialError::InvalidArgument {
                name: "coverage",
                constraint: "must lie in [0, 1]",
                value: coverage,
            });
        }
        if thickness.value() <= 0.0 {
            return Err(MaterialError::InvalidArgument {
                name: "thickness",
                constraint: "must be strictly positive",
                value: thickness.value(),
            });
        }
        Ok(Self {
            thickness,
            conductivity: Material::copper().thermal_conductivity,
            coverage,
        })
    }

    /// Standard 1 oz copper (35 µm) plane.
    ///
    /// # Errors
    ///
    /// Returns an error if `coverage` is outside `[0, 1]`.
    pub fn one_ounce_copper(coverage: f64) -> Result<Self, MaterialError> {
        Self::copper(Length::from_micrometers(35.0), coverage)
    }

    /// An FR-4 dielectric core of the given thickness.
    ///
    /// # Errors
    ///
    /// Returns an error if the thickness is not positive.
    pub fn fr4_core(thickness: Length) -> Result<Self, MaterialError> {
        if thickness.value() <= 0.0 {
            return Err(MaterialError::InvalidArgument {
                name: "thickness",
                constraint: "must be strictly positive",
                value: thickness.value(),
            });
        }
        Ok(Self {
            thickness,
            conductivity: Material::fr4().thermal_conductivity,
            coverage: 1.0,
        })
    }

    /// Effective in-plane conductivity of this layer (rule of mixtures
    /// between the layer material and FR-4 resin).
    fn k_in_plane(&self) -> f64 {
        let k_resin = Material::fr4().thermal_conductivity.value();
        self.coverage * self.conductivity.value() + (1.0 - self.coverage) * k_resin
    }

    /// Effective through-plane conductivity of this layer (parallel paths
    /// through the covered and uncovered fractions).
    fn k_through(&self) -> f64 {
        let k_resin = Material::fr4().thermal_conductivity.value();
        self.coverage * self.conductivity.value() + (1.0 - self.coverage) * k_resin
    }
}

/// A complete PCB stack with effective orthotropic conductivities.
///
/// # Examples
///
/// ```
/// use aeropack_materials::{PcbLaminate, PcbLayer};
/// use aeropack_units::Length;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 1.6 mm 6-layer board with four full ground/power planes.
/// let board = PcbLaminate::symmetric(6, 4, Length::from_millimeters(1.6))?;
/// // In-plane conduction is dominated by copper: tens of W/mK.
/// assert!(board.in_plane_conductivity().value() > 20.0);
/// // Through-plane stays resin-limited: below 1 W/mK.
/// assert!(board.through_plane_conductivity().value() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcbLaminate {
    layers: Vec<PcbLayer>,
}

impl PcbLaminate {
    /// Builds a laminate from an explicit layer stack.
    ///
    /// # Errors
    ///
    /// Returns an error if the stack is empty.
    pub fn new(layers: Vec<PcbLayer>) -> Result<Self, MaterialError> {
        if layers.is_empty() {
            return Err(MaterialError::InvalidArgument {
                name: "layers",
                constraint: "stack must contain at least one layer",
                value: 0.0,
            });
        }
        Ok(Self { layers })
    }

    /// Builds a symmetric board: `copper_layers` planes of 1 oz copper
    /// (full planes for the first `full_planes`, 30 % coverage signal
    /// layers for the rest) separated by equal FR-4 cores filling the
    /// remaining thickness.
    ///
    /// # Errors
    ///
    /// Returns an error if `copper_layers == 0`, `full_planes >
    /// copper_layers`, or the copper alone is thicker than
    /// `total_thickness`.
    pub fn symmetric(
        copper_layers: usize,
        full_planes: usize,
        total_thickness: Length,
    ) -> Result<Self, MaterialError> {
        if copper_layers == 0 {
            return Err(MaterialError::InvalidArgument {
                name: "copper_layers",
                constraint: "must be at least 1",
                value: 0.0,
            });
        }
        if full_planes > copper_layers {
            return Err(MaterialError::InvalidArgument {
                name: "full_planes",
                constraint: "cannot exceed copper_layers",
                value: full_planes as f64,
            });
        }
        let cu_t = Length::from_micrometers(35.0);
        let copper_total = cu_t.value() * copper_layers as f64;
        if copper_total >= total_thickness.value() {
            return Err(MaterialError::InvalidArgument {
                name: "total_thickness",
                constraint: "must exceed the combined copper thickness",
                value: total_thickness.value(),
            });
        }
        let n_cores = copper_layers + 1;
        let core_t = Length::new((total_thickness.value() - copper_total) / n_cores as f64);
        let mut layers = Vec::with_capacity(copper_layers + n_cores);
        layers.push(PcbLayer::fr4_core(core_t)?);
        for i in 0..copper_layers {
            let coverage = if i < full_planes { 0.95 } else { 0.30 };
            layers.push(PcbLayer::copper(cu_t, coverage)?);
            layers.push(PcbLayer::fr4_core(core_t)?);
        }
        Self::new(layers)
    }

    /// Total stack thickness.
    pub fn thickness(&self) -> Length {
        Length::new(self.layers.iter().map(|l| l.thickness.value()).sum())
    }

    /// Effective in-plane conductivity (thickness-weighted arithmetic
    /// mean — layers conduct in parallel).
    pub fn in_plane_conductivity(&self) -> ThermalConductivity {
        let total = self.thickness().value();
        let sum: f64 = self
            .layers
            .iter()
            .map(|l| l.k_in_plane() * l.thickness.value())
            .sum();
        ThermalConductivity::new(sum / total)
    }

    /// Effective through-plane conductivity (thickness-weighted harmonic
    /// mean — layers conduct in series).
    pub fn through_plane_conductivity(&self) -> ThermalConductivity {
        let total = self.thickness().value();
        let sum: f64 = self
            .layers
            .iter()
            .map(|l| l.thickness.value() / l.k_through())
            .sum();
        ThermalConductivity::new(total / sum)
    }

    /// The layer stack.
    pub fn layers(&self) -> &[PcbLayer] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_copper_more_in_plane_conduction() {
        let t = Length::from_millimeters(1.6);
        let two = PcbLaminate::symmetric(2, 2, t).unwrap();
        let six = PcbLaminate::symmetric(6, 6, t).unwrap();
        assert!(
            six.in_plane_conductivity().value() > 2.5 * two.in_plane_conductivity().value(),
            "six planes should carry much more heat in-plane"
        );
    }

    #[test]
    fn through_plane_is_resin_limited() {
        let board = PcbLaminate::symmetric(8, 8, Length::from_millimeters(2.0)).unwrap();
        let k_z = board.through_plane_conductivity().value();
        let k_fr4 = Material::fr4().thermal_conductivity.value();
        assert!(k_z < 3.0 * k_fr4, "through-plane must stay near resin k");
    }

    #[test]
    fn thickness_is_preserved() {
        let t = Length::from_millimeters(1.6);
        let board = PcbLaminate::symmetric(4, 2, t).unwrap();
        assert!((board.thickness().value() - t.value()).abs() < 1e-12);
    }

    #[test]
    fn anisotropy_ratio_is_large() {
        let board = PcbLaminate::symmetric(6, 4, Length::from_millimeters(1.6)).unwrap();
        let ratio =
            board.in_plane_conductivity().value() / board.through_plane_conductivity().value();
        assert!(
            ratio > 30.0,
            "typical PCB anisotropy is O(100): got {ratio}"
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(PcbLayer::one_ounce_copper(1.5).is_err());
        assert!(PcbLayer::fr4_core(Length::ZERO).is_err());
        assert!(PcbLaminate::new(vec![]).is_err());
        assert!(PcbLaminate::symmetric(0, 0, Length::from_millimeters(1.6)).is_err());
        assert!(PcbLaminate::symmetric(2, 3, Length::from_millimeters(1.6)).is_err());
        // 50 layers of copper cannot fit in 1 mm.
        assert!(PcbLaminate::symmetric(50, 50, Length::from_millimeters(1.0)).is_err());
    }

    #[test]
    fn in_plane_bounds() {
        // Effective k must lie between the resin and copper bounds.
        let board = PcbLaminate::symmetric(4, 4, Length::from_millimeters(1.6)).unwrap();
        let k = board.in_plane_conductivity().value();
        assert!(k > Material::fr4().thermal_conductivity.value());
        assert!(k < Material::copper().thermal_conductivity.value());
    }
}
