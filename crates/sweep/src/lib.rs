//! Deterministic parallel scenario sweeps for the aeropack workspace.
//!
//! Every headline result of the reproduction is a *sweep*: the Fig 10
//! ΔT-vs-power curves, the harmonic transmissibility and random-PSD
//! frequency grids, the tilt/altitude ablations. Each point is an
//! independent solve, which makes the grid embarrassingly parallel —
//! but only if parallelism does not perturb the numbers. This crate
//! provides the one runner everything routes through:
//!
//! * [`Sweep::map`] — evaluates a scenario list across worker threads
//!   using [`std::thread::scope`] with **contiguous block
//!   partitioning** (no work stealing, no channels). Scenario `i`
//!   always lands in result slot `i`, each scenario is evaluated by
//!   exactly one deterministic closure call, and results are bitwise
//!   identical at any thread count.
//! * [`Sweep::map_stats`] — the same runner for closures that also
//!   report per-scenario [`ScenarioStats`]; the per-point records are
//!   aggregated into a [`SweepStats`] roll-up (total solver
//!   iterations, accumulated solve time, pattern-cache hits).
//! * [`Sweep::from_env`] — thread-count configuration from the
//!   `AEROPACK_THREADS` environment variable.
//!
//! # Determinism contract
//!
//! The runner never reorders, splits or merges scenario evaluations.
//! Whether results are bitwise identical across thread counts is
//! therefore exactly the closure's property: a closure whose output
//! depends only on its scenario (plus shared read-only state) is
//! reproducible by construction. All aeropack consumers are written
//! that way, and the workspace's tier-1 determinism tests pin it.
//!
//! # Example
//!
//! ```
//! use aeropack_sweep::Sweep;
//!
//! let powers: Vec<f64> = (0..32).map(|i| 10.0 + i as f64 * 5.0).collect();
//! let squares = Sweep::new(4).map(&powers, |&p| p * p);
//! assert_eq!(squares[3], powers[3] * powers[3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use aeropack_solver::SolverStats;

/// Environment variable read by [`Sweep::from_env`] to pick the worker
/// thread count.
pub const THREADS_ENV: &str = "AEROPACK_THREADS";

/// Default minimum number of scenarios each worker must receive before
/// the runner spawns threads at all (see [`Sweep::with_grain`]).
/// Scenario sweeps in this workspace are dominated by expensive solves,
/// so a low default keeps genuine parallelism; cheap closed-form grids
/// (the harmonic transfer sum) raise it via [`Sweep::grain_hint`].
pub const DEFAULT_GRAIN: usize = 2;

/// A deterministic parallel runner for scenario grids.
///
/// Construction picks the worker count; [`Sweep::map`] /
/// [`Sweep::map_stats`] then evaluate any number of scenario lists with
/// it. The runner is trivially `Copy` — it owns no threads; workers are
/// scoped to each call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sweep {
    threads: usize,
    /// Minimum scenarios per worker before threads are spawned;
    /// `None` means [`DEFAULT_GRAIN`] and lets callers hint.
    grain: Option<usize>,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Per-call execution metrics collected by the runner itself: how many
/// workers actually ran and how long each contiguous block took.
struct RunMetrics {
    workers: usize,
    block_times: Vec<Duration>,
}

impl Sweep {
    /// A runner with an explicit worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            grain: None,
        }
    }

    /// A serial runner — the reference the determinism tests compare
    /// against.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Reads the worker count from `AEROPACK_THREADS`, falling back to
    /// the machine's available parallelism when the variable is unset
    /// or unparseable (see [`Sweep::from_env_value`] for the exact
    /// parsing contract).
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var(THREADS_ENV).ok().as_deref())
    }

    /// The pure parsing half of [`Sweep::from_env`], testable without
    /// mutating the process environment: `Some("4")` (whitespace
    /// tolerated) selects 4 workers; `None`, `Some("0")` and anything
    /// unparseable (`"garbage"`, `""`, `"-2"`) fall back to the
    /// machine's available parallelism.
    pub fn from_env_value(value: Option<&str>) -> Self {
        let threads = value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::new(threads)
    }

    /// The configured worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pins the minimum number of scenarios per worker (clamped to
    /// ≥ 1). Below `grain` scenarios per worker the runner evaluates
    /// serially on the calling thread instead of spawning — thread
    /// spawn/join overhead otherwise dominates tiny grids (the checked
    /// benchmark history shows the 257-point harmonic sweep at 0.33×
    /// with 2 threads). An explicit grain overrides any later
    /// [`Sweep::grain_hint`], which is how the determinism tests force
    /// genuine parallelism with `with_grain(1)`.
    #[must_use]
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = Some(grain.max(1));
        self
    }

    /// Suggests a grain for cheap per-scenario workloads, applied only
    /// when no explicit [`Sweep::with_grain`] was set. Library code on
    /// closed-form paths (e.g. the harmonic transfer sum) hints large
    /// grains without clobbering caller overrides.
    #[must_use]
    pub fn grain_hint(mut self, grain: usize) -> Self {
        if self.grain.is_none() {
            self.grain = Some(grain.max(1));
        }
        self
    }

    /// The effective minimum scenarios per worker.
    pub fn grain(&self) -> usize {
        self.grain.unwrap_or(DEFAULT_GRAIN)
    }

    /// How many workers a sweep over `n` scenarios will actually use:
    /// the configured thread count, capped so every worker gets at
    /// least [`Sweep::grain`] scenarios. `1` means the serial fast
    /// path (no threads spawned).
    pub fn effective_workers(&self, n: usize) -> usize {
        self.threads.min((n / self.grain()).max(1))
    }

    /// Carves `len` scenarios into `shards` contiguous blocks for
    /// multi-process sharding: block boundaries are a pure function of
    /// `(len, shards)` (the first `len % shards` blocks get one extra
    /// scenario), so every participant — the coordinator and each
    /// worker process — derives the same assignment independently.
    /// Empty blocks are omitted, so fewer than `shards` ranges come
    /// back when `len < shards`.
    pub fn shard_blocks(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
        let shards = shards.max(1);
        let base = len / shards;
        let rem = len % shards;
        let mut blocks = Vec::with_capacity(shards.min(len));
        let mut start = 0;
        for i in 0..shards {
            let size = base + usize::from(i < rem);
            if size == 0 {
                break;
            }
            blocks.push(start..start + size);
            start += size;
        }
        blocks
    }

    /// Evaluates `f` over every scenario, in parallel, preserving input
    /// order in the returned vector: `out[i] = f(&scenarios[i])`.
    ///
    /// Scenarios are partitioned into contiguous blocks, one per
    /// worker, so the assignment of scenario to thread is a pure
    /// function of `(len, threads)` — deterministic, no work stealing.
    /// Each worker reuses whatever state `f` builds internally only
    /// through `f`'s own captures; give workers reusable scratch (e.g.
    /// a [`PcgWorkspace`](aeropack_solver::PcgWorkspace)) by keeping it
    /// inside `f` behind a `thread_local!` or by using
    /// [`Sweep::map_with`].
    pub fn map<S, R, F>(&self, scenarios: &[S], f: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        self.map_with(scenarios, || (), |(), s| f(s))
    }

    /// [`Sweep::map`] with per-worker state: `init` runs once on each
    /// worker thread and the resulting scratch value is passed by
    /// mutable reference to every scenario that worker evaluates. This
    /// is how sweeps reuse solver workspaces without cross-thread
    /// sharing — each worker warms its own buffers once.
    pub fn map_with<S, R, W, I, F>(&self, scenarios: &[S], init: I, f: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &S) -> R + Sync,
    {
        self.run_with_metrics(scenarios, init, f).0
    }

    /// The one execution path behind [`Sweep::map`] / [`Sweep::map_with`]
    /// / [`Sweep::map_stats`]: evaluates the grid and measures each
    /// worker's block wall time. Timing and observability events never
    /// influence scheduling or results — the block partition is still a
    /// pure function of `(len, workers)`.
    fn run_with_metrics<S, R, W, I, F>(
        &self,
        scenarios: &[S],
        init: I,
        f: F,
    ) -> (Vec<R>, RunMetrics)
    where
        S: Sync,
        R: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &S) -> R + Sync,
    {
        let n = scenarios.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let workers = self.effective_workers(n);
        let _sweep_span = aeropack_obs::span!("sweep.map", scenarios = n, workers = workers);
        aeropack_obs::counter!("sweep.maps");
        aeropack_obs::counter!("sweep.scenarios", n);
        let mut block_times;
        if workers <= 1 {
            if self.threads > 1 {
                aeropack_obs::counter!("sweep.serial_fastpath");
            }
            let start = Instant::now();
            let mut scratch = init();
            for (slot, s) in out.iter_mut().zip(scenarios) {
                *slot = Some(f(&mut scratch, s));
            }
            block_times = vec![start.elapsed()];
        } else {
            // Captured once on the dispatching thread so workers record
            // into the same (possibly test-scoped) registry.
            let obs_sink = aeropack_obs::propagation_handle();
            let chunk = n.div_ceil(workers);
            block_times = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                let mut rest = out.as_mut_slice();
                let mut start = 0;
                let mut block_idx = 0usize;
                while start < n {
                    let end = (start + chunk).min(n);
                    let (block, tail) = rest.split_at_mut(end - start);
                    rest = tail;
                    let scenarios = &scenarios[start..end];
                    let init = &init;
                    let f = &f;
                    let obs_sink = obs_sink.clone();
                    handles.push(scope.spawn(move || {
                        let _sink = obs_sink.map(aeropack_obs::attach);
                        let _span = aeropack_obs::span!(
                            "sweep.worker",
                            block = block_idx,
                            scenarios = block.len()
                        );
                        let wall = Instant::now();
                        let mut scratch = init();
                        for (slot, s) in block.iter_mut().zip(scenarios) {
                            *slot = Some(f(&mut scratch, s));
                        }
                        wall.elapsed()
                    }));
                    start = end;
                    block_idx += 1;
                }
                for handle in handles {
                    block_times.push(handle.join().expect("sweep worker panicked"));
                }
            });
            for t in &block_times {
                aeropack_obs::histogram!("sweep.block_seconds", t.as_secs_f64());
            }
        }
        let results = out
            .into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect();
        (
            results,
            RunMetrics {
                workers,
                block_times,
            },
        )
    }

    /// Evaluates scenarios that report per-point [`ScenarioStats`]
    /// alongside their result, and rolls the records up into a
    /// [`SweepStats`]. Ordering and determinism are exactly as in
    /// [`Sweep::map`].
    pub fn map_stats<S, R, F>(&self, scenarios: &[S], f: F) -> (Vec<R>, SweepStats)
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> (R, ScenarioStats) + Sync,
    {
        self.map_stats_with(scenarios, || (), |(), s| f(s))
    }

    /// [`Sweep::map_stats`] with per-worker state, exactly as
    /// [`Sweep::map_with`] extends [`Sweep::map`]: `init` runs once per
    /// worker thread and its scratch value is threaded through every
    /// scenario that worker evaluates. This is how solver-heavy sweeps
    /// (the FV power grids) give each worker one warm model clone — one
    /// symbolic assembly, one sized `PcgWorkspace`, one IC(0)
    /// factorization — instead of paying the setup per scenario.
    pub fn map_stats_with<S, R, W, I, F>(
        &self,
        scenarios: &[S],
        init: I,
        f: F,
    ) -> (Vec<R>, SweepStats)
    where
        S: Sync,
        R: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &S) -> (R, ScenarioStats) + Sync,
    {
        let (pairs, metrics) = self.run_with_metrics(scenarios, init, f);
        let mut stats = SweepStats::new(self.threads);
        stats.engaged_workers = metrics.workers;
        stats.max_block_time = metrics
            .block_times
            .iter()
            .copied()
            .max()
            .unwrap_or_default();
        stats.min_block_time = metrics
            .block_times
            .iter()
            .copied()
            .min()
            .unwrap_or_default();
        let mut out = Vec::with_capacity(pairs.len());
        for (r, s) in pairs {
            stats.absorb(&s);
            out.push(r);
        }
        (out, stats)
    }
}

/// What one scenario cost: solver effort plus cache behaviour,
/// reported by the closure under [`Sweep::map_stats`] and rolled up
/// into [`SweepStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioStats {
    /// Linear-solver iterations spent on this scenario (0 for direct
    /// or closed-form scenarios).
    pub iterations: usize,
    /// Wall-clock time of the scenario's solves.
    pub solve_time: Duration,
    /// Symbolic-pattern cache hits (assemblies that skipped the CSR
    /// sort/merge).
    pub cache_hits: usize,
    /// Cache misses (full symbolic assemblies).
    pub cache_misses: usize,
    /// Whether every solve in the scenario converged.
    pub converged: bool,
}

impl ScenarioStats {
    /// A record for a scenario that needed no linear solve.
    pub fn trivial() -> Self {
        Self {
            converged: true,
            ..Self::default()
        }
    }

    /// Builds a record from one [`SolverStats`].
    pub fn from_solver(stats: &SolverStats) -> Self {
        Self {
            iterations: stats.iterations,
            solve_time: stats.wall_time,
            cache_hits: 0,
            cache_misses: 0,
            converged: stats.converged(),
        }
    }

    /// Folds another solve into this scenario's record.
    pub fn add_solve(&mut self, stats: &SolverStats) {
        self.iterations += stats.iterations;
        self.solve_time += stats.wall_time;
        self.converged &= stats.converged();
    }

    /// Records pattern-cache behaviour for this scenario.
    #[must_use]
    pub fn with_cache(mut self, hits: usize, misses: usize) -> Self {
        self.cache_hits = hits;
        self.cache_misses = misses;
        self
    }
}

/// The roll-up over a whole sweep: totals of every per-scenario
/// [`ScenarioStats`], ready for benchmark tables and JSON emission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Total linear-solver iterations across all scenarios.
    pub total_iterations: usize,
    /// Accumulated solver wall time (sum over scenarios — exceeds the
    /// sweep's elapsed wall time when workers overlap).
    pub total_solve_time: Duration,
    /// Total symbolic-pattern cache hits.
    pub cache_hits: usize,
    /// Total symbolic assemblies (cache misses).
    pub cache_misses: usize,
    /// Scenarios whose solves all converged.
    pub converged: usize,
    /// Workers that actually ran (1 when the grain-based serial fast
    /// path engaged; `threads` otherwise, unless the grid was small).
    pub engaged_workers: usize,
    /// Wall time of the slowest worker block — with
    /// [`SweepStats::min_block_time`], the sweep's load-imbalance
    /// signal.
    pub max_block_time: Duration,
    /// Wall time of the fastest worker block.
    pub min_block_time: Duration,
}

impl SweepStats {
    /// An empty roll-up for a sweep on `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Folds one scenario's record into the roll-up.
    pub fn absorb(&mut self, s: &ScenarioStats) {
        self.scenarios += 1;
        self.total_iterations += s.iterations;
        self.total_solve_time += s.solve_time;
        self.cache_hits += s.cache_hits;
        self.cache_misses += s.cache_misses;
        self.converged += usize::from(s.converged);
    }

    /// Whether every scenario converged.
    pub fn all_converged(&self) -> bool {
        self.converged == self.scenarios
    }

    /// Mean solver iterations per scenario.
    pub fn mean_iterations(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.scenarios as f64
        }
    }

    /// Whether more than one worker actually ran (false when the
    /// grain-based serial fast path engaged).
    pub fn parallel_engaged(&self) -> bool {
        self.engaged_workers > 1
    }

    /// Slowest-to-fastest worker block wall-time ratio (1.0 for a
    /// perfectly balanced or serial sweep; 0.0 before any run).
    pub fn block_imbalance(&self) -> f64 {
        let min = self.min_block_time.as_secs_f64();
        let max = self.max_block_time.as_secs_f64();
        if min > 0.0 {
            max / min
        } else if max > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

impl fmt::Display for SweepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios on {} thread(s): {} iterations ({:.1}/scenario), {:.2} ms solve time, cache {}/{} hits, {} converged",
            self.scenarios,
            self.threads,
            self.total_iterations,
            self.mean_iterations(),
            self.total_solve_time.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.converged,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_blocks_cover_exactly_and_deterministically() {
        // Even split.
        assert_eq!(Sweep::shard_blocks(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        // Remainder goes to the leading blocks.
        assert_eq!(Sweep::shard_blocks(10, 3), vec![0..4, 4..7, 7..10]);
        // Fewer scenarios than shards: empty blocks are omitted.
        assert_eq!(Sweep::shard_blocks(2, 5), vec![0..1, 1..2]);
        // shards = 0 clamps to one block; empty input yields none.
        assert_eq!(Sweep::shard_blocks(7, 0), vec![0..7]);
        assert!(Sweep::shard_blocks(0, 4).is_empty());
        // Blocks tile 0..len contiguously for arbitrary sizes.
        for len in [1usize, 5, 17, 64] {
            for shards in [1usize, 2, 3, 8, 100] {
                let blocks = Sweep::shard_blocks(len, shards);
                let mut expect = 0;
                for b in &blocks {
                    assert_eq!(b.start, expect);
                    assert!(b.end > b.start);
                    expect = b.end;
                }
                assert_eq!(expect, len, "len={len} shards={shards}");
            }
        }
    }

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let xs: Vec<usize> = (0..103).collect();
        let serial = Sweep::serial().map(&xs, |&x| x * x + 1);
        for threads in [2, 3, 4, 8, 16] {
            let par = Sweep::new(threads).map(&xs, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(Sweep::new(4).map(&empty, |&x| x).is_empty());
        assert_eq!(Sweep::new(8).map(&[5u32], |&x| x + 1), vec![6]);
        // More threads than scenarios.
        assert_eq!(Sweep::new(64).map(&[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn map_with_gives_each_worker_private_scratch() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let out = Sweep::new(4).map_with(&xs, Vec::<f64>::new, |scratch, &x| {
            scratch.push(x); // private: no cross-worker interference
            x * 2.0 + scratch.len() as f64 * 0.0
        });
        let reference: Vec<f64> = xs.iter().map(|&x| x * 2.0).collect();
        assert_eq!(out, reference);
    }

    #[test]
    fn map_stats_rolls_up() {
        let xs: Vec<usize> = (0..10).collect();
        let (out, stats) = Sweep::new(3).map_stats(&xs, |&x| {
            let s = ScenarioStats {
                iterations: x,
                solve_time: Duration::from_micros(10),
                cache_hits: usize::from(x > 0),
                cache_misses: usize::from(x == 0),
                converged: true,
            };
            (x * 10, s)
        });
        assert_eq!(out[7], 70);
        assert_eq!(stats.scenarios, 10);
        assert_eq!(stats.total_iterations, 45);
        assert_eq!(stats.cache_hits, 9);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.all_converged());
        assert_eq!(stats.threads, 3);
        assert!((stats.mean_iterations() - 4.5).abs() < 1e-12);
        assert!(stats.to_string().contains("10 scenarios"));
    }

    #[test]
    fn map_stats_with_threads_worker_scratch_through_stats() {
        let xs: Vec<usize> = (0..20).collect();
        let (out, stats) = Sweep::new(4).with_grain(1).map_stats_with(
            &xs,
            || 0usize,
            |count, &x| {
                *count += 1; // private per-worker tally
                let s = ScenarioStats {
                    // Always 1 per scenario, but routed through the
                    // worker-local counter to prove the scratch is live.
                    iterations: usize::from(*count > 0),
                    converged: true,
                    ..ScenarioStats::default()
                };
                (x * 3, s)
            },
        );
        let reference: Vec<usize> = xs.iter().map(|&x| x * 3).collect();
        assert_eq!(out, reference);
        assert_eq!(stats.scenarios, 20);
        assert_eq!(stats.total_iterations, 20);
        assert!(stats.all_converged());
        assert_eq!(stats.engaged_workers, 4);
    }

    #[test]
    fn from_env_parses_thread_count() {
        // Avoid mutating the process environment (unsafe in newer
        // toolchains and racy under the parallel test runner): exercise
        // the fallback path plus the explicit constructor.
        assert!(Sweep::from_env().threads() >= 1);
        assert_eq!(Sweep::new(0).threads(), 1);
        assert_eq!(Sweep::new(6).threads(), 6);
    }

    #[test]
    fn serial_fastpath_engages_below_grain() {
        let xs: Vec<usize> = (0..8).collect();
        let sweep = Sweep::new(4).with_grain(100);
        assert_eq!(sweep.effective_workers(xs.len()), 1);
        let (out, stats) = sweep.map_stats(&xs, |&x| (x, ScenarioStats::trivial()));
        assert_eq!(out, xs);
        assert_eq!(stats.engaged_workers, 1);
        assert!(!stats.parallel_engaged());
        // An explicit grain of 1 forces genuine parallelism back on and
        // wins over any later hint; a hint fills in only when unset.
        let forced = Sweep::new(4).with_grain(1);
        assert_eq!(forced.effective_workers(xs.len()), 4);
        assert_eq!(forced.grain_hint(64).grain(), 1);
        assert_eq!(Sweep::new(4).grain_hint(64).grain(), 64);
        assert_eq!(Sweep::new(4).grain(), DEFAULT_GRAIN);
    }

    #[test]
    fn map_stats_records_block_metrics() {
        let xs: Vec<usize> = (0..12).collect();
        let (_, stats) = Sweep::new(3)
            .with_grain(1)
            .map_stats(&xs, |&x| (x, ScenarioStats::trivial()));
        assert_eq!(stats.engaged_workers, 3);
        assert!(stats.parallel_engaged());
        assert!(stats.max_block_time >= stats.min_block_time);
    }

    #[test]
    fn obs_sees_sweep_events_from_workers() {
        let reg = std::sync::Arc::new(aeropack_obs::Registry::new());
        let _g = aeropack_obs::scoped(reg.clone());
        let xs: Vec<usize> = (0..9).collect();
        let _ = Sweep::new(3).with_grain(1).map(&xs, |&x| x);
        assert_eq!(reg.counter("sweep.maps"), 1);
        assert_eq!(reg.counter("sweep.scenarios"), 9);
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path.starts_with("sweep.map{")));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path.starts_with("sweep.worker{")));
        // The serial fast path is visible as a counter, not a span.
        let _ = Sweep::new(4).with_grain(100).map(&xs, |&x| x);
        assert_eq!(reg.counter("sweep.serial_fastpath"), 1);
    }

    #[test]
    fn scenario_stats_folds_solver_stats() {
        use aeropack_solver::{CsrMatrix, SolverConfig};
        let a = CsrMatrix::from_row_fn(8, 1, |i, row| row.push((i, 2.0)));
        let sol = aeropack_solver::solve_sparse(&a, &[1.0; 8], &SolverConfig::new()).unwrap();
        let mut s = ScenarioStats::from_solver(&sol.stats);
        assert!(s.converged);
        s.add_solve(&sol.stats);
        assert_eq!(s.iterations, 2 * sol.stats.iterations);
        let s = s.with_cache(3, 1);
        assert_eq!((s.cache_hits, s.cache_misses), (3, 1));
    }
}
