//! `aeropack` — avionics packaging thermal/mechanical co-design toolkit.
//!
//! This façade crate re-exports the whole workspace under one roof:
//!
//! * [`units`] — strongly-typed physical quantities.
//! * [`materials`] — structural materials, air and two-phase working fluids.
//! * [`fem`] — structural finite elements: modal, harmonic and random
//!   vibration analysis.
//! * [`thermal`] — finite-volume conduction, resistive networks and
//!   convection correlations.
//! * [`twophase`] — heat pipes, loop heat pipes and thermosyphons.
//! * [`tim`] — thermal interface materials and the virtual ASTM D5470
//!   tester.
//! * [`envqual`] — DO-160 environmental qualification and reliability.
//! * [`design`] — the co-design framework tying it all together
//!   (three-level thermal analysis, cooling selection, the SEB model).
//!
//! It reproduces the system described in *"Integration, cooling and
//! packaging issues for aerospace equipments"* (C. Sarno, C. Tantolin,
//! DATE 2010). See `DESIGN.md` for the full inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use aeropack::units::{Celsius, Power};
//! use aeropack::design::{CoolingMode, CoolingSelector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let selector = CoolingSelector::default();
//! let choice = selector.select(Power::new(60.0), Celsius::new(55.0))?;
//! assert_ne!(choice.mode, CoolingMode::FreeConvection);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use aeropack_core as design;
pub use aeropack_envqual as envqual;
pub use aeropack_fem as fem;
pub use aeropack_materials as materials;
pub use aeropack_thermal as thermal;
pub use aeropack_tim as tim;
pub use aeropack_twophase as twophase;
pub use aeropack_units as units;
