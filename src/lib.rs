//! `aeropack` — avionics packaging thermal/mechanical co-design toolkit.
//!
//! This façade crate re-exports the whole workspace under one roof:
//!
//! * [`units`] — strongly-typed physical quantities.
//! * [`materials`] — structural materials, air and two-phase working fluids.
//! * [`fem`] — structural finite elements: modal, harmonic and random
//!   vibration analysis.
//! * [`thermal`] — finite-volume conduction, resistive networks and
//!   convection correlations.
//! * [`twophase`] — heat pipes, loop heat pipes and thermosyphons.
//! * [`tim`] — thermal interface materials and the virtual ASTM D5470
//!   tester.
//! * [`envqual`] — DO-160 environmental qualification and reliability.
//! * [`solver`] — the shared sparse/dense linear solver backend
//!   (CSR + threaded SpMV, PCG with Jacobi/SSOR, solve statistics).
//! * [`sweep`] — the deterministic parallel scenario-sweep engine
//!   (order-preserving thread-scoped runner, `AEROPACK_THREADS`
//!   configuration, per-sweep solver-stats roll-ups).
//! * [`obs`] — the observability layer: spans, counters, log-bucketed
//!   histograms and JSON run reports (`AEROPACK_OBS=1`), with a
//!   zero-cost disabled mode.
//! * [`design`] — the co-design framework tying it all together
//!   (three-level thermal analysis, cooling selection, the SEB model).
//! * [`mission`] — mission-profile transient analysis: box/plate view
//!   factors and a Gebhart radiosity network, ISA/orbit environment
//!   models expressed as piecewise [`MissionProfile`](mission::MissionProfile)s,
//!   and the adaptive θ-scheme transient driver with warm-started
//!   solves and bit-exact checkpointed trajectories.
//! * [`verify`] — the verification substrate: property testing with
//!   shrinking, MMS convergence studies, golden-snapshot gating.
//! * [`optimize`] — deterministic multi-objective design search:
//!   NSGA-II over the cooling-topology × packaging-parameter design
//!   space, evaluated through the [`sweep`] engine with bit-identical
//!   Pareto fronts at any thread count.
//! * [`serve`] — the batched analysis service: a worker pool behind a
//!   bounded priority/deadline queue with request coalescing and a
//!   content-addressed result cache, fronted by the unified
//!   [`AnalysisRequest`](serve::AnalysisRequest) API (in-process
//!   [`Client`](serve::Client) or line-delimited JSON over TCP).
//!
//! Most applications can simply `use aeropack::prelude::*;`.
//!
//! It reproduces the system described in *"Integration, cooling and
//! packaging issues for aerospace equipments"* (C. Sarno, C. Tantolin,
//! DATE 2010). See `DESIGN.md` for the full inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use aeropack::units::{Celsius, Power};
//! use aeropack::design::{CoolingMode, CoolingSelector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let selector = CoolingSelector::default();
//! let choice = selector.select(Power::new(60.0), Celsius::new(55.0))?;
//! assert_ne!(choice.mode, CoolingMode::FreeConvection);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use aeropack_core as design;
pub use aeropack_envqual as envqual;
pub use aeropack_fem as fem;
pub use aeropack_materials as materials;
pub use aeropack_mission as mission;
pub use aeropack_obs as obs;
pub use aeropack_optimize as optimize;
pub use aeropack_serve as serve;
pub use aeropack_solver as solver;
pub use aeropack_sweep as sweep;
pub use aeropack_thermal as thermal;
pub use aeropack_tim as tim;
pub use aeropack_twophase as twophase;
pub use aeropack_units as units;
pub use aeropack_verify as verify;

/// The workspace-unified error type (stable wire codes, `From`
/// conversions from every per-crate error).
pub use aeropack_serve::Error;

/// The most commonly used names from across the workspace: every
/// quantity newtype, the solver configuration and statistics types, and
/// the design-workflow entry points.
///
/// The thermal network's solution type is re-exported as
/// [`NetworkSolution`](prelude::NetworkSolution) so the solver's
/// [`Solution`](prelude::Solution) (vector + statistics) keeps the
/// plain name.
pub mod prelude {
    pub use aeropack_units::{
        AccelPsd, Acceleration, Area, AreaResistance, Celsius, Density, Frequency, HeatFlux,
        HeatTransferCoeff, Length, Mass, MassFlowRate, Power, PowerDensity, Pressure, SpecificHeat,
        SplitMix64, Stress, TempDelta, TempRate, ThermalConductance, ThermalConductivity,
        ThermalResistance, Velocity, Volume,
    };

    pub use aeropack_materials::{air_at_sea_level, AirState, Material, WorkingFluid};

    pub use aeropack_solver::{
        Method, PcgWorkspace, Precond, Solution, SolverConfig, SolverError, SolverStats,
    };

    pub use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};

    pub use aeropack_fem::{
        modal, random_response, Dof, FemError, HarmonicResponse, ModalResult, Model, PlateMesh,
        PlateProperties, PsdCurve, Sdof,
    };

    pub use aeropack_thermal::{
        solve_rack_flow, ChannelImpedance, Face, FaceBc, FanCurve, FieldSummary, FlowSolution,
        FvField, FvGrid, FvModel, Network, NodeId, Solution as NetworkSolution, ThermalError,
        TransientStepper,
    };

    pub use aeropack_twophase::{HeatPipe, LoopHeatPipe, Thermosyphon, VaporChamber};

    pub use aeropack_tim::{
        lewis_nielsen, loading_for_target, D5470Tester, FillerShape, HncSurface, TimJoint,
    };

    pub use aeropack_envqual::{
        acceleration_test, assess_fatigue, ComponentStyle, Do160Curve, Environment,
        QualificationReport, ReliabilityModel, SolderAttachment, TestOutcome, ThermalCycleProfile,
    };

    pub use aeropack_core::{
        analyze_module, level1, level3, predict_board_temperature, representative_board,
        run_design, CoolingMode, CoolingSelector, DesignError, DesignReport, DesignSpec, Equipment,
        HotSpotStudy, Level2Model, Level3Report, Module, ModuleGeometry, Pcb, SeatStructure,
        SebModel,
    };

    pub use aeropack_mission::{
        sweep_missions, AdaptiveConfig, BoundaryState, Checkpoint, MissionConfig, MissionDriver,
        MissionError, MissionPhase, MissionProfile, MissionSummary, Orbit, RadiatingFace, Scheme,
        StepControl, ViewFactors,
    };

    pub use aeropack_serve::{
        AnalysisRequest, AnalysisResponse, BoardSpec, Client, CoolingModeSpec,
        Error as AeropackError, FemPlateSpec, MissionSpec, OptimizeSpec, PlateSpec, Priority,
        SchemeKind, SeatKind, SebSpec, ServeConfig, Service, Ticket, TransientSpec, Workload,
        Workspace,
    };

    pub use aeropack_optimize::{
        DesignSpace, EvalContext, Genome, Objectives, OptimizeResult, Optimizer, OptimizerConfig,
        ParetoFront, ParetoPoint, Topology,
    };
}
