//! NANOPACK-style TIM trade study: design a filled adhesive for a target
//! conductivity, squeeze it in a joint, machine HNC channels into the
//! mating surface, and verify the result on the virtual ASTM D5470
//! tester.
//!
//! ```bash
//! cargo run --release --example tim_selection
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epoxy = Material::epoxy().thermal_conductivity;
    let silver = Material::silver().thermal_conductivity;

    // 1. Formulate: how much silver flake does a 6 W/m·K adhesive need?
    let target = ThermalConductivity::new(6.0);
    let loading = loading_for_target(epoxy, silver, target, FillerShape::Flake)?;
    let achieved = lewis_nielsen(epoxy, silver, loading, FillerShape::Flake)?;
    println!(
        "formulation: {:.0} vol% silver flakes in epoxy → k = {achieved:.2}",
        loading * 100.0
    );

    // 2. Build the joint and sweep assembly pressure.
    let joint = TimJoint::nanopack_flake_adhesive()?;
    println!("joint resistance vs assembly pressure (flat surfaces):");
    for kpa in [50.0, 150.0, 300.0, 600.0] {
        let p = Pressure::from_kilopascals(kpa);
        let blt = joint.bond_line(p)?;
        let r = joint.area_resistance(p)?;
        println!(
            "  {kpa:>5.0} kPa: BLT {:.1} µm, R {:.2} K·mm²/W",
            blt.micrometers(),
            r.kelvin_mm2_per_watt()
        );
    }

    // 3. Machine HNC channels into one surface.
    let hnc = HncSurface::nanopack_demo()?;
    let p = Pressure::from_kilopascals(300.0);
    let (r_hnc, blt_hnc) =
        joint.area_resistance_with_hnc(p, &hnc, Length::from_millimeters(5.0))?;
    println!(
        "with HNC surface at 300 kPa: BLT {:.1} µm, R {:.2} K·mm²/W",
        blt_hnc.micrometers(),
        r_hnc.kelvin_mm2_per_watt()
    );

    // 4. Verify on the virtual D5470 instrument.
    let tester = D5470Tester::standard()?;
    let measurement = tester.measure_averaged(&joint, p, 25, 2024)?;
    let truth = joint.area_resistance(p)?;
    println!(
        "D5470 verification: measured {:.2} K·mm²/W (true {:.2}), BLT {:.1} µm",
        measurement.area_resistance.kelvin_mm2_per_watt(),
        truth.kelvin_mm2_per_watt(),
        measurement.bond_line.micrometers()
    );
    println!(
        "NANOPACK objective (R < 5 K·mm²/W, BLT < 20 µm): {}",
        if measurement.area_resistance.kelvin_mm2_per_watt() < 5.0 && blt_hnc.micrometers() < 20.0 {
            "MET"
        } else {
            "NOT MET"
        }
    );
    Ok(())
}
