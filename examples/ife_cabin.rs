//! The COSEE business case: a cabin full of In-Flight Entertainment
//! seat boxes (paper Fig 7). Fans per seat would cost power, noise and
//! reliability across hundreds of seats; the passive HP+LHP solution
//! removes them entirely.
//!
//! ```bash
//! cargo run --release --example ife_cabin
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seats = 220; // a single-aisle long-haul cabin
    let seb_power = Power::new(40.0);
    let cabin = Celsius::new(25.0);
    let board_limit = Celsius::new(85.0);

    // Option A: fan-cooled SEB. The fan buys a strong film coefficient
    // but costs input power, acoustic budget and a wear-out part.
    let fan_power_w = 2.5;
    let fan_mtbf_h = 60_000.0; // sleeve-bearing fan + clogged-filter derating

    // Option B: the COSEE passive SEB.
    let passive = SebModel::cosee(SeatStructure::aluminum(), true, 0.0)?;
    let state = passive.solve(seb_power, cabin)?;
    let capability =
        passive.capability(TempDelta::new(board_limit.value() - cabin.value()), cabin)?;

    println!("IFE cabin study — {seats} seats × {seb_power} SEB at {cabin}:");
    println!();
    println!("passive (COSEE HP + LHP):");
    println!(
        "  PCB at {:.1} (limit {board_limit}), capability {:.0} W, no moving parts",
        state.pcb_temperature,
        capability.value()
    );
    println!(
        "  {:.0} W carried into the seat frames, {:.0} W convected from the boxes",
        state.lhp_power.value() * seats as f64,
        state.box_power.value() * seats as f64
    );
    println!();
    println!("fan alternative, fleet level:");
    println!(
        "  fan electrical load: {:.0} W continuous across the cabin",
        fan_power_w * seats as f64
    );
    // Fleet reliability: fans in series with the electronics.
    let electronics = ReliabilityModel::typical_avionics_module(
        Environment::AirborneInhabited,
        Celsius::new(70.0),
    )?;
    let lambda_electronics = electronics.failure_rate_per_hour();
    let lambda_fan = 1.0 / fan_mtbf_h;
    let mtbf_with_fan = 1.0 / (lambda_electronics + lambda_fan);
    let mtbf_passive = electronics.mtbf_hours();
    println!(
        "  per-seat MTBF with fan: {:.0} h vs passive {:.0} h ({:.0}% better without)",
        mtbf_with_fan,
        mtbf_passive,
        (mtbf_passive / mtbf_with_fan - 1.0) * 100.0
    );
    let flights_per_failure_fan = mtbf_with_fan / (seats as f64 * 10.0);
    let flights_per_failure_passive = mtbf_passive / (seats as f64 * 10.0);
    println!(
        "  cabin-level: one IFE failure every {flights_per_failure_fan:.0} ten-hour flights \
         with fans, every {flights_per_failure_passive:.0} without"
    );
    println!();
    println!("— the drawbacks the paper lists for fans (\"extra cost, energy consumption");
    println!("when multiplied by the seat number, reliability and maintenance concern\")");
    println!("made quantitative.");
    Ok(())
}
