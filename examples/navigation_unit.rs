//! The Ariane Navigation Unit story (paper Fig 2/3): place the power
//! supply board's first mode near the 500 Hz slot of the frequency
//! allocation plan, then check it survives the random-vibration and
//! acceleration environment of a launch.
//!
//! ```bash
//! cargo run --release --example navigation_unit
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Candidate board designs for the power supply.
    println!("tuning the power-supply board toward the 500 Hz allocation:");
    let mut chosen = None;
    for (label, thickness_mm, rib) in [
        ("1.6 mm board", 1.6, false),
        ("2.4 mm board", 2.4, false),
        ("2.4 mm + centre rib", 2.4, true),
    ] {
        let props = PlateProperties::from_material(
            &Material::fr4(),
            Length::from_millimeters(thickness_mm),
        )?
        .with_smeared_mass(4.0);
        let mut mesh = PlateMesh::rectangular(0.14, 0.09, 8, 5, &props)?;
        mesh.pin_all_edges()?;
        if rib {
            for j in 0..=mesh.ny() {
                let n = mesh.node_at(4, j)?;
                mesh.model.add_spring_to_ground(n, Dof::W, 2.0e6)?;
            }
        }
        let modes = modal(&mesh.model, 3)?;
        let f1 = modes.fundamental();
        println!("  {label:<22} first mode {f1:.0}");
        if (f1.value() - 500.0).abs() / 500.0 < 0.2 {
            chosen = Some((mesh, modes));
        }
    }
    let (mesh, modes) = chosen.ok_or("no candidate reached the 500 Hz slot")?;

    // Random-vibration response at launch levels (curve D as a stand-in
    // for the launcher spectrum).
    let response = HarmonicResponse::new(&mesh.model, &modes, 0.03)?;
    let rand = random_response(&response, mesh.center_node(), Dof::W, &Do160Curve::D.psd())?;
    println!();
    println!(
        "random vibration: {:.1} g RMS at the board centre, ν₀ = {:.0} Hz",
        rand.accel_grms,
        rand.characteristic_frequency.value()
    );
    let fatigue = assess_fatigue(
        &rand,
        Length::new(0.14),
        Length::from_millimeters(2.4),
        Length::from_millimeters(25.0),
        1.0,
        ComponentStyle::SmtGullWing,
    )?;
    println!(
        "Steinberg: 3σ deflection {:.0} µm vs allowable {:.0} µm → life {:.0} h ({})",
        fatigue.deflection_3sigma.micrometers(),
        fatigue.allowable_3sigma.micrometers(),
        fatigue.life_hours,
        if fatigue.passes() { "PASS" } else { "FAIL" }
    );

    // Quasi-static launch acceleration (the paper tests 9 g).
    let fr4 = Material::fr4();
    let accel = acceleration_test(
        &mesh.model,
        Acceleration::from_g(9.0),
        Stress::new(fr4.yield_strength.value() / 2.0),
    )?;
    println!(
        "9 g quasi-static: {:.0} µm deflection, {:.1} MPa, margin {:.1} ({})",
        accel.max_deflection.micrometers(),
        accel.max_stress.megapascals(),
        accel.stress_margin,
        if accel.passes() { "PASS" } else { "FAIL" }
    );
    Ok(())
}
