//! The COSEE scenario: a fan-less Seat Electronic Box cooled by heat
//! pipes and loop heat pipes into the seat structure (the paper's
//! Fig 9/10 system).
//!
//! ```bash
//! cargo run --release --example seb_cooling
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cabin = Celsius::new(25.0);
    let duty = Power::new(40.0);

    // The three Fig 10 configurations.
    let baseline = SebModel::cosee(SeatStructure::aluminum(), false, 0.0)?;
    let upgraded = SebModel::cosee(SeatStructure::aluminum(), true, 0.0)?;
    let tilted = SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians())?;

    println!("SEB at {duty} in a {cabin} cabin:");
    for (name, model) in [
        ("natural convection only", &baseline),
        ("HP + LHP, horizontal", &upgraded),
        ("HP + LHP, 22° tilt", &tilted),
    ] {
        let state = model.solve(duty, cabin)?;
        println!(
            "  {name:<26} PCB {:.1}  (ΔT {:.1}; {:.0} W via LHPs, {:.0} W via the box)",
            state.pcb_temperature,
            state.dt_pcb_air(cabin),
            state.lhp_power.value(),
            state.box_power.value(),
        );
    }

    // Capability at the Fig 10 reading line (ΔT = 60 K).
    let dt = TempDelta::new(60.0);
    let cap_base = baseline.capability(dt, cabin)?;
    let cap_lhp = upgraded.capability(dt, cabin)?;
    println!();
    println!(
        "heat-dissipation capability at ΔT = 60 K: {:.0} W → {:.0} W (+{:.0} %)",
        cap_base.value(),
        cap_lhp.value(),
        (cap_lhp.value() / cap_base.value() - 1.0) * 100.0
    );
    println!("(the paper reports 40 W → 100 W, +150 %, without any fan)");
    Ok(())
}
