//! The Fig 5/6 cooling trade: watch the Level-1 selector escalate the
//! technology as module power climbs through the paper's generations
//! (10 W → 20/30 W → 60 W), and see where ARINC 600 forced air runs
//! out against a hot spot.
//!
//! ```bash
//! cargo run --release --example cooling_tradeoff
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ambient = Celsius::new(55.0);
    let selector = CoolingSelector::default();

    println!("Level-1 technology selection vs module power ({ambient} ambient):");
    for p in [5.0, 10.0, 20.0, 30.0, 60.0, 100.0, 200.0] {
        let selection = selector.select(Power::new(p), ambient)?;
        println!(
            "  {p:>5.0} W → {:<20} (board {:.1})",
            selection.mode.label(),
            selection.board_temperature
        );
    }

    println!();
    println!("and the §IV hot-spot problem (10 W/cm² die under ARINC 600 air):");
    let study = HotSpotStudy::ten_watt_per_cm2();
    for mult in [1.0, 2.0, 4.0, 8.0] {
        let tj = study.junction_temperature(mult)?;
        println!(
            "  {mult:>3.0}× ARINC 600 flow → junction {tj:.0} ({})",
            if tj <= Celsius::new(125.0) {
                "ok"
            } else {
                "over the 125 °C limit"
            }
        );
    }
    let bare = study.junction_temperature(1.0)?;
    let rescued = study.with_two_phase_spreader().junction_temperature(1.0)?;
    println!(
        "  1× flow + embedded two-phase spreader → junction {rescued:.0} \
         ({:.0} K cooler than the bare die)",
        (bare - rescued).kelvin()
    );
    println!("— which is precisely why the paper turns to heat pipes and LHPs.");
    Ok(())
}
