//! Quickstart: run the paper's full packaging-design procedure (Fig 1)
//! on a small avionics unit — cooling selection, board thermal field,
//! junction temperatures, modal placement, qualification and MTBF.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use aeropack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the product: two modules in one box at 55 °C ambient.
    let equipment = Equipment::new(
        "demo avionics unit",
        (0.32, 0.20, 0.16),
        vec![
            Module::new(
                "processing",
                representative_board("cpu-board", Power::new(25.0))?,
            ),
            Module::new("io", representative_board("io-board", Power::new(12.0))?),
        ],
        Celsius::new(55.0),
    )?;

    // 2. Run the Fig 1 procedure against the paper's qualification spec.
    let report = run_design(
        &equipment,
        &CoolingSelector::default(),
        &DesignSpec::date2010()?,
    )?;

    // 3. Read the design report.
    println!("design report for `{}`:", equipment.name);
    for module in &report.modules {
        println!(
            "  {}: cooled by {}, board peak {:.1}, worst junction {:.1}, \
             first mode {:.0} Hz, MTBF {:.0} h",
            module.name,
            module.cooling,
            module.board_peak,
            module.level3.max_junction(),
            module.first_mode.value(),
            module.mtbf_hours,
        );
    }
    println!();
    println!("{}", report.qualification);
    println!();
    println!(
        "equipment MTBF: {:.0} h — design {}",
        report.mtbf_hours,
        if report.design_closes() {
            "CLOSES in one shot"
        } else {
            "needs another iteration"
        }
    );
    Ok(())
}
