//! Cross-layer determinism guarantees of the sweep engine: the Fig 10
//! power sweep, the harmonic frequency sweep and the random-vibration
//! integral must be **bit-identical** at every thread count, and equal
//! to the pre-engine serial paths they replaced.

use aeropack::design::{SeatStructure, SebModel};
use aeropack::fem::{
    modal, random_response, random_response_with, Dof, HarmonicResponse, PlateMesh, PlateProperties,
};
use aeropack::materials::Material;
use aeropack::mission::{
    sweep_missions, AdaptiveConfig, Checkpoint, MissionConfig, MissionDriver, MissionProfile,
    Orbit, RadiatingFace, Scheme, StepControl,
};
use aeropack::solver::{Precond, SolverConfig};
use aeropack::sweep::Sweep;
use aeropack::thermal::{Face, FaceBc, FvGrid, FvModel};
use aeropack::units::{Celsius, Frequency, HeatTransferCoeff, Length, Power};
use aeropack_envqual::Do160Curve;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fig10_configs() -> Vec<SebModel> {
    vec![
        SebModel::cosee(SeatStructure::aluminum(), false, 0.0).expect("model"),
        SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model"),
        SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model"),
    ]
}

/// Collapses one Fig 10 grid into comparable bit patterns (errors keep
/// their display string so failure modes must match too).
fn fig10_bits(
    rows: &[Vec<Result<aeropack::design::SebOperatingState, aeropack::design::DesignError>>],
    ambient: Celsius,
) -> Vec<Result<u64, String>> {
    rows.iter()
        .flatten()
        .map(|point| match point {
            Ok(state) => Ok(state.dt_pcb_air(ambient).kelvin().to_bits()),
            Err(e) => Err(e.to_string()),
        })
        .collect()
}

#[test]
fn fig10_power_sweep_is_bit_identical_across_thread_counts() {
    let ambient = Celsius::new(25.0);
    let configs = fig10_configs();
    let powers: Vec<Power> = (1..=11).map(|i| Power::new(10.0 * i as f64)).collect();

    let (serial_rows, serial_stats) =
        SebModel::power_sweep(&configs, &powers, ambient, &Sweep::serial());
    let reference = fig10_bits(&serial_rows, ambient);
    assert_eq!(serial_stats.scenarios, configs.len() * powers.len());

    for threads in THREAD_COUNTS {
        let (rows, stats) = SebModel::power_sweep(&configs, &powers, ambient, &Sweep::new(threads));
        assert_eq!(
            fig10_bits(&rows, ambient),
            reference,
            "Fig 10 sweep diverged at {threads} threads"
        );
        // The stats roll-up must not depend on scheduling either.
        assert_eq!(stats.scenarios, serial_stats.scenarios);
        assert_eq!(stats.total_iterations, serial_stats.total_iterations);
        assert_eq!(stats.converged, serial_stats.converged);
    }
}

#[test]
fn fig10_power_sweep_matches_the_old_pointwise_serial_path() {
    let ambient = Celsius::new(25.0);
    let configs = fig10_configs();
    let powers: Vec<Power> = (1..=11).map(|i| Power::new(10.0 * i as f64)).collect();

    let (rows, _) = SebModel::power_sweep(&configs, &powers, ambient, &Sweep::new(8));
    for (ci, config) in configs.iter().enumerate() {
        for (pi, &p) in powers.iter().enumerate() {
            // The pre-engine path: one direct solve per grid point.
            let old = config.solve(p, ambient);
            match (&rows[ci][pi], &old) {
                (Ok(new_state), Ok(old_state)) => assert_eq!(
                    new_state.dt_pcb_air(ambient).kelvin().to_bits(),
                    old_state.dt_pcb_air(ambient).kelvin().to_bits(),
                    "sweep diverged from pointwise solve at config {ci}, {p:?}"
                ),
                (Err(new_err), Err(old_err)) => {
                    assert_eq!(new_err.to_string(), old_err.to_string())
                }
                (new, old) => panic!(
                    "outcome mismatch at config {ci}, {p:?}: sweep {new:?} vs pointwise {old:?}"
                ),
            }
        }
    }
}

fn board_response() -> (HarmonicResponse, usize) {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, 6, 4, &props).expect("mesh");
    mesh.pin_all_edges().expect("bc");
    let modes = modal(&mesh.model, 4).expect("modal");
    let node = mesh.center_node();
    (
        HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp"),
        node,
    )
}

#[test]
fn harmonic_sweep_is_bit_identical_across_thread_counts() {
    let (resp, node) = board_response();
    let f_min = Frequency::new(20.0);
    let f_max = Frequency::new(2000.0);
    let points = 257;

    let reference: Vec<(u64, u64)> = resp
        .sweep_with(&Sweep::serial(), node, Dof::W, f_min, f_max, points)
        .expect("serial sweep")
        .iter()
        .map(|(f, a)| (f.value().to_bits(), a.to_bits()))
        .collect();

    for threads in THREAD_COUNTS {
        // `with_grain(1)` overrides the modal-sum grain hint so the
        // sweep genuinely spawns `threads` workers on this small grid —
        // otherwise the serial fast path would make the test vacuous.
        let runner = Sweep::new(threads).with_grain(1);
        let (swept, stats) = resp
            .sweep_with_stats(&runner, node, Dof::W, f_min, f_max, points)
            .expect("parallel sweep");
        let parallel: Vec<(u64, u64)> = swept
            .iter()
            .map(|(f, a)| (f.value().to_bits(), a.to_bits()))
            .collect();
        assert_eq!(
            parallel, reference,
            "harmonic sweep diverged at {threads} threads"
        );
        assert_eq!(stats.engaged_workers, threads.min(points));
        // Real per-point records: the modal sum is counted as work.
        assert_eq!(stats.total_iterations, points * resp.omegas().len());
        assert!(stats.total_solve_time.as_nanos() > 0);
    }

    // The old serial path computed exactly this loop in frequency
    // order; reproduce it point by point against the engine output.
    let log_min = f_min.value().ln();
    let log_max = f_max.value().ln();
    for (i, &(f_bits, _)) in reference.iter().enumerate() {
        let f = (log_min + (log_max - log_min) * i as f64 / (points - 1) as f64).exp();
        assert_eq!(f.to_bits(), f_bits, "frequency grid changed at point {i}");
    }
}

#[test]
fn random_response_is_bit_identical_across_thread_counts() {
    let (resp, node) = board_response();
    let psd = Do160Curve::C1.psd();

    let reference = random_response_with(&Sweep::serial(), &resp, node, Dof::W, &psd)
        .expect("serial random response");
    // `random_response` itself reads AEROPACK_THREADS; exercise the
    // explicit-runner path at every count and the env path once.
    // `with_grain(1)` forces genuine parallelism past the grain hint.
    for threads in THREAD_COUNTS {
        let runner = Sweep::new(threads).with_grain(1);
        let parallel = random_response_with(&runner, &resp, node, Dof::W, &psd)
            .expect("parallel random response");
        assert_eq!(
            parallel.accel_grms.to_bits(),
            reference.accel_grms.to_bits(),
            "g_rms diverged at {threads} threads"
        );
        assert_eq!(
            parallel.disp_rms.to_bits(),
            reference.disp_rms.to_bits(),
            "displacement RMS diverged at {threads} threads"
        );
        assert_eq!(
            parallel.characteristic_frequency.value().to_bits(),
            reference.characteristic_frequency.value().to_bits(),
            "characteristic frequency diverged at {threads} threads"
        );
    }
    let via_env = random_response(&resp, node, Dof::W, &psd).expect("env-path random response");
    assert_eq!(via_env.accel_grms.to_bits(), reference.accel_grms.to_bits());
}

#[test]
fn fv_power_sweep_with_ic0_is_bit_identical_across_thread_counts() {
    // The IC(0)+RCM hot path end to end: a finite-volume power sweep
    // whose every solve goes through the level-scheduled triangular
    // applies and the workspace-cached factor. Worker-local model
    // clones mean each worker re-derives the permutation and factor
    // from the same matrix values, so results must stay bitwise
    // identical no matter how scenarios are split across threads — and
    // identical to the serial `scale_sources` path the scaled solve
    // replaced.
    let grid = FvGrid::new((0.12, 0.08, 0.0016), (24, 16, 1)).expect("grid");
    let mut base = FvModel::new(grid, &Material::fr4());
    base.add_power_box(Power::new(18.0), (6, 4, 0), (14, 10, 1))
        .expect("source");
    base.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(45.0),
            ambient: Celsius::new(35.0),
        },
    );
    base.set_solver_config(SolverConfig::new().preconditioner(Precond::Ic0));
    base.solve_steady().expect("prime solve");
    let scales: Vec<f64> = (0..12).map(|i| 0.5 + 0.1 * i as f64).collect();

    let field_bits = |runner: &Sweep| -> Vec<Vec<u64>> {
        runner.map_with(
            &scales,
            || base.clone(),
            |model, &scale| {
                let field = model.solve_steady_scaled(scale).expect("scaled solve");
                let stats = model.last_solve_stats().expect("stats");
                assert!(stats.converged());
                let factor = stats.factorization.expect("IC(0) factor stats");
                assert!(factor.reordered, "Auto reorder engages RCM for IC(0)");
                field.temperatures().iter().map(|t| t.to_bits()).collect()
            },
        )
    };

    let reference = field_bits(&Sweep::serial());
    for threads in THREAD_COUNTS {
        // `with_grain(1)` forces genuine parallelism past the FV grain
        // hint a library sweep would apply.
        let parallel = field_bits(&Sweep::new(threads).with_grain(1));
        assert_eq!(
            parallel, reference,
            "IC(0) FV sweep diverged at {threads} threads"
        );
    }

    // The scaled solve is the old clone-and-scale path, bit for bit.
    for (&scale, bits) in scales.iter().zip(&reference) {
        let mut scaled = base.clone();
        scaled.scale_sources(scale);
        let old: Vec<u64> = scaled
            .solve_steady()
            .expect("scale_sources solve")
            .temperatures()
            .iter()
            .map(|t| t.to_bits())
            .collect();
        assert_eq!(&old, bits, "solve_steady_scaled({scale}) diverged");
    }
}

#[test]
fn fv_power_sweep_with_multigrid_is_bit_identical_across_thread_counts() {
    // The multigrid + SELL fast path end to end: a 3-D grid large
    // enough that the V-cycle hierarchy is multi-level and the blocked
    // SELL SpMV layout engages (n ≥ 1024). Determinism must hold
    // across *both* thread axes — the sweep worker count and the
    // solver's internal SpMV threads.
    let grid = FvGrid::new((0.16, 0.12, 0.04), (16, 12, 8)).expect("grid");
    let mut base = FvModel::new(grid, &Material::fr4());
    base.add_power_box(Power::new(22.0), (4, 3, 2), (12, 9, 6))
        .expect("source");
    base.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(40.0),
            ambient: Celsius::new(30.0),
        },
    );
    let scales: Vec<f64> = (0..8).map(|i| 0.6 + 0.15 * i as f64).collect();

    let field_bits = |runner: &Sweep, solver_threads: usize| -> Vec<Vec<u64>> {
        let mut model = base.clone();
        model.set_solver_config(
            SolverConfig::new()
                .preconditioner(Precond::Multigrid)
                .threads(solver_threads),
        );
        runner.map_with(
            &scales,
            || model.clone(),
            |model, &scale| {
                let field = model.solve_steady_scaled(scale).expect("scaled solve");
                let stats = model.last_solve_stats().expect("stats");
                assert!(stats.converged());
                assert_eq!(stats.preconditioner, Precond::Multigrid);
                let spec = stats.spectral.expect("MG spectral stats");
                assert!(spec.levels >= 2, "hierarchy must coarsen");
                field.temperatures().iter().map(|t| t.to_bits()).collect()
            },
        )
    };

    let reference = field_bits(&Sweep::serial(), 1);
    for threads in THREAD_COUNTS {
        let parallel = field_bits(&Sweep::new(threads).with_grain(1), threads);
        assert_eq!(
            parallel, reference,
            "multigrid FV sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn fv_sharded_steady_solve_is_bit_identical_across_shard_and_thread_counts() {
    // The domain-decomposed steady solve: the subdomain ladder is the
    // mathematical knob, but the shard count is a pure execution knob
    // and the solver thread count only moves tile trisolves between
    // scoped threads — the accumulation order is fixed. The field must
    // therefore be bit-identical at every (shards, threads)
    // combination, including the single-shard serial reference.
    // 16 planes along z: AS(8) then resolves to eight two-plane tiles,
    // so shard counts 1/2/4/8 all align to whole-tile boundaries.
    let grid = FvGrid::new((0.12, 0.10, 0.08), (12, 10, 16)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(Power::new(22.0), (3, 3, 4), (9, 8, 12))
        .expect("source");
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(40.0),
            ambient: Celsius::new(30.0),
        },
    );

    let field_bits = |shards: usize, threads: usize| -> Vec<u64> {
        let mut m = model.clone();
        m.set_solver_config(
            SolverConfig::new()
                .preconditioner(Precond::AdditiveSchwarz(8))
                .threads(threads),
        );
        let field = m.solve_steady_sharded(shards).expect("sharded solve");
        let stats = m.last_solve_stats().expect("stats");
        assert!(stats.converged());
        let dd = stats.dd.expect("dd stats");
        assert_eq!(dd.subdomains, 8, "AS(8) fixes the tile ladder");
        assert_eq!(dd.shards, shards);
        field.temperatures().iter().map(|t| t.to_bits()).collect()
    };

    let reference = field_bits(1, 1);
    for shards in [1, 2, 4, 8] {
        for threads in THREAD_COUNTS {
            assert_eq!(
                field_bits(shards, threads),
                reference,
                "sharded solve diverged at {shards} shards, {threads} threads"
            );
        }
    }
}

#[test]
fn sweeps_stay_bit_identical_with_observability_enabled() {
    // Observability must be a pure observer: enabling it (scoped
    // registry, events flowing from every worker) must not perturb a
    // single bit of any sweep output, at any thread count.
    let (resp, node) = board_response();
    let f_min = Frequency::new(20.0);
    let f_max = Frequency::new(2000.0);
    let points = 257;
    let disabled_reference: Vec<(u64, u64)> = resp
        .sweep_with(&Sweep::serial(), node, Dof::W, f_min, f_max, points)
        .expect("serial sweep")
        .iter()
        .map(|(f, a)| (f.value().to_bits(), a.to_bits()))
        .collect();

    for threads in THREAD_COUNTS {
        let reg = std::sync::Arc::new(aeropack::obs::Registry::new());
        let observed: Vec<(u64, u64)> = {
            let _obs = aeropack::obs::scoped(reg.clone());
            resp.sweep_with(
                &Sweep::new(threads).with_grain(1),
                node,
                Dof::W,
                f_min,
                f_max,
                points,
            )
            .expect("observed sweep")
            .iter()
            .map(|(f, a)| (f.value().to_bits(), a.to_bits()))
            .collect()
        };
        assert_eq!(
            observed, disabled_reference,
            "observability perturbed the harmonic sweep at {threads} threads"
        );
        // The events really flowed — including from spawned workers.
        assert_eq!(reg.counter("sweep.scenarios"), points as u64);
        assert_eq!(reg.counter("fem.harmonic.points"), points as u64);
        if threads > 1 {
            let snap = reg.snapshot();
            assert!(
                snap.spans
                    .iter()
                    .any(|s| s.path.starts_with("sweep.worker{")),
                "worker spans missing at {threads} threads"
            );
        }
    }
}

#[test]
fn mission_sweeps_are_bit_identical_across_thread_counts() {
    // Three climb–cruise–descent profiles through the adaptive mission
    // driver: every summary — including the adaptive step sequence and
    // final field folded into `trajectory_hash` — must be bit-identical
    // at every sweep thread count.
    let grid = FvGrid::new((0.1, 0.08, 0.01), (6, 4, 2)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(Power::new(12.0), (1, 1, 0), (5, 3, 1))
        .expect("source");
    let profiles: Vec<MissionProfile> = [4_000.0, 8_000.0, 11_000.0]
        .iter()
        .map(|&alt| {
            MissionProfile::climb_cruise_descent(
                alt,
                (120.0, 480.0, 120.0),
                HeatTransferCoeff::new(35.0),
            )
            .expect("profile")
        })
        .collect();
    let config = MissionConfig::new(Scheme::Trapezoidal)
        .control(StepControl::Adaptive(AdaptiveConfig {
            dt_max: 20.0,
            ..AdaptiveConfig::default()
        }))
        .convective_face(Face::ZMax);
    let initial = Celsius::new(15.0);

    let (reference, serial_stats) =
        sweep_missions(&model, &profiles, &config, initial, &Sweep::serial());
    let reference: Vec<_> = reference
        .into_iter()
        .map(|r| r.expect("serial mission"))
        .collect();
    assert!(
        reference.iter().all(|s| s.steps > 20),
        "adaptive missions must produce real step sequences"
    );

    for threads in THREAD_COUNTS {
        // `with_grain(1)` forces genuine parallelism on this small
        // profile list.
        let runner = Sweep::new(threads).with_grain(1);
        let (rows, stats) = sweep_missions(&model, &profiles, &config, initial, &runner);
        assert_eq!(stats.scenarios, serial_stats.scenarios);
        for (expected, row) in reference.iter().zip(rows) {
            let got = row.expect("parallel mission");
            assert_eq!(
                *expected, got,
                "mission sweep diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn mission_checkpoint_restore_is_bit_identical() {
    // An orbit mission with a radiating face: the checkpoint carries
    // the lagged radiation linearisation, both snapshot codecs must
    // round-trip it bit-exactly mid-trajectory, and a restored driver
    // must finish on the original trajectory bit for bit.
    let grid = FvGrid::new((0.12, 0.12, 0.01), (5, 5, 2)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(Power::new(20.0), (1, 1, 0), (4, 4, 1))
        .expect("source");
    let profile = MissionProfile::orbit_cycle(&Orbit::leo_90min(), 1).expect("profile");
    let config = MissionConfig::new(Scheme::Trapezoidal)
        .control(StepControl::Adaptive(AdaptiveConfig {
            dt_max: 120.0,
            ..AdaptiveConfig::default()
        }))
        .radiating_face(RadiatingFace {
            face: Face::ZMax,
            emissivity: 0.85,
            absorptivity: 0.3,
        });

    let mut original = MissionDriver::new(
        model.clone(),
        profile.clone(),
        config.clone(),
        Celsius::new(20.0),
    )
    .expect("driver");
    for _ in 0..30 {
        original.step().expect("step");
    }
    let cp = original.checkpoint();
    let via_binary = Checkpoint::from_binary(&cp.to_binary()).expect("binary codec");
    let via_json = Checkpoint::from_json(&cp.to_json()).expect("json codec");
    assert_eq!(cp.hash(), via_binary.hash(), "binary round-trip drifted");
    assert_eq!(cp.hash(), via_json.hash(), "JSON round-trip drifted");

    original.run_to_end().expect("uninterrupted run");
    let mut restored = MissionDriver::restore(model, profile, config, &via_json).expect("restore");
    restored.run_to_end().expect("restored run");

    let bits = |t: &[f64]| t.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(original.temperatures()),
        bits(restored.temperatures()),
        "restored trajectory diverged from the uninterrupted one"
    );
    // The full end states — time, dt, step index, radiation
    // linearisation, field — agree, not just the temperatures.
    assert_eq!(original.checkpoint().hash(), restored.checkpoint().hash());
}

#[test]
fn power_sweep_reports_per_point_failures_in_place() {
    // Past ~300 W the internal copper/water heat pipes exceed their
    // capillary limit: those grid points must come back as Err rows in
    // their exact slots while every other point still solves — at every
    // thread count, identically to the pointwise path.
    let ambient = Celsius::new(25.0);
    let configs = fig10_configs();
    let powers: Vec<Power> = [40.0, 120.0, 250.0, 400.0, 3000.0]
        .iter()
        .map(|&p| Power::new(p))
        .collect();

    let pointwise: Vec<Vec<Result<u64, String>>> = configs
        .iter()
        .map(|config| {
            powers
                .iter()
                .map(|&p| match config.solve(p, ambient) {
                    Ok(s) => Ok(s.dt_pcb_air(ambient).kelvin().to_bits()),
                    Err(e) => Err(e.to_string()),
                })
                .collect()
        })
        .collect();
    let failures: usize = pointwise
        .iter()
        .flatten()
        .filter(|point| point.is_err())
        .count();
    assert!(
        failures > 0 && failures < configs.len() * powers.len(),
        "the grid must mix dry-out failures ({failures}) with successes"
    );

    for threads in THREAD_COUNTS {
        let (rows, stats) = SebModel::power_sweep(&configs, &powers, ambient, &Sweep::new(threads));
        assert_eq!(stats.scenarios, configs.len() * powers.len());
        // Failed scenarios are the non-converged ones in the roll-up.
        assert_eq!(stats.converged, stats.scenarios - failures);
        for (ci, row) in rows.iter().enumerate() {
            for (pi, point) in row.iter().enumerate() {
                let got = match point {
                    Ok(s) => Ok(s.dt_pcb_air(ambient).kelvin().to_bits()),
                    Err(e) => Err(e.to_string()),
                };
                assert_eq!(
                    got, pointwise[ci][pi],
                    "threads={threads} config={ci} power={pi}: sweep row diverged"
                );
            }
        }
    }
}
