//! End-to-end integration of the COSEE pipeline: materials → two-phase
//! devices → thermal network → SEB system → qualification, crossing
//! every crate boundary in the workspace.

use aeropack::prelude::*;

const CABIN: Celsius = Celsius::new(25.0);

#[test]
fn fig10_pipeline_reproduces_paper_shape() {
    let baseline = SebModel::cosee(SeatStructure::aluminum(), false, 0.0).unwrap();
    let upgraded = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).unwrap();
    let tilted = SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).unwrap();
    let composite = SebModel::cosee(SeatStructure::carbon_composite(), true, 0.0).unwrap();

    let dt = TempDelta::new(60.0);
    let cap_base = baseline.capability(dt, CABIN).unwrap().value();
    let cap_alu = upgraded.capability(dt, CABIN).unwrap().value();
    let cap_tilt = tilted.capability(dt, CABIN).unwrap().value();
    let cap_comp = composite.capability(dt, CABIN).unwrap().value();

    // The paper's ordering and rough magnitudes.
    assert!((30.0..55.0).contains(&cap_base), "baseline {cap_base}");
    assert!((80.0..130.0).contains(&cap_alu), "aluminium {cap_alu}");
    assert!(
        cap_tilt <= cap_alu && cap_tilt > 0.9 * cap_alu,
        "tilt {cap_tilt}"
    );
    assert!(
        cap_base < cap_comp && cap_comp < cap_alu,
        "composite must sit between: {cap_base} < {cap_comp} < {cap_alu}"
    );
    // Gains: +150 % aluminium, +80 % composite (generous bands).
    let gain_alu = cap_alu / cap_base - 1.0;
    let gain_comp = cap_comp / cap_base - 1.0;
    assert!((1.0..2.2).contains(&gain_alu), "aluminium gain {gain_alu}");
    assert!(
        (0.4..1.6).contains(&gain_comp),
        "composite gain {gain_comp}"
    );
}

#[test]
fn seb_solution_is_internally_consistent_over_the_sweep() {
    let model = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).unwrap();
    let mut last_dt = 0.0;
    for p in (10..=100).step_by(10) {
        let state = model.solve(Power::new(p as f64), CABIN).unwrap();
        // Energy balance.
        assert!(
            (state.lhp_power.value() + state.box_power.value() - p as f64).abs() < 1e-6,
            "balance at {p} W"
        );
        // Temperature ordering: ambient < seat < wall < pcb.
        let seat = state.seat_temperature.expect("LHP installed");
        assert!(CABIN < seat && seat < state.wall_temperature);
        assert!(state.wall_temperature < state.pcb_temperature);
        // Monotone ΔT.
        let dt = state.dt_pcb_air(CABIN).kelvin();
        assert!(dt > last_dt, "ΔT monotone at {p} W");
        last_dt = dt;
    }
}

#[test]
fn seat_qualification_campaign_passes() {
    // The §IV.A campaign as a cross-crate flow: SEB thermal margins +
    // thermal shock solder life, rolled into one report.
    let model = SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).unwrap();
    let mut report = QualificationReport::new();

    // Climatic: 40 W duty must stay under the 85 °C board class across
    // the cabin range.
    for amb in [-25.0, 25.0, 55.0] {
        let state = model.solve(Power::new(40.0), Celsius::new(amb)).unwrap();
        report.record(TestOutcome::new(
            format!("climatic at {amb} °C"),
            (Celsius::new(85.0).value() - amb) / (state.pcb_temperature.value() - amb),
            format!("PCB {:.1}", state.pcb_temperature),
        ));
    }
    // Thermal shock: the SEB solder joints over the paper profile.
    let shock = ThermalCycleProfile::date2010_shock().unwrap();
    let joint = SolderAttachment::ceramic_on_fr4(
        Length::from_millimeters(10.0),
        Length::from_micrometers(120.0),
    );
    let n_f = joint.cycles_to_failure(&shock).unwrap();
    report.record(TestOutcome::new(
        "thermal shock (−45/+55 °C)",
        n_f / 50.0,
        format!("{n_f:.0} cycles to failure"),
    ));

    assert!(report.all_passed(), "{report}");
}

#[test]
fn overload_leads_to_heat_pipe_dry_out_not_nonsense() {
    let model = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).unwrap();
    // Push far beyond the internal heat pipes' combined capability.
    let result = model.solve(Power::new(3000.0), CABIN);
    assert!(result.is_err(), "3 kW through three 6 mm pipes must fail");
}

#[test]
fn ceiling_installation_can_use_a_thermosyphon() {
    // The paper also considers IFE equipment "installed in the ceiling",
    // where gravity return works and a wickless thermosyphon into the
    // aircraft structure suffices. Compose it from the substrates: box
    // wall → thermosyphon → structure → cabin air.
    let ts = Thermosyphon::new(
        WorkingFluid::water(),
        Length::from_millimeters(10.0),
        Length::from_millimeters(150.0),
        Length::from_millimeters(150.0),
    )
    .unwrap();
    let q = Power::new(40.0);
    // Ceiling unit: condenser above evaporator (favourable, tilt 0).
    let r_ts = ts.operate(q, Celsius::new(60.0), 0.0).unwrap();

    let mut net = Network::new();
    let air = net.add_fixed("cabin air", CABIN);
    let structure = net.add_floating("ceiling structure");
    let wall = net.add_floating("box wall");
    net.add_heat(wall, q).unwrap();
    net.connect(wall, structure, r_ts + ThermalResistance::new(0.1))
        .unwrap(); // thermosyphon + clamp TIM
    net.connect(structure, air, ThermalResistance::new(0.6))
        .unwrap();
    let sol = net.solve().unwrap();
    let t_wall = sol.temperature(wall).unwrap();
    assert!(
        t_wall < Celsius::new(85.0),
        "ceiling unit wall at {t_wall} must hold the class limit"
    );
    // And the same device upside down (floor-mounted, condenser below)
    // is unusable — the reason the seats needed capillary devices.
    assert!(ts
        .operate(q, Celsius::new(60.0), 120f64.to_radians())
        .is_err());
}
