//! Integration of the Fig 1 design procedure: product model → three
//! analysis levels → qualification → reliability, end to end.

use aeropack::prelude::*;

fn demo_equipment(powers: &[f64]) -> Equipment {
    let modules = powers
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Module::new(
                format!("module-{i}"),
                representative_board(format!("board-{i}"), Power::new(p)).unwrap(),
            )
        })
        .collect();
    Equipment::new(
        "integration unit",
        (0.4, 0.25, 0.2),
        modules,
        Celsius::new(55.0),
    )
    .unwrap()
}

#[test]
fn level1_escalates_with_power() {
    let eq = demo_equipment(&[8.0, 25.0, 60.0]);
    let report = level1(&eq, &CoolingSelector::default()).unwrap();
    assert_eq!(report.module_count(), 3);
    // Selected labels must not de-escalate with power.
    let ranks: Vec<usize> = report
        .modules
        .iter()
        .map(|(_, _, s)| match s.mode.label() {
            "free convection" => 0,
            "direct forced air" => 1,
            "conduction cooled" => 2,
            "air flow-through" => 3,
            _ => 4,
        })
        .collect();
    assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
}

#[test]
fn full_chain_junctions_feed_reliability() {
    let pcb = representative_board("chain", Power::new(30.0)).unwrap();
    let (selection, peak, l3) =
        analyze_module(&pcb, &CoolingSelector::default(), Celsius::new(55.0)).unwrap();
    // Level 2 peak bounds the level-3 board temperatures.
    for j in &l3.junctions {
        assert!(j.board_temperature <= peak);
        assert!(j.junction_temperature >= j.board_temperature);
    }
    // The board respects the limit under the selected technology.
    assert!(
        l3.all_below(Celsius::new(125.0)),
        "selected {} but worst junction {}",
        selection.mode.label(),
        l3.max_junction()
    );
    // MTBF from those junctions is finite and positive.
    let rel = l3
        .reliability(&pcb, Environment::AirborneInhabited)
        .unwrap();
    assert!(rel.mtbf_hours().is_finite());
    assert!(rel.mtbf_hours() > 1000.0);
}

#[test]
fn design_report_is_reproducible() {
    let eq = demo_equipment(&[20.0, 12.0]);
    let spec = DesignSpec::date2010().unwrap();
    let a = run_design(&eq, &CoolingSelector::default(), &spec).unwrap();
    let b = run_design(&eq, &CoolingSelector::default(), &spec).unwrap();
    assert_eq!(a.modules.len(), b.modules.len());
    assert!((a.mtbf_hours - b.mtbf_hours).abs() < 1e-9);
    for (ma, mb) in a.modules.iter().zip(&b.modules) {
        assert_eq!(ma.cooling, mb.cooling);
        assert!((ma.first_mode.value() - mb.first_mode.value()).abs() < 1e-9);
    }
}

#[test]
fn hotter_ambient_erodes_margins() {
    let spec = DesignSpec::date2010().unwrap();
    let cool = Equipment::new(
        "cool",
        (0.4, 0.25, 0.2),
        vec![Module::new(
            "m",
            representative_board("b", Power::new(25.0)).unwrap(),
        )],
        Celsius::new(40.0),
    )
    .unwrap();
    let hot = Equipment::new(
        "hot",
        (0.4, 0.25, 0.2),
        vec![Module::new(
            "m",
            representative_board("b", Power::new(25.0)).unwrap(),
        )],
        Celsius::new(70.0),
    )
    .unwrap();
    let r_cool = run_design(&cool, &CoolingSelector::default(), &spec).unwrap();
    let r_hot = run_design(&hot, &CoolingSelector::default(), &spec).unwrap();
    // The procedure compensates for a hotter ambient in one of two
    // ways: the design loses reliability margin, or Level 1 escalates
    // the cooling technology to buy it back.
    let escalated = r_hot.modules[0].cooling != r_cool.modules[0].cooling;
    assert!(
        escalated || r_hot.mtbf_hours < r_cool.mtbf_hours,
        "hot: {} / {:.0} h, cool: {} / {:.0} h",
        r_hot.modules[0].cooling,
        r_hot.mtbf_hours,
        r_cool.modules[0].cooling,
        r_cool.mtbf_hours
    );
}

#[test]
fn infeasible_requirement_is_a_clean_error() {
    // A 2 kW single card cannot be cooled within an 86 °C board limit by
    // anything in the repertoire at 85 °C ambient.
    let eq = Equipment::new(
        "impossible",
        (0.4, 0.25, 0.2),
        vec![Module::new(
            "m",
            representative_board("b", Power::new(2000.0)).unwrap(),
        )],
        Celsius::new(85.0),
    )
    .unwrap();
    let err = run_design(
        &eq,
        &CoolingSelector::default(),
        &DesignSpec::date2010().unwrap(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no cooling technology"), "got: {msg}");
}
