//! Golden-snapshot regression gate over the workspace's headline
//! physics outputs: the Fig 10 power-sweep grid, the modal frequency
//! ladder, the random-vibration RMS levels, and the PCG-vs-Cholesky
//! differential residuals. Values are compared against tolerance-tagged
//! JSON under `tests/golden/`; run `scripts/snapshot.sh` to update the
//! files after an intentional physics change.

use std::path::PathBuf;

use aeropack::fem::linalg::DMatrix;
use aeropack::prelude::*;
use aeropack::verify::Snapshot;

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{stem}.json"))
}

fn gate(stem: &str, snapshot: &Snapshot) {
    if let Err(report) = Snapshot::gate(&golden_path(stem), snapshot) {
        panic!("{report}");
    }
}

/// Fig 10: ΔT(PCB − cabin air) versus power for the three COSEE
/// configurations, through `SebModel::power_sweep` on the sweep engine.
#[test]
fn golden_fig10_power_sweep() {
    let cabin = Celsius::new(25.0);
    let configs = [
        (
            "no_lhp",
            SebModel::cosee(SeatStructure::aluminum(), false, 0.0).unwrap(),
        ),
        (
            "lhp",
            SebModel::cosee(SeatStructure::aluminum(), true, 0.0).unwrap(),
        ),
        (
            "lhp_tilt22",
            SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).unwrap(),
        ),
    ];
    let models: Vec<SebModel> = configs.iter().map(|(_, m)| m.clone()).collect();
    let powers: Vec<Power> = (1..=6).map(|i| Power::new(15.0 * i as f64)).collect();
    let (grid, stats) = SebModel::power_sweep(&models, &powers, cabin, &Sweep::new(2));
    assert_eq!(stats.scenarios, configs.len() * powers.len());

    let mut snapshot = Snapshot::new("fig10_power_sweep");
    for ((name, _), row) in configs.iter().zip(&grid) {
        let mut solved = 0usize;
        for (power, state) in powers.iter().zip(row) {
            if let Ok(state) = state {
                solved += 1;
                snapshot.push(
                    format!("{name}/p{:03.0}_dt", power.value()),
                    state.dt_pcb_air(cabin).kelvin(),
                    1e-9,
                    1e-6,
                );
            }
        }
        // Points past dry-out legitimately fail to solve; pin how many
        // solved so a silently appearing/vanishing point is drift.
        snapshot.push(format!("{name}/solved_points"), solved as f64, 0.0, 0.0);
    }
    gate("fig10_power_sweep", &snapshot);
}

/// The first four modal frequencies of the equipment-style simply
/// supported aluminium plate (subspace-iteration path), plus the modal
/// mass capture.
#[test]
fn golden_modal_frequencies() {
    let props = PlateProperties::from_material(
        &Material::aluminum_6061(),
        aeropack::units::Length::from_millimeters(2.0),
    )
    .unwrap();
    let mut mesh = PlateMesh::rectangular(0.3, 0.2, 6, 6, &props).unwrap();
    mesh.simply_support_edges().unwrap();
    let modes = modal(&mesh.model, 4).unwrap();

    let mut snapshot = Snapshot::new("modal_frequencies");
    for (i, f) in modes.frequencies().iter().enumerate() {
        // Eigensolves are iterative; give them a slightly wider band
        // than the direct solves.
        snapshot.push(format!("mode{}_hz", i + 1), f.value(), 1e-9, 1e-6);
    }
    snapshot.push("mass_capture", modes.mass_capture(), 1e-9, 1e-5);
    gate("modal_frequencies", &snapshot);
}

/// Random-vibration RMS response of the plate centre under a flat
/// 0.04 g²/Hz PSD (the DO-160-style broadband shape).
#[test]
fn golden_random_vibration_rms() {
    let props = PlateProperties::from_material(
        &Material::fr4(),
        aeropack::units::Length::from_millimeters(1.6),
    )
    .unwrap();
    let mut mesh = PlateMesh::rectangular(0.16, 0.1, 6, 4, &props).unwrap();
    mesh.simply_support_edges().unwrap();
    let modes = modal(&mesh.model, 5).unwrap();
    let response = HarmonicResponse::new(&mesh.model, &modes, 0.03).unwrap();
    let input = PsdCurve::new(vec![
        (Frequency::new(20.0), AccelPsd::new(0.04)),
        (Frequency::new(2000.0), AccelPsd::new(0.04)),
    ])
    .unwrap();
    let center = mesh.center_node();
    let rms = random_response(&response, center, Dof::W, &input).unwrap();

    let mut snapshot = Snapshot::new("random_vibration_rms");
    snapshot.push("accel_grms", rms.accel_grms, 1e-9, 1e-6);
    snapshot.push("disp_rms_m", rms.disp_rms, 1e-15, 1e-6);
    snapshot.push(
        "characteristic_hz",
        rms.characteristic_frequency.value(),
        1e-9,
        1e-6,
    );
    snapshot.push("input_grms", input.grms(), 1e-9, 1e-9);
    gate("random_vibration_rms", &snapshot);
}

/// One 90-minute orbit cycle of a dissipating radiating plate through
/// the adaptive mission driver: final field statistics, the accepted
/// step count, and the bit-exact trajectory hash (split into two 32-bit
/// halves so the f64 snapshot slots carry it losslessly).
#[test]
fn golden_mission_orbit_cycle() {
    use aeropack::mission::{
        AdaptiveConfig, MissionConfig, MissionDriver, MissionProfile, Orbit, RadiatingFace, Scheme,
        StepControl,
    };

    let grid = FvGrid::new((0.15, 0.15, 0.012), (6, 6, 2)).unwrap();
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(Power::new(25.0), (1, 1, 0), (5, 5, 1))
        .unwrap();
    let profile = MissionProfile::orbit_cycle(&Orbit::leo_90min(), 1).unwrap();
    let config = MissionConfig::new(Scheme::Trapezoidal)
        .control(StepControl::Adaptive(AdaptiveConfig {
            dt_max: 60.0,
            ..AdaptiveConfig::default()
        }))
        .radiating_face(RadiatingFace {
            face: Face::ZMax,
            emissivity: 0.85,
            absorptivity: 0.3,
        });
    let mut driver = MissionDriver::new(model, profile, config, Celsius::new(20.0)).unwrap();
    driver.run_to_end().unwrap();
    let field = driver.field().unwrap();
    let stats = *driver.stats();
    let hash = driver.trajectory_fingerprint();

    let mut snapshot = Snapshot::new("mission_orbit_cycle");
    snapshot.push("final_min_c", field.min_temperature().value(), 1e-9, 1e-9);
    snapshot.push("final_max_c", field.max_temperature().value(), 1e-9, 1e-9);
    snapshot.push("final_mean_c", field.mean_temperature().value(), 1e-9, 1e-9);
    snapshot.push("accepted_steps", stats.accepted as f64, 0.0, 0.0);
    snapshot.push("relinearizations", stats.relinearizations as f64, 0.0, 0.0);
    snapshot.push("trajectory_hash_hi", (hash >> 32) as f64, 0.0, 0.0);
    snapshot.push("trajectory_hash_lo", (hash & 0xffff_ffff) as f64, 0.0, 0.0);
    gate("mission_orbit_cycle", &snapshot);
}

/// The NSGA-II Pareto front for the paper's packaging trade at 120 W
/// in a 25 °C cabin with a 22° adverse tilt: every front member's
/// topology and objectives in canonical order, plus the bit-exact
/// front fingerprint (split into 32-bit halves for the f64 slots).
/// The optimizer is deterministic by construction, so the hash gate
/// is exact; any drift is a real physics or algorithm change.
#[test]
fn golden_optimize_front() {
    use aeropack::optimize::{DesignSpace, EvalContext, Optimizer, OptimizerConfig};

    let ctx = EvalContext::new(Celsius::new(25.0), Power::new(120.0), 22f64.to_radians());
    let config = OptimizerConfig {
        population: 48,
        generations: 30,
        seed: 0x05a2_010c_05ee,
        ..OptimizerConfig::default()
    };
    let result = Optimizer::new(DesignSpace::default(), config).run(&ctx, &Sweep::new(2));
    let hash = result.front.fingerprint();

    let mut snapshot = Snapshot::new("optimize_front");
    snapshot.push("front_len", result.front.len() as f64, 0.0, 0.0);
    snapshot.push("evaluations", result.evaluations as f64, 0.0, 0.0);
    snapshot.push("front_hash_hi", (hash >> 32) as f64, 0.0, 0.0);
    snapshot.push("front_hash_lo", (hash & 0xffff_ffff) as f64, 0.0, 0.0);
    for (i, p) in result.front.points().iter().enumerate() {
        snapshot.push(
            format!("p{i:02}_topology"),
            p.genome.topology.index() as f64,
            0.0,
            0.0,
        );
        snapshot.push(format!("p{i:02}_dt_k"), p.objectives.dt_k, 1e-9, 1e-9);
        snapshot.push(format!("p{i:02}_mass_kg"), p.objectives.mass_kg, 1e-9, 1e-9);
        snapshot.push(
            format!("p{i:02}_mtbf_h"),
            p.objectives.mtbf_hours,
            1e-6,
            1e-9,
        );
    }
    gate("optimize_front", &snapshot);
}

/// PCG (Jacobi and SSOR) against dense Cholesky on a banded SPD
/// fixture: the differential residual ‖x_pcg − x_chol‖/‖x_chol‖ pins
/// the iterative path to the direct one.
#[test]
fn golden_solver_differential_residuals() {
    let n = 64;
    let band = 5;
    // Deterministic banded SPD fixture (diagonally dominant).
    let mut rng = SplitMix64::new(0x90_1de2);
    let mut dense = DMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..(i + band).min(n) {
            if i == j {
                continue;
            }
            let v = rng.range_f64(-1.0, 1.0);
            dense[(i, j)] = v;
            dense[(j, i)] = v;
        }
    }
    for i in 0..n {
        let row_sum: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| dense[(i, j)].abs())
            .sum();
        dense[(i, i)] = row_sum + 1.0;
    }
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() * 3.0).collect();
    let a = aeropack::solver::CsrMatrix::from_row_fn(n, band * 2, |i, row| {
        for j in 0..n {
            if dense[(i, j)] != 0.0 {
                row.push((j, dense[(i, j)]));
            }
        }
    });

    let chol = aeropack::solver::solve_dense(
        dense.data(),
        n,
        &b,
        &SolverConfig::new().method(Method::Cholesky),
    )
    .unwrap();
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let chol_norm = norm(&chol.x);

    let mut snapshot = Snapshot::new("solver_differential_residuals");
    for (label, precond) in [("jacobi", Precond::Jacobi), ("ssor", Precond::Ssor)] {
        let cfg = SolverConfig::new()
            .method(Method::Pcg)
            .preconditioner(precond)
            .tolerance(1e-12);
        let pcg = aeropack::solver::solve_sparse(&a, &b, &cfg).unwrap();
        let diff: f64 = norm(
            &pcg.x
                .iter()
                .zip(&chol.x)
                .map(|(p, q)| p - q)
                .collect::<Vec<_>>(),
        ) / chol_norm;
        // The differential residual itself is noise-limited near the
        // solve tolerance; gate its magnitude with an absolute band.
        snapshot.push(format!("{label}_rel_diff"), diff, 1e-10, 0.0);
        snapshot.push(
            format!("{label}_iterations"),
            pcg.stats.iterations as f64,
            // Iteration counts are integers; allow ±2 for platform FP.
            2.0,
            0.0,
        );
    }
    snapshot.push("cholesky_solution_norm", chol_norm, 1e-9, 1e-9);
    gate("solver_differential_residuals", &snapshot);
}
