//! Property-based tests on the core invariants of the workspace:
//! conservation laws, rigorous bounds, monotonicities and reciprocity,
//! checked over randomised inputs with proptest.

use aeropack::design::{predict_board_temperature, CoolingMode, ModuleGeometry};
use aeropack::fem::linalg::{generalized_eigen_dense, Cholesky, DMatrix, Lu};
use aeropack::materials::{air_at_sea_level, Material, WorkingFluid};
use aeropack::thermal::{Face, FaceBc, FvGrid, FvModel, Network};
use aeropack::tim::{
    bruggeman, hashin_shtrikman_bounds, lewis_nielsen, maxwell_garnett, wiener_bounds, FillerShape,
};
use aeropack::units::{
    Celsius, HeatTransferCoeff, Power, TempDelta, ThermalConductivity, ThermalResistance,
};
use proptest::prelude::*;

/// A random symmetric positive-definite matrix: AᵀA + n·I.
fn spd(n: usize, seed: &[f64]) -> DMatrix {
    let mut a = DMatrix::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = seed[k % seed.len()] + 0.1 * (k as f64).sin();
            k += 1;
        }
    }
    let mut g = a.t_matmul(&a);
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lu_and_cholesky_agree_on_spd(values in prop::collection::vec(-2.0..2.0f64, 16), b in prop::collection::vec(-5.0..5.0f64, 4)) {
        let a = spd(4, &values);
        let x_lu = Lu::factor(&a).unwrap().solve(&b);
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b);
        for (p, q) in x_lu.iter().zip(&x_ch) {
            prop_assert!((p - q).abs() < 1e-8, "LU {p} vs Cholesky {q}");
        }
        // Residual check: A·x = b.
        let r = a.matvec(&x_lu);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn generalized_eigen_is_m_orthonormal(values in prop::collection::vec(-2.0..2.0f64, 16), shift in 0.5..3.0f64) {
        let k = spd(4, &values);
        let mut m = DMatrix::identity(4);
        for i in 0..4 {
            m[(i, i)] = shift + i as f64 * 0.3;
        }
        let (vals, vecs) = generalized_eigen_dense(&k, &m).unwrap();
        // Ascending positive eigenvalues.
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        prop_assert!(vals[0] > 0.0);
        // M-orthonormal columns.
        let g = vecs.t_matmul(&m.matmul(&vecs));
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn fv_conserves_energy(
        nx in 2usize..7,
        ny in 2usize..6,
        q1 in 0.5..30.0f64,
        q2 in 0.5..30.0f64,
        h in 5.0..500.0f64,
        ambient in -40.0..70.0f64,
    ) {
        let grid = FvGrid::new((0.08, 0.06, 0.004), (nx, ny, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model.add_power_box(Power::new(q1), (0, 0, 0), (1, 1, 1)).unwrap();
        model.add_power_box(Power::new(q2), (nx - 1, ny - 1, 0), (nx, ny, 1)).unwrap();
        model.set_face_bc(Face::ZMax, FaceBc::Convection {
            h: HeatTransferCoeff::new(h),
            ambient: Celsius::new(ambient),
        });
        let field = model.solve_steady().unwrap();
        let out: f64 = Face::ALL
            .iter()
            .map(|&f| model.boundary_heat(&field, f).unwrap().value())
            .sum();
        let total = q1 + q2;
        prop_assert!((out - total).abs() < 1e-6 * total, "in {total}, out {out}");
        // Every cell is at or above ambient (heat only enters).
        prop_assert!(field.min_temperature().value() >= ambient - 1e-9);
    }

    #[test]
    fn network_superposition_holds(
        r1 in 0.1..5.0f64,
        r2 in 0.1..5.0f64,
        q in 1.0..100.0f64,
        t_amb in -40.0..85.0f64,
    ) {
        // T(q1+q2) − T(0) must equal [T(q1) − T(0)] + [T(q2) − T(0)]
        // for a linear network.
        let build = |heat: f64| {
            let mut net = Network::new();
            let amb = net.add_fixed("ambient", Celsius::new(t_amb));
            let a = net.add_floating("a");
            let b = net.add_floating("b");
            if heat > 0.0 {
                net.add_heat(b, Power::new(heat)).unwrap();
            }
            net.connect(b, a, ThermalResistance::new(r1)).unwrap();
            net.connect(a, amb, ThermalResistance::new(r2)).unwrap();
            let sol = net.solve().unwrap();
            sol.temperature(b).unwrap().value()
        };
        let t_half = build(q / 2.0) - t_amb;
        let t_full = build(q) - t_amb;
        prop_assert!((t_full - 2.0 * t_half).abs() < 1e-9, "linearity");
        // And the closed form.
        prop_assert!((t_full - q * (r1 + r2)).abs() < 1e-9);
    }

    #[test]
    fn effective_medium_within_rigorous_bounds(
        phi in 0.01..0.50f64,
        k_f in 5.0..500.0f64,
    ) {
        let km = ThermalConductivity::new(0.2);
        let kf = ThermalConductivity::new(k_f);
        let (wl, wh) = wiener_bounds(km, kf, phi).unwrap();
        let (hl, hh) = hashin_shtrikman_bounds(km, kf, phi).unwrap();
        // HS within Wiener.
        prop_assert!(hl.value() >= wl.value() - 1e-9);
        prop_assert!(hh.value() <= wh.value() + 1e-9);
        // Models within Wiener (MG additionally equals HS-).
        for k in [
            maxwell_garnett(km, kf, phi).unwrap(),
            bruggeman(km, kf, phi).unwrap(),
            lewis_nielsen(km, kf, phi, FillerShape::Sphere).unwrap(),
        ] {
            prop_assert!(k.value() >= wl.value() - 1e-9, "below Wiener-: {k}");
            prop_assert!(k.value() <= wh.value() + 1e-9, "above Wiener+: {k}");
        }
        let mg = maxwell_garnett(km, kf, phi).unwrap();
        prop_assert!((mg.value() - hl.value()).abs() < 1e-9 * hl.value());
    }

    #[test]
    fn saturation_curves_are_monotone(idx in 0usize..5, f in 0.02..0.98f64) {
        let fluids = [
            WorkingFluid::water(),
            WorkingFluid::ammonia(),
            WorkingFluid::acetone(),
            WorkingFluid::methanol(),
            WorkingFluid::ethanol(),
        ];
        let fluid = &fluids[idx];
        let lo = fluid.min_temperature().value();
        let hi = fluid.max_temperature().value();
        let t1 = Celsius::new(lo + f * (hi - lo) * 0.5);
        let t2 = Celsius::new(lo + (0.5 + f * 0.5) * (hi - lo));
        let s1 = fluid.saturation(t1).unwrap();
        let s2 = fluid.saturation(t2).unwrap();
        prop_assert!(s2.pressure.value() > s1.pressure.value());
        prop_assert!(s2.surface_tension <= s1.surface_tension + 1e-12);
        prop_assert!(s2.liquid_viscosity <= s1.liquid_viscosity + 1e-12);
        prop_assert!(s1.vapor_density.value() < s1.liquid_density.value());
    }

    #[test]
    fn air_properties_stay_physical(t in -60.0..250.0f64) {
        let air = air_at_sea_level(Celsius::new(t));
        prop_assert!(air.density.value() > 0.5 && air.density.value() < 2.0);
        prop_assert!(air.prandtl() > 0.6 && air.prandtl() < 0.8);
        prop_assert!(air.kinematic_viscosity() > 0.0);
    }

    #[test]
    fn board_temperature_is_monotone_in_power(
        p1 in 5.0..60.0f64,
        factor in 1.1..3.0f64,
        amb in 20.0..70.0f64,
    ) {
        let geometry = ModuleGeometry::default();
        let ambient = Celsius::new(amb);
        let mode = CoolingMode::ConductionCooled {
            rail_temperature: ambient + TempDelta::new(10.0),
        };
        let t_low = predict_board_temperature(&mode, &geometry, Power::new(p1), ambient).unwrap();
        let t_high =
            predict_board_temperature(&mode, &geometry, Power::new(p1 * factor), ambient).unwrap();
        prop_assert!(t_high > t_low);
    }
}
