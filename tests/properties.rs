//! Property-style tests on the core invariants of the workspace:
//! conservation laws, rigorous bounds, monotonicities and reciprocity,
//! checked over deterministic pseudo-random inputs (SplitMix64).

use aeropack::fem::linalg::{generalized_eigen_dense, Cholesky, DMatrix, Lu};
use aeropack::prelude::*;
use aeropack::tim::{bruggeman, hashin_shtrikman_bounds, maxwell_garnett, wiener_bounds};

const CASES: usize = 32;

/// A random symmetric positive-definite matrix: AᵀA + n·I.
fn spd(n: usize, rng: &mut SplitMix64) -> DMatrix {
    let mut a = DMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.range_f64(-2.0, 2.0);
        }
    }
    let mut g = a.t_matmul(&a);
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

#[test]
fn lu_and_cholesky_agree_on_spd() {
    let mut rng = SplitMix64::new(0xa11f_0001);
    for _ in 0..CASES {
        let a = spd(4, &mut rng);
        let b: Vec<f64> = (0..4).map(|_| rng.range_f64(-5.0, 5.0)).collect();
        let x_lu = Lu::factor(&a).unwrap().solve(&b);
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b);
        for (p, q) in x_lu.iter().zip(&x_ch) {
            assert!((p - q).abs() < 1e-8, "LU {p} vs Cholesky {q}");
        }
        // Residual check: A·x = b.
        let r = a.matvec(&x_lu);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    }
}

#[test]
fn generalized_eigen_is_m_orthonormal() {
    let mut rng = SplitMix64::new(0xa11f_0002);
    for _ in 0..CASES {
        let k = spd(4, &mut rng);
        let shift = rng.range_f64(0.5, 3.0);
        let mut m = DMatrix::identity(4);
        for i in 0..4 {
            m[(i, i)] = shift + i as f64 * 0.3;
        }
        let (vals, vecs) = generalized_eigen_dense(&k, &m).unwrap();
        // Ascending positive eigenvalues.
        assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        assert!(vals[0] > 0.0);
        // M-orthonormal columns.
        let g = vecs.t_matmul(&m.matmul(&vecs));
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - expect).abs() < 1e-7);
            }
        }
    }
}

#[test]
fn fv_conserves_energy() {
    let mut rng = SplitMix64::new(0xa11f_0003);
    for _ in 0..CASES {
        let nx = 2 + (rng.next_u64() % 5) as usize;
        let ny = 2 + (rng.next_u64() % 4) as usize;
        let q1 = rng.range_f64(0.5, 30.0);
        let q2 = rng.range_f64(0.5, 30.0);
        let h = rng.range_f64(5.0, 500.0);
        let ambient = rng.range_f64(-40.0, 70.0);
        let grid = FvGrid::new((0.08, 0.06, 0.004), (nx, ny, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(q1), (0, 0, 0), (1, 1, 1))
            .unwrap();
        model
            .add_power_box(Power::new(q2), (nx - 1, ny - 1, 0), (nx, ny, 1))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(h),
                ambient: Celsius::new(ambient),
            },
        );
        let field = model.solve_steady().unwrap();
        let out: f64 = Face::ALL
            .iter()
            .map(|&f| model.boundary_heat(&field, f).unwrap().value())
            .sum();
        let total = q1 + q2;
        assert!((out - total).abs() < 1e-6 * total, "in {total}, out {out}");
        // Every cell is at or above ambient (heat only enters).
        assert!(field.min_temperature().value() >= ambient - 1e-9);
        // The shared backend reported its convergence record.
        let stats = model.last_solve_stats().expect("stats recorded");
        assert!(stats.final_residual <= stats.tolerance);
    }
}

#[test]
fn network_superposition_holds() {
    let mut rng = SplitMix64::new(0xa11f_0004);
    for _ in 0..CASES {
        let r1 = rng.range_f64(0.1, 5.0);
        let r2 = rng.range_f64(0.1, 5.0);
        let q = rng.range_f64(1.0, 100.0);
        let t_amb = rng.range_f64(-40.0, 85.0);
        // T(q1+q2) − T(0) must equal [T(q1) − T(0)] + [T(q2) − T(0)]
        // for a linear network.
        let build = |heat: f64| {
            let mut net = Network::new();
            let amb = net.add_fixed("ambient", Celsius::new(t_amb));
            let a = net.add_floating("a");
            let b = net.add_floating("b");
            if heat > 0.0 {
                net.add_heat(b, Power::new(heat)).unwrap();
            }
            net.connect(b, a, ThermalResistance::new(r1)).unwrap();
            net.connect(a, amb, ThermalResistance::new(r2)).unwrap();
            let sol = net.solve().unwrap();
            sol.temperature(b).unwrap().value()
        };
        let t_half = build(q / 2.0) - t_amb;
        let t_full = build(q) - t_amb;
        assert!((t_full - 2.0 * t_half).abs() < 1e-9, "linearity");
        // And the closed form.
        assert!((t_full - q * (r1 + r2)).abs() < 1e-9);
    }
}

#[test]
fn effective_medium_within_rigorous_bounds() {
    let mut rng = SplitMix64::new(0xa11f_0005);
    for _ in 0..CASES {
        let phi = rng.range_f64(0.01, 0.50);
        let k_f = rng.range_f64(5.0, 500.0);
        let km = ThermalConductivity::new(0.2);
        let kf = ThermalConductivity::new(k_f);
        let (wl, wh) = wiener_bounds(km, kf, phi).unwrap();
        let (hl, hh) = hashin_shtrikman_bounds(km, kf, phi).unwrap();
        // HS within Wiener.
        assert!(hl.value() >= wl.value() - 1e-9);
        assert!(hh.value() <= wh.value() + 1e-9);
        // Models within Wiener (MG additionally equals HS-).
        for k in [
            maxwell_garnett(km, kf, phi).unwrap(),
            bruggeman(km, kf, phi).unwrap(),
            lewis_nielsen(km, kf, phi, FillerShape::Sphere).unwrap(),
        ] {
            assert!(k.value() >= wl.value() - 1e-9, "below Wiener-: {k}");
            assert!(k.value() <= wh.value() + 1e-9, "above Wiener+: {k}");
        }
        let mg = maxwell_garnett(km, kf, phi).unwrap();
        assert!((mg.value() - hl.value()).abs() < 1e-9 * hl.value());
    }
}

#[test]
fn saturation_curves_are_monotone() {
    let mut rng = SplitMix64::new(0xa11f_0006);
    let fluids = [
        WorkingFluid::water(),
        WorkingFluid::ammonia(),
        WorkingFluid::acetone(),
        WorkingFluid::methanol(),
        WorkingFluid::ethanol(),
    ];
    for _ in 0..CASES {
        let fluid = &fluids[(rng.next_u64() % 5) as usize];
        let f = rng.range_f64(0.02, 0.98);
        let lo = fluid.min_temperature().value();
        let hi = fluid.max_temperature().value();
        let t1 = Celsius::new(lo + f * (hi - lo) * 0.5);
        let t2 = Celsius::new(lo + (0.5 + f * 0.5) * (hi - lo));
        let s1 = fluid.saturation(t1).unwrap();
        let s2 = fluid.saturation(t2).unwrap();
        assert!(s2.pressure.value() > s1.pressure.value());
        assert!(s2.surface_tension <= s1.surface_tension + 1e-12);
        assert!(s2.liquid_viscosity <= s1.liquid_viscosity + 1e-12);
        assert!(s1.vapor_density.value() < s1.liquid_density.value());
    }
}

#[test]
fn air_properties_stay_physical() {
    let mut rng = SplitMix64::new(0xa11f_0007);
    for _ in 0..CASES {
        let t = rng.range_f64(-60.0, 250.0);
        let air = air_at_sea_level(Celsius::new(t));
        assert!(air.density.value() > 0.5 && air.density.value() < 2.0);
        assert!(air.prandtl() > 0.6 && air.prandtl() < 0.8);
        assert!(air.kinematic_viscosity() > 0.0);
    }
}

#[test]
fn board_temperature_is_monotone_in_power() {
    let mut rng = SplitMix64::new(0xa11f_0008);
    for _ in 0..CASES {
        let p1 = rng.range_f64(5.0, 60.0);
        let factor = rng.range_f64(1.1, 3.0);
        let amb = rng.range_f64(20.0, 70.0);
        let geometry = ModuleGeometry::default();
        let ambient = Celsius::new(amb);
        let mode = CoolingMode::ConductionCooled {
            rail_temperature: ambient + TempDelta::new(10.0),
        };
        let t_low = predict_board_temperature(&mode, &geometry, Power::new(p1), ambient).unwrap();
        let t_high =
            predict_board_temperature(&mode, &geometry, Power::new(p1 * factor), ambient).unwrap();
        assert!(t_high > t_low);
    }
}
