//! Property-style tests on the core invariants of the workspace:
//! conservation laws, rigorous bounds, monotonicities and reciprocity,
//! driven through the [`aeropack::verify`] harness so failures shrink
//! to a minimal counterexample and print a one-line reproducer seed.

use aeropack::fem::linalg::{generalized_eigen_dense, Cholesky, DMatrix, Lu};
use aeropack::optimize::dominates;
use aeropack::prelude::*;
use aeropack::tim::{bruggeman, hashin_shtrikman_bounds, maxwell_garnett, wiener_bounds};
use aeropack::verify::{check, ensure, tuple3, tuple4, tuple5, Gen};

const CASES: u64 = 32;

/// A generator for a random symmetric positive-definite `n × n` matrix
/// (`AᵀA + n·I`), flattened row-major so the harness can shrink it.
fn gen_spd(n: usize) -> Gen<DMatrix> {
    Gen::f64_range(-2.0, 2.0)
        .vec_of(n * n, n * n)
        .map(move |data| {
            let a = DMatrix::from_rows(n, n, data);
            let mut g = a.t_matmul(&a);
            for i in 0..n {
                g[(i, i)] += n as f64;
            }
            g
        })
}

#[test]
fn lu_and_cholesky_agree_on_spd() {
    let gen = gen_spd(4).zip(&Gen::f64_range(-5.0, 5.0).vec_of(4, 4));
    check(0xa11f_0001, CASES, &gen, |(a, b)| {
        let x_lu = Lu::factor(a).map_err(|e| e.to_string())?.solve(b);
        let x_ch = Cholesky::factor(a).map_err(|e| e.to_string())?.solve(b);
        for (p, q) in x_lu.iter().zip(&x_ch) {
            ensure!((p - q).abs() < 1e-8, "LU {p} vs Cholesky {q}");
        }
        // Residual check: A·x = b.
        let r = a.matvec(&x_lu);
        for (ri, bi) in r.iter().zip(b) {
            ensure!((ri - bi).abs() < 1e-8, "residual {}", ri - bi);
        }
        Ok(())
    });
}

#[test]
fn generalized_eigen_is_m_orthonormal() {
    let gen = gen_spd(4).zip(&Gen::f64_range(0.5, 3.0));
    check(0xa11f_0002, CASES, &gen, |(k, shift)| {
        let mut m = DMatrix::identity(4);
        for i in 0..4 {
            m[(i, i)] = shift + i as f64 * 0.3;
        }
        let (vals, vecs) = generalized_eigen_dense(k, &m).map_err(|e| e.to_string())?;
        // Ascending positive eigenvalues.
        ensure!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        ensure!(vals[0] > 0.0);
        // M-orthonormal columns.
        let g = vecs.t_matmul(&m.matmul(&vecs));
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                ensure!(
                    (g[(i, j)] - expect).abs() < 1e-7,
                    "VᵀMV[{i},{j}] = {}",
                    g[(i, j)]
                );
            }
        }
        Ok(())
    });
}

#[test]
fn fv_conserves_energy() {
    let gen = tuple5(
        &Gen::usize_range(2, 7).zip(&Gen::usize_range(2, 6)),
        &Gen::f64_range(0.5, 30.0),
        &Gen::f64_range(0.5, 30.0),
        &Gen::f64_range(5.0, 500.0),
        &Gen::f64_range(-40.0, 70.0),
    );
    check(
        0xa11f_0003,
        CASES,
        &gen,
        |&((nx, ny), q1, q2, h, ambient)| {
            let grid = FvGrid::new((0.08, 0.06, 0.004), (nx, ny, 1)).map_err(|e| e.to_string())?;
            let mut model = FvModel::new(grid, &Material::aluminum_6061());
            model
                .add_power_box(Power::new(q1), (0, 0, 0), (1, 1, 1))
                .map_err(|e| e.to_string())?;
            model
                .add_power_box(Power::new(q2), (nx - 1, ny - 1, 0), (nx, ny, 1))
                .map_err(|e| e.to_string())?;
            model.set_face_bc(
                Face::ZMax,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(h),
                    ambient: Celsius::new(ambient),
                },
            );
            let field = model.solve_steady().map_err(|e| e.to_string())?;
            let mut out = 0.0;
            for &f in Face::ALL.iter() {
                out += model
                    .boundary_heat(&field, f)
                    .map_err(|e| e.to_string())?
                    .value();
            }
            let total = q1 + q2;
            ensure!((out - total).abs() < 1e-6 * total, "in {total}, out {out}");
            // Every cell is at or above ambient (heat only enters).
            ensure!(field.min_temperature().value() >= ambient - 1e-9);
            // The shared backend reported its convergence record.
            let stats = model.last_solve_stats().ok_or("no stats recorded")?;
            ensure!(stats.final_residual <= stats.tolerance);
            Ok(())
        },
    );
}

/// A single-phase "hold" profile: no convection, no radiation drive,
/// dissipation at `power_scale`.
fn hold_profile(duration_s: f64, power_scale: f64) -> MissionProfile {
    let mut state = BoundaryState::sea_level();
    state.power_scale = power_scale;
    MissionProfile::new(vec![MissionPhase::constant("hold", duration_s, state)])
        .expect("valid profile")
}

/// An adaptive control whose `dt_max` forces at least
/// `duration / dt_max` accepted steps.
fn capped_adaptive(dt_max: f64) -> StepControl {
    StepControl::Adaptive(AdaptiveConfig {
        dt_init: dt_max / 4.0,
        dt_min: dt_max / 1e4,
        dt_max,
        ..AdaptiveConfig::default()
    })
}

#[test]
fn mission_adiabatic_transient_conserves_energy() {
    // An adiabatic box with zero sources: the discrete operator has
    // zero column sums, so `E = Σ capᵢ·Tᵢ` is conserved exactly in
    // exact arithmetic; the adaptive driver must hold the relative
    // drift below 1e-9 over 10⁴ accepted steps (per-solve PCG residual
    // plus 10⁴-step round-off accumulation).
    let gen = tuple3(
        &Gen::usize_range(2, 5).zip(&Gen::usize_range(2, 4)),
        &Gen::f64_range(20.0, 80.0),
        &Gen::f64_range(1.0, 60.0),
    );
    check(0xa11f_0009, 8, &gen, |&((nx, ny), base_c, amp)| {
        let grid = FvGrid::new((0.06, 0.04, 0.008), (nx, ny, 2)).map_err(|e| e.to_string())?;
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model.set_solver_config(SolverConfig::new().tolerance(1e-13));
        let n = model.grid().cell_count();
        // A non-uniform start (no sources, so nothing else drives the
        // transient): a deterministic ripple on top of the base.
        let temps: Vec<f64> = (0..n)
            .map(|i| base_c + amp * (0.7 * i as f64).sin())
            .collect();
        let field = model
            .field_from_temperatures(temps)
            .map_err(|e| e.to_string())?;
        let duration = 20.0;
        let config = MissionConfig::new(Scheme::Trapezoidal)
            .control(capped_adaptive(duration / 1.0e4))
            .max_steps(1_000_000);
        let mut driver =
            MissionDriver::with_initial_field(model, hold_profile(duration, 0.0), config, &field)
                .map_err(|e| e.to_string())?;
        let e0 = driver.thermal_energy();
        driver.run_to_end().map_err(|e| e.to_string())?;
        ensure!(
            driver.stats().accepted >= 10_000,
            "dt cap must force ≥ 10⁴ adaptive steps, got {}",
            driver.stats().accepted
        );
        let drift = (driver.thermal_energy() - e0).abs() / e0.abs();
        ensure!(drift <= 1e-9, "relative energy drift {drift:.3e} > 1e-9");
        // The field actually evolved (the test is not vacuous) and
        // relaxed toward the adiabatic equilibrium: the uniform mean.
        let spread = |f: &FvField| f.max_temperature().value() - f.min_temperature().value();
        let final_field = driver.field().map_err(|e| e.to_string())?;
        ensure!(spread(&final_field) < spread(&field));
        Ok(())
    });
}

#[test]
fn mission_constant_power_energy_balance_matches_integral() {
    // Same adiabatic box, now with a constant dissipation P: the energy
    // gained over the mission must equal ∫P dt = P·t_end to within
    // accumulated round-off.
    let gen = tuple3(
        &Gen::usize_range(2, 5).zip(&Gen::usize_range(2, 4)),
        &Gen::f64_range(2.0, 40.0),
        &Gen::f64_range(5.0, 120.0),
    );
    check(0xa11f_000a, 8, &gen, |&((nx, ny), power, duration)| {
        let grid = FvGrid::new((0.06, 0.04, 0.008), (nx, ny, 2)).map_err(|e| e.to_string())?;
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model.set_solver_config(SolverConfig::new().tolerance(1e-13));
        model
            .add_power_box(Power::new(power), (0, 0, 0), (nx, ny, 1))
            .map_err(|e| e.to_string())?;
        let config = MissionConfig::new(Scheme::Trapezoidal)
            .control(capped_adaptive(duration / 500.0))
            .max_steps(1_000_000);
        let mut driver = MissionDriver::new(
            model,
            hold_profile(duration, 1.0),
            config,
            Celsius::new(25.0),
        )
        .map_err(|e| e.to_string())?;
        let e0 = driver.thermal_energy();
        driver.run_to_end().map_err(|e| e.to_string())?;
        let gained = driver.thermal_energy() - e0;
        let expected = power * duration;
        ensure!(
            (gained - expected).abs() <= 1e-9 * expected,
            "energy balance: gained {gained} J, ∫P dt = {expected} J"
        );
        Ok(())
    });
}

#[test]
fn network_superposition_holds() {
    let gen = tuple4(
        &Gen::f64_range(0.1, 5.0),
        &Gen::f64_range(0.1, 5.0),
        &Gen::f64_range(1.0, 100.0),
        &Gen::f64_range(-40.0, 85.0),
    );
    check(0xa11f_0004, CASES, &gen, |&(r1, r2, q, t_amb)| {
        // T(q1+q2) − T(0) must equal [T(q1) − T(0)] + [T(q2) − T(0)]
        // for a linear network.
        let build = |heat: f64| {
            let mut net = Network::new();
            let amb = net.add_fixed("ambient", Celsius::new(t_amb));
            let a = net.add_floating("a");
            let b = net.add_floating("b");
            if heat > 0.0 {
                net.add_heat(b, Power::new(heat)).unwrap();
            }
            net.connect(b, a, ThermalResistance::new(r1)).unwrap();
            net.connect(a, amb, ThermalResistance::new(r2)).unwrap();
            let sol = net.solve().unwrap();
            sol.temperature(b).unwrap().value()
        };
        let t_half = build(q / 2.0) - t_amb;
        let t_full = build(q) - t_amb;
        ensure!(
            (t_full - 2.0 * t_half).abs() < 1e-9,
            "linearity: {t_full} vs 2 × {t_half}"
        );
        // And the closed form.
        ensure!((t_full - q * (r1 + r2)).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn effective_medium_within_rigorous_bounds() {
    let gen = Gen::f64_range(0.01, 0.50).zip(&Gen::f64_range(5.0, 500.0));
    check(0xa11f_0005, CASES, &gen, |&(phi, k_f)| {
        let km = ThermalConductivity::new(0.2);
        let kf = ThermalConductivity::new(k_f);
        let (wl, wh) = wiener_bounds(km, kf, phi).map_err(|e| e.to_string())?;
        let (hl, hh) = hashin_shtrikman_bounds(km, kf, phi).map_err(|e| e.to_string())?;
        // HS within Wiener.
        ensure!(hl.value() >= wl.value() - 1e-9);
        ensure!(hh.value() <= wh.value() + 1e-9);
        // Models within Wiener (MG additionally equals HS-).
        for k in [
            maxwell_garnett(km, kf, phi).map_err(|e| e.to_string())?,
            bruggeman(km, kf, phi).map_err(|e| e.to_string())?,
            lewis_nielsen(km, kf, phi, FillerShape::Sphere).map_err(|e| e.to_string())?,
        ] {
            ensure!(k.value() >= wl.value() - 1e-9, "below Wiener-: {k}");
            ensure!(k.value() <= wh.value() + 1e-9, "above Wiener+: {k}");
        }
        let mg = maxwell_garnett(km, kf, phi).map_err(|e| e.to_string())?;
        ensure!((mg.value() - hl.value()).abs() < 1e-9 * hl.value());
        Ok(())
    });
}

#[test]
fn saturation_curves_are_monotone() {
    let gen = Gen::usize_range(0, 5).zip(&Gen::f64_range(0.02, 0.98));
    check(0xa11f_0006, CASES, &gen, |&(fluid_idx, f)| {
        let fluids = [
            WorkingFluid::water(),
            WorkingFluid::ammonia(),
            WorkingFluid::acetone(),
            WorkingFluid::methanol(),
            WorkingFluid::ethanol(),
        ];
        let fluid = &fluids[fluid_idx];
        let lo = fluid.min_temperature().value();
        let hi = fluid.max_temperature().value();
        let t1 = Celsius::new(lo + f * (hi - lo) * 0.5);
        let t2 = Celsius::new(lo + (0.5 + f * 0.5) * (hi - lo));
        let s1 = fluid.saturation(t1).map_err(|e| e.to_string())?;
        let s2 = fluid.saturation(t2).map_err(|e| e.to_string())?;
        ensure!(s2.pressure.value() > s1.pressure.value());
        ensure!(s2.surface_tension <= s1.surface_tension + 1e-12);
        ensure!(s2.liquid_viscosity <= s1.liquid_viscosity + 1e-12);
        ensure!(s1.vapor_density.value() < s1.liquid_density.value());
        Ok(())
    });
}

#[test]
fn air_properties_stay_physical() {
    check(0xa11f_0007, CASES, &Gen::f64_range(-60.0, 250.0), |&t| {
        let air = air_at_sea_level(Celsius::new(t));
        ensure!(air.density.value() > 0.5 && air.density.value() < 2.0);
        ensure!(air.prandtl() > 0.6 && air.prandtl() < 0.8);
        ensure!(air.kinematic_viscosity() > 0.0);
        Ok(())
    });
}

/// A generator for a small but non-degenerate optimizer scenario:
/// (seed, (tilt°, ambient °C), base power W).
fn gen_optimize_scenario() -> Gen<(u64, (f64, f64), f64)> {
    tuple3(
        &Gen::u64_any(),
        &Gen::f64_range(0.0, 40.0).zip(&Gen::f64_range(10.0, 55.0)),
        &Gen::f64_range(40.0, 200.0),
    )
}

fn small_run(seed: u64, tilt_deg: f64, ambient: f64, power: f64, sweep: &Sweep) -> OptimizeResult {
    let ctx = EvalContext::new(
        Celsius::new(ambient),
        Power::new(power),
        tilt_deg.to_radians(),
    );
    let config = OptimizerConfig {
        population: 16,
        generations: 5,
        seed,
        ..OptimizerConfig::default()
    };
    Optimizer::new(DesignSpace::default(), config).run(&ctx, sweep)
}

#[test]
fn pareto_front_is_mutually_nondominated() {
    check(
        0xa11f_000b,
        16,
        &gen_optimize_scenario(),
        |&(seed, (tilt, ambient), power)| {
            let result = small_run(seed, tilt, ambient, power, &Sweep::serial());
            ensure!(!result.front.is_empty(), "empty front");
            for a in result.front.points() {
                ensure!(
                    a.minimized().iter().all(|v| v.is_finite()),
                    "non-finite objective on the front"
                );
                for b in result.front.points() {
                    ensure!(
                        !dominates(&a.minimized(), &b.minimized()),
                        "front member dominates another: {:?} > {:?}",
                        a.minimized(),
                        b.minimized()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn pareto_front_covers_every_dominated_sample() {
    check(
        0xa11f_000c,
        16,
        &gen_optimize_scenario(),
        |&(seed, (tilt, ambient), power)| {
            let result = small_run(seed, tilt, ambient, power, &Sweep::serial());
            // Every survivor of the final population — front members
            // included — must be covered (equalled or dominated) by the
            // front; nothing evolved may escape it.
            for p in &result.population {
                ensure!(
                    result.front.covers(&p.minimized()),
                    "population point {:?} not covered by the front",
                    p.minimized()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn optimizer_is_bitwise_reproducible_from_seed() {
    check(
        0xa11f_000d,
        8,
        &gen_optimize_scenario(),
        |&(seed, (tilt, ambient), power)| {
            let serial = small_run(seed, tilt, ambient, power, &Sweep::serial());
            let again = small_run(seed, tilt, ambient, power, &Sweep::serial());
            let threaded = small_run(seed, tilt, ambient, power, &Sweep::new(3));
            ensure!(
                serial.front.fingerprint() == again.front.fingerprint(),
                "same seed, same sweep: fingerprints diverge"
            );
            ensure!(
                serial.front.fingerprint() == threaded.front.fingerprint(),
                "thread count changed the front"
            );
            ensure!(serial.front == threaded.front, "fronts not bitwise equal");
            ensure!(serial.evaluations == 16 * 6, "evaluation budget drifted");
            Ok(())
        },
    );
}

#[test]
fn board_temperature_is_monotone_in_power() {
    let gen = tuple3(
        &Gen::f64_range(5.0, 60.0),
        &Gen::f64_range(1.1, 3.0),
        &Gen::f64_range(20.0, 70.0),
    );
    check(0xa11f_0008, CASES, &gen, |&(p1, factor, amb)| {
        let geometry = ModuleGeometry::default();
        let ambient = Celsius::new(amb);
        let mode = CoolingMode::ConductionCooled {
            rail_temperature: ambient + TempDelta::new(10.0),
        };
        let t_low = predict_board_temperature(&mode, &geometry, Power::new(p1), ambient)
            .map_err(|e| e.to_string())?;
        let t_high = predict_board_temperature(&mode, &geometry, Power::new(p1 * factor), ambient)
            .map_err(|e| e.to_string())?;
        ensure!(t_high > t_low, "power ×{factor} did not raise the board");
        Ok(())
    });
}
